//! The simulated OpenMP offload runtime.
//!
//! Directive execution follows `libomptarget`'s observable behaviour:
//!
//! * On region entry each map clause consults the device's present table.
//!   Absent data is allocated (alloc event) and, for `to`/`tofrom`,
//!   copied in (transfer event). Present data just gains a reference
//!   (plus a forced copy under the `always` modifier).
//! * On region exit the reference count drops; at zero, `from`/`tofrom`
//!   data is copied back (transfer event) and the allocation is released
//!   (delete event).
//! * `target` regions implicitly map referenced-but-unmapped variables
//!   `tofrom`, run the kernel (submit events; real compute on device
//!   buffers), then unwind their data environment.
//!
//! Every operation advances the virtual clock through the timing model
//! and is reported to the attached tool through OMPT EMI callbacks
//! (begin/end), or the deprecated begin-only non-EMI callbacks when the
//! configured capability profile predates OpenMP 5.1.

use crate::config::RuntimeConfig;
use crate::device::{DeviceState, SharedDevices};
use crate::faults::{
    flip_payload_bit, DataOpFault, FaultCounts, FaultSession, CORRUPT_DEVICE_OFFSET,
};
use crate::kernel::{DeviceView, Kernel};
use crate::memory::{HostMemory, VarId};
use odp_model::{CodePtr, DeviceId, MapModifier, MapType, SimDuration, SimTime};
use odp_ompt::{
    AccessRange, AdviceCause, CallbackKind, CompilerProfile, DataOpCallback, DataOpType, Endpoint,
    HostAccessInfo, KernelAccessInfo, MapAdvice, MapAdvisor, RemediationStats, RuntimeCapabilities,
    SubmitCallback, TargetCallback, TargetConstructKind, Tool, ToolRegistration,
};

/// One map clause item: `map(<modifier><type>: <var>)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Map {
    /// The mapped variable.
    pub var: VarId,
    /// Map type.
    pub map_type: MapType,
    /// Modifiers (`always`).
    pub modifier: MapModifier,
}

/// Non-fatal conditions the runtime records while executing directives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeWarning {
    /// `target update` on data not present on the device (unspecified
    /// behaviour per the spec; libomptarget ignores it).
    UpdateOfAbsentData {
        /// Variable name.
        var: String,
    },
    /// `map(release:)`/`map(from:)` exit of data never mapped.
    ReleaseOfAbsentData {
        /// Variable name.
        var: String,
    },
    /// `map(delete:)` of data never mapped.
    DeleteOfAbsentData {
        /// Variable name.
        var: String,
    },
    /// A transfer reused a present-table entry whose allocation size
    /// differs from the variable's host size — only possible in
    /// shared-device mode, when another thread mapped a different-sized
    /// variable at the same host address. The copy is clamped to the
    /// smaller size, so the simulation proceeds, but timing and content
    /// no longer reflect a real runtime (which would have failed the
    /// present-table size check).
    MappingSizeMismatch {
        /// Variable name.
        var: String,
        /// Bytes of the present-table entry actually used.
        mapped: u64,
        /// Bytes the variable's clause requested.
        requested: u64,
    },
    /// A device allocation failed (capacity exhausted, or an injected
    /// OOM fault). The mapping is skipped; kernels referencing the
    /// variable compute on scratch storage.
    DeviceOutOfMemory {
        /// Variable name.
        var: String,
        /// Bytes the allocation requested.
        bytes: u64,
    },
    /// A transfer failed and was retried (injected fault); the clock
    /// absorbed the failed attempts plus exponential backoff.
    TransferRetried {
        /// Variable name.
        var: String,
        /// Failed attempts before the successful one.
        attempts: u32,
    },
}

/// Handle to an open structured `target data` region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRegionHandle(usize);

struct OpenRegion {
    device: u32,
    maps: Vec<Map>,
    codeptr: CodePtr,
    target_id: u64,
}

struct ToolSlot {
    tool: Box<dyn Tool>,
    registration: ToolRegistration,
}

impl ToolSlot {
    fn wants(&self, kind: CallbackKind) -> bool {
        self.registration.granted(kind)
    }
}

/// Aggregate statistics of a finished run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Final virtual clock (total program time).
    pub total_time: SimDuration,
    /// Number of H2D + D2H transfers performed.
    pub transfers: usize,
    /// Bytes moved.
    pub bytes_transferred: u64,
    /// Device allocations performed.
    pub allocs: usize,
    /// Kernels launched.
    pub kernels: usize,
    /// Cumulative transfer time.
    pub transfer_time: SimDuration,
    /// Cumulative alloc/free time.
    pub alloc_time: SimDuration,
    /// Cumulative kernel time (including launch overhead).
    pub kernel_time: SimDuration,
}

/// The simulated runtime. See module docs.
pub struct Runtime {
    cfg: RuntimeConfig,
    caps: RuntimeCapabilities,
    clock: SimTime,
    host: HostMemory,
    /// Per-device state (memory, present table, phantom-reference
    /// marks) behind one lock per device — private to this runtime by
    /// default, shared across runtimes in shared-device threaded mode.
    devices: SharedDevices,
    tool: Option<ToolSlot>,
    /// Online mapping advisor (`--remediate`): consulted at every
    /// map-clause item; `None` leaves directive execution bit-exact.
    advisor: Option<Box<dyn MapAdvisor>>,
    /// What the advisor's rewrites saved, per cause and device.
    remedy: RemediationStats,
    /// Per-runtime fault-injection state (no-op unless the config's
    /// plan is enabled).
    faults: FaultSession,
    warnings: Vec<RuntimeWarning>,
    open_regions: Vec<OpenRegion>,
    next_target_id: u64,
    next_host_op_id: u64,
    stats: RuntimeStats,
    finished: bool,
}

impl Runtime {
    /// Create a runtime from `cfg` with its own private device set.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let devices = SharedDevices::new(&cfg);
        Self::with_shared_devices(cfg, devices)
    }

    /// Create a runtime attached to an existing (possibly shared)
    /// device set: the true multi-threaded shape, where every host
    /// thread's directives operate on the **same** present tables.
    /// `devices` must match `cfg.num_devices`.
    pub fn with_shared_devices(cfg: RuntimeConfig, devices: SharedDevices) -> Self {
        assert_eq!(
            devices.len(),
            cfg.num_devices as usize,
            "shared device set does not match cfg.num_devices"
        );
        let caps = if cfg.pre_emi_runtime {
            cfg.profile.capabilities_pre_emi()
        } else {
            cfg.profile.capabilities()
        };
        let faults = cfg.faults.session();
        Runtime {
            cfg,
            caps,
            clock: SimTime::ZERO,
            host: HostMemory::new(),
            devices,
            tool: None,
            advisor: None,
            remedy: RemediationStats::default(),
            faults,
            warnings: Vec::new(),
            open_regions: Vec::new(),
            next_target_id: 1,
            next_host_op_id: 1,
            stats: RuntimeStats::default(),
            finished: false,
        }
    }

    /// A runtime with the default configuration (1 LLVM-profile device).
    pub fn with_defaults() -> Self {
        Self::new(RuntimeConfig::default())
    }

    /// The (possibly shared) device set this runtime operates on.
    pub fn shared_devices(&self) -> SharedDevices {
        self.devices.clone()
    }

    /// The capability set this runtime advertises to tools.
    pub fn capabilities(&self) -> &RuntimeCapabilities {
        &self.caps
    }

    /// The configured compiler profile.
    pub fn profile(&self) -> CompilerProfile {
        self.cfg.profile
    }

    /// Attach a tool (the `ompt_start_tool` handshake). Only one tool may
    /// be attached, before any directive executes.
    pub fn attach_tool(&mut self, mut tool: Box<dyn Tool>) {
        assert!(self.tool.is_none(), "a tool is already attached");
        let registration = tool.initialize(&self.caps);
        self.tool = Some(ToolSlot { tool, registration });
    }

    /// Detach and return the tool (used by harnesses that own the tool).
    pub fn detach_tool(&mut self) -> Option<Box<dyn Tool>> {
        self.tool.take().map(|s| s.tool)
    }

    /// Attach a mapping advisor (online remediation). The runtime
    /// consults it at every map-clause item and applies the advised
    /// rewrites; without an advisor, directive execution — and hence the
    /// tool-visible event stream — is untouched. Attach before any
    /// directive executes so enter/exit advice stays consistent.
    pub fn attach_advisor(&mut self, advisor: Box<dyn MapAdvisor>) {
        assert!(self.advisor.is_none(), "an advisor is already attached");
        self.advisor = Some(advisor);
    }

    /// Is a mapping advisor attached?
    pub fn advisor_attached(&self) -> bool {
        self.advisor.is_some()
    }

    /// What the advisor's rewrites recovered so far (empty without one).
    pub fn remediation_stats(&self) -> RemediationStats {
        self.remedy.clone()
    }

    /// Injected-fault totals so far, summed over every runtime sharing
    /// this config's plan (all zero without a fault plan).
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults.plan().counts()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Warnings accumulated so far.
    pub fn warnings(&self) -> &[RuntimeWarning] {
        &self.warnings
    }

    /// Number of target devices.
    pub fn num_devices(&self) -> u32 {
        self.cfg.num_devices
    }

    // ---------------------------------------------------------------
    // Host memory API
    // ---------------------------------------------------------------

    /// Allocate a zero-initialized host variable.
    pub fn host_alloc(&mut self, name: &str, bytes: usize) -> VarId {
        self.host.alloc(name, bytes)
    }

    /// Host address of a variable.
    pub fn host_addr(&self, var: VarId) -> u64 {
        self.host.addr(var)
    }

    /// Size of a variable in bytes.
    pub fn var_size(&self, var: VarId) -> u64 {
        self.host.size(var)
    }

    /// Name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.host.var(var).name
    }

    /// Find a host variable by name (first match).
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.host.by_name(name)
    }

    /// Raw (silent) access to host bytes — for workload setup.
    pub fn host_bytes(&self, var: VarId) -> &[u8] {
        self.host.bytes(var)
    }

    /// Raw (silent) mutable access to host bytes — for workload setup.
    pub fn host_bytes_mut(&mut self, var: VarId) -> &mut [u8] {
        self.host.bytes_mut(var)
    }

    /// Fill a host variable with f64 values.
    pub fn host_fill_f64(&mut self, var: VarId, f: impl Fn(usize) -> f64) {
        let buf = self.host.bytes_mut(var);
        for (i, chunk) in buf.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&f(i).to_le_bytes());
        }
    }

    /// Fill a host variable with f32 values.
    pub fn host_fill_f32(&mut self, var: VarId, f: impl Fn(usize) -> f32) {
        let buf = self.host.bytes_mut(var);
        for (i, chunk) in buf.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&f(i).to_le_bytes());
        }
    }

    /// Fill a host variable with u32 values.
    pub fn host_fill_u32(&mut self, var: VarId, f: impl Fn(usize) -> u32) {
        let buf = self.host.bytes_mut(var);
        for (i, chunk) in buf.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&f(i).to_le_bytes());
        }
    }

    /// Read a host variable as u32s.
    pub fn host_read_u32(&self, var: VarId) -> Vec<u32> {
        self.host
            .bytes(var)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(crate::kernel::le4(c)))
            .collect()
    }

    /// Read a host variable as f64s.
    pub fn host_read_f64(&self, var: VarId) -> Vec<f64> {
        self.host
            .bytes(var)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(crate::kernel::le8(c)))
            .collect()
    }

    /// Instrumented host write: mutates bytes *and* notifies tools that
    /// model binary instrumentation (Arbalest). Advances no virtual time.
    pub fn host_store(&mut self, var: VarId, offset: usize, data: &[u8]) {
        let time = self.clock;
        let addr = self.host.addr(var);
        self.host.bytes_mut(var)[offset..offset + data.len()].copy_from_slice(data);
        if let Some(slot) = self.tool.as_mut() {
            slot.tool.on_host_access(&HostAccessInfo {
                host_addr: addr,
                bytes: data.len() as u64,
                is_write: true,
                time,
            });
        }
    }

    /// Instrumented host read marker (for use-of-stale-data analysis).
    pub fn host_load(&mut self, var: VarId) {
        let time = self.clock;
        let addr = self.host.addr(var);
        let bytes = self.host.size(var);
        if let Some(slot) = self.tool.as_mut() {
            slot.tool.on_host_access(&HostAccessInfo {
                host_addr: addr,
                bytes,
                is_write: false,
                time,
            });
        }
    }

    /// Model a host compute phase of `d` (advances the virtual clock).
    pub fn host_compute(&mut self, d: SimDuration) {
        self.clock += d;
    }

    // ---------------------------------------------------------------
    // Directives
    // ---------------------------------------------------------------

    /// `#pragma omp target data map(...)` — begin of the structured
    /// region. Must be closed with [`Runtime::target_data_end`].
    pub fn target_data_begin(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        maps: &[Map],
    ) -> DataRegionHandle {
        self.assert_running(device);
        self.dispatch_overhead();
        let target_id = self.fresh_target_id();
        self.emit_target(
            TargetConstructKind::TargetData,
            Endpoint::Begin,
            device,
            target_id,
            codeptr,
        );
        for &m in maps {
            self.map_enter(device, m, target_id, codeptr, false);
        }
        self.emit_target(
            TargetConstructKind::TargetData,
            Endpoint::End,
            device,
            target_id,
            codeptr,
        );
        self.open_regions.push(OpenRegion {
            device,
            maps: maps.to_vec(),
            codeptr,
            target_id,
        });
        DataRegionHandle(self.open_regions.len() - 1)
    }

    /// End of a structured `target data` region. Regions must close in
    /// LIFO order (they are lexically nested in the source).
    pub fn target_data_end(&mut self, handle: DataRegionHandle) {
        self.dispatch_overhead();
        assert_eq!(
            handle.0 + 1,
            self.open_regions.len(),
            "target data regions must close in LIFO order"
        );
        let Some(region) = self.open_regions.pop() else {
            unreachable!("length asserted above")
        };
        self.emit_target(
            TargetConstructKind::TargetData,
            Endpoint::Begin,
            region.device,
            region.target_id,
            region.codeptr,
        );
        for &m in region.maps.iter().rev() {
            self.map_exit(region.device, m, region.target_id, region.codeptr);
        }
        self.emit_target(
            TargetConstructKind::TargetData,
            Endpoint::End,
            region.device,
            region.target_id,
            region.codeptr,
        );
    }

    /// `#pragma omp target enter data map(to|alloc: ...)`.
    pub fn target_enter_data(&mut self, device: u32, codeptr: CodePtr, maps: &[Map]) {
        self.assert_running(device);
        self.dispatch_overhead();
        let target_id = self.fresh_target_id();
        self.emit_target(
            TargetConstructKind::TargetEnterData,
            Endpoint::Begin,
            device,
            target_id,
            codeptr,
        );
        for &m in maps {
            self.map_enter(device, m, target_id, codeptr, false);
        }
        self.emit_target(
            TargetConstructKind::TargetEnterData,
            Endpoint::End,
            device,
            target_id,
            codeptr,
        );
    }

    /// `#pragma omp target exit data map(from|release|delete: ...)`.
    pub fn target_exit_data(&mut self, device: u32, codeptr: CodePtr, maps: &[Map]) {
        self.assert_running(device);
        self.dispatch_overhead();
        let target_id = self.fresh_target_id();
        self.emit_target(
            TargetConstructKind::TargetExitData,
            Endpoint::Begin,
            device,
            target_id,
            codeptr,
        );
        for &m in maps {
            self.map_exit(device, m, target_id, codeptr);
        }
        self.emit_target(
            TargetConstructKind::TargetExitData,
            Endpoint::End,
            device,
            target_id,
            codeptr,
        );
    }

    /// `#pragma omp target update to(...)`.
    pub fn target_update_to(&mut self, device: u32, codeptr: CodePtr, vars: &[VarId]) {
        self.target_update(device, codeptr, vars, true);
    }

    /// `#pragma omp target update from(...)`.
    pub fn target_update_from(&mut self, device: u32, codeptr: CodePtr, vars: &[VarId]) {
        self.target_update(device, codeptr, vars, false);
    }

    fn target_update(&mut self, device: u32, codeptr: CodePtr, vars: &[VarId], to_device: bool) {
        self.assert_running(device);
        self.dispatch_overhead();
        let target_id = self.fresh_target_id();
        self.emit_target(
            TargetConstructKind::TargetUpdate,
            Endpoint::Begin,
            device,
            target_id,
            codeptr,
        );
        let devices = self.devices.clone();
        for &var in vars {
            let haddr = self.host.addr(var);
            let mut dev = devices.lock(device);
            match dev.present.lookup(haddr) {
                Some(entry) => {
                    let dev_addr = entry.dev_addr;
                    if to_device {
                        self.do_h2d(&mut dev, device, var, dev_addr, target_id, codeptr);
                    } else {
                        self.do_d2h(&mut dev, device, var, dev_addr, target_id, codeptr);
                    }
                }
                None => self.warnings.push(RuntimeWarning::UpdateOfAbsentData {
                    var: self.host.var(var).name.clone(),
                }),
            }
        }
        self.emit_target(
            TargetConstructKind::TargetUpdate,
            Endpoint::End,
            device,
            target_id,
            codeptr,
        );
    }

    /// `#pragma omp target map(...)` — map data, run the kernel, unwind.
    ///
    /// Variables the kernel references that are neither explicitly mapped
    /// nor already present are mapped implicitly `tofrom`, per the
    /// OpenMP default for aggregates (the behaviour Listing 2 exhibits).
    pub fn target(&mut self, device: u32, codeptr: CodePtr, maps: &[Map], kernel: Kernel<'_>) {
        self.assert_running(device);
        self.dispatch_overhead();
        let target_id = self.fresh_target_id();
        self.emit_target(
            TargetConstructKind::Target,
            Endpoint::Begin,
            device,
            target_id,
            codeptr,
        );

        // Effective data environment: explicit maps, then implicit tofrom
        // for referenced-but-unmapped variables.
        let referenced = kernel.referenced_vars();
        let mut effective: Vec<Map> = maps.to_vec();
        for &var in &referenced {
            if !effective.iter().any(|m| m.var == var) {
                effective.push(Map {
                    var,
                    map_type: MapType::ToFrom,
                    modifier: MapModifier::NONE,
                });
            }
        }
        for &m in &effective {
            self.map_enter(device, m, target_id, codeptr, referenced.contains(&m.var));
        }

        self.run_kernel(device, codeptr, target_id, kernel);

        for &m in effective.iter().rev() {
            self.map_exit(device, m, target_id, codeptr);
        }
        self.emit_target(
            TargetConstructKind::Target,
            Endpoint::End,
            device,
            target_id,
            codeptr,
        );
    }

    /// `#pragma omp target nowait` — asynchronous offload (OpenMP 5.1;
    /// paper §7.8). The kernel is enqueued on the device and the host
    /// continues after the launch overhead; the kernel's submit events
    /// span its *actual* device execution window, so transfers issued
    /// meanwhile genuinely overlap it (exercising Algorithm 5's
    /// conservative overlap handling). Exit-side data motion
    /// synchronizes with the device, as the OpenMP data environment
    /// requires; combine with persistent `target data` regions and
    /// [`Runtime::taskwait`] for real overlap.
    pub fn target_nowait(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        maps: &[Map],
        kernel: Kernel<'_>,
    ) {
        self.assert_running(device);
        self.dispatch_overhead();
        let target_id = self.fresh_target_id();
        self.emit_target(
            TargetConstructKind::Target,
            Endpoint::Begin,
            device,
            target_id,
            codeptr,
        );
        let referenced = kernel.referenced_vars();
        let mut effective: Vec<Map> = maps.to_vec();
        for &var in &referenced {
            if !effective.iter().any(|m| m.var == var) {
                effective.push(Map {
                    var,
                    map_type: MapType::ToFrom,
                    modifier: MapModifier::NONE,
                });
            }
        }
        for &m in &effective {
            self.map_enter(device, m, target_id, codeptr, referenced.contains(&m.var));
        }

        self.launch_kernel_async(device, codeptr, target_id, kernel);

        // The data-environment exit must wait for the kernel whenever it
        // moves or frees data the kernel may still be using.
        let devices = self.devices.clone();
        let must_sync = effective.iter().any(|m| {
            let haddr = self.host.addr(m.var);
            let refcount = devices
                .lock(device)
                .present
                .lookup(haddr)
                .map(|e| e.refcount)
                .unwrap_or(0);
            m.map_type.copies_from_device() || m.map_type == MapType::Delete || refcount <= 1
        });
        if must_sync {
            self.taskwait(device);
        }
        for &m in effective.iter().rev() {
            self.map_exit(device, m, target_id, codeptr);
        }
        self.emit_target(
            TargetConstructKind::Target,
            Endpoint::End,
            device,
            target_id,
            codeptr,
        );
    }

    /// `#pragma omp taskwait` — block the host until `device`'s
    /// asynchronously launched kernels complete.
    pub fn taskwait(&mut self, device: u32) {
        self.assert_running(device);
        let busy = self.devices.lock(device).busy_until;
        if busy > self.clock {
            self.clock = busy;
        }
    }

    /// Launch a kernel without blocking the host: the submit events span
    /// the device-side execution window; the host clock advances only by
    /// the launch overhead.
    fn launch_kernel_async(
        &mut self,
        device: u32,
        codeptr: CodePtr,
        target_id: u64,
        kernel: Kernel<'_>,
    ) {
        // Hold the device lock across gather / execute / write-back:
        // the device runs one kernel at a time (its queue semantics),
        // and no other thread may free or take a buffer mid-kernel.
        let devices = self.devices.clone();
        let mut dev = devices.lock(device);
        let start = dev.busy_until.max(self.clock);
        let dur = SimDuration(self.cfg.timing.kernel_launch_ns) + kernel.cost.duration();
        let end = start + dur;
        self.emit_submit(
            Endpoint::Begin,
            device,
            target_id,
            kernel.num_teams,
            codeptr,
            start,
        );

        // Execute the body now (deterministically) against the device
        // buffers; logically it completes at `end`.
        let referenced = kernel.referenced_vars();
        let mut taken: Vec<(VarId, u64, Vec<u8>)> = Vec::with_capacity(referenced.len());
        for &var in &referenced {
            let haddr = self.host.addr(var);
            // A referenced var is mapped after map_enter — unless the
            // mapping was skipped by a device OOM (or a concurrent
            // map(delete:), which is a program data race). The kernel
            // then computes on zeroed scratch storage whose writes are
            // discarded, instead of tearing the run down.
            let buf_for = |dev: &mut DeviceState| {
                let entry = dev.present.lookup(haddr).copied()?;
                let buf = dev.mem.bytes_mut(entry.dev_addr)?.split_off(0);
                Some((entry.dev_addr, buf))
            };
            match buf_for(&mut dev) {
                Some((dev_addr, buf)) => taken.push((var, dev_addr, buf)),
                None => taken.push((var, u64::MAX, vec![0u8; self.host.size(var) as usize])),
            }
        }
        let access_info = KernelAccessInfo {
            device: DeviceId::target(device),
            target_id,
            reads: kernel
                .reads
                .iter()
                .map(|&v| self.access_range(&dev, v, &taken))
                .collect(),
            writes: kernel
                .writes
                .iter()
                .map(|&v| self.access_range(&dev, v, &taken))
                .collect(),
            masked_writes: kernel
                .masked_writes
                .iter()
                .map(|&v| self.access_range(&dev, v, &taken))
                .collect(),
            time: start,
        };
        let mut kernel = kernel;
        {
            let mut view = DeviceView {
                vars: taken.iter_mut().map(|(v, _, b)| (*v, b)).collect(),
            };
            match kernel.body.take() {
                Some(body) => body(&mut view),
                None => {
                    for &var in kernel.writes.iter().chain(kernel.masked_writes.iter()) {
                        let buf = view.bytes_mut(var);
                        default_mutation(buf, target_id);
                    }
                }
            }
        }
        for (_, dev_addr, buf) in taken {
            if let Some(slot) = dev.mem.bytes_mut(dev_addr) {
                *slot = buf;
            }
        }

        dev.busy_until = end;
        drop(dev);
        // The host returns right after the enqueue.
        self.clock += SimDuration(self.cfg.timing.kernel_launch_ns);
        self.stats.kernels += 1;
        self.stats.kernel_time += dur;
        if let Some(slot) = self.tool.as_mut() {
            slot.tool.on_kernel_access(&access_info);
        }
        self.emit_submit(
            Endpoint::End,
            device,
            target_id,
            kernel.num_teams,
            codeptr,
            end,
        );
    }

    fn run_kernel(&mut self, device: u32, codeptr: CodePtr, target_id: u64, kernel: Kernel<'_>) {
        // One lock for the whole kernel: the device executes kernels
        // from a serialized queue, so concurrent threads' kernels on
        // the same device take turns (and can never observe a buffer
        // mid-take).
        let devices = self.devices.clone();
        let mut dev = devices.lock(device);
        // Queue behind any asynchronously launched kernel on this device.
        let busy = dev.busy_until;
        if busy > self.clock {
            self.clock = busy;
        }
        let t0 = self.clock;
        self.emit_submit(
            Endpoint::Begin,
            device,
            target_id,
            kernel.num_teams,
            codeptr,
            t0,
        );

        // Gather device buffers for the kernel's variables: temporarily
        // take ownership so the body can hold simultaneous &mut views.
        let referenced = kernel.referenced_vars();
        let mut taken: Vec<(VarId, u64, Vec<u8>)> = Vec::with_capacity(referenced.len());
        for &var in &referenced {
            let haddr = self.host.addr(var);
            // A referenced var is mapped after map_enter — unless the
            // mapping was skipped by a device OOM (or a concurrent
            // map(delete:), which is a program data race). The kernel
            // then computes on zeroed scratch storage whose writes are
            // discarded, instead of tearing the run down.
            let buf_for = |dev: &mut DeviceState| {
                let entry = dev.present.lookup(haddr).copied()?;
                let buf = dev.mem.bytes_mut(entry.dev_addr)?.split_off(0);
                Some((entry.dev_addr, buf))
            };
            match buf_for(&mut dev) {
                Some((dev_addr, buf)) => taken.push((var, dev_addr, buf)),
                None => taken.push((var, u64::MAX, vec![0u8; self.host.size(var) as usize])),
            }
        }

        // Instrumentation feed for access-tracking tools.
        let access_info = KernelAccessInfo {
            device: DeviceId::target(device),
            target_id,
            reads: kernel
                .reads
                .iter()
                .map(|&v| self.access_range(&dev, v, &taken))
                .collect(),
            writes: kernel
                .writes
                .iter()
                .map(|&v| self.access_range(&dev, v, &taken))
                .collect(),
            masked_writes: kernel
                .masked_writes
                .iter()
                .map(|&v| self.access_range(&dev, v, &taken))
                .collect(),
            time: t0,
        };

        // Execute the body (real compute) or the default mutation.
        let mut kernel = kernel;
        {
            let mut view = DeviceView {
                vars: taken.iter_mut().map(|(v, _, b)| (*v, b)).collect(),
            };
            match kernel.body.take() {
                Some(body) => body(&mut view),
                None => {
                    for &var in kernel.writes.iter().chain(kernel.masked_writes.iter()) {
                        let buf = view.bytes_mut(var);
                        default_mutation(buf, target_id);
                    }
                }
            }
        }

        // Return the buffers to the device.
        for (_, dev_addr, buf) in taken {
            if let Some(slot) = dev.mem.bytes_mut(dev_addr) {
                *slot = buf;
            }
        }
        drop(dev);

        // Advance time: launch overhead + execution.
        let dur = SimDuration(self.cfg.timing.kernel_launch_ns) + kernel.cost.duration();
        self.clock += dur;
        self.stats.kernels += 1;
        self.stats.kernel_time += dur;

        if let Some(slot) = self.tool.as_mut() {
            slot.tool.on_kernel_access(&access_info);
        }
        let t1 = self.clock;
        self.emit_submit(
            Endpoint::End,
            device,
            target_id,
            kernel.num_teams,
            codeptr,
            t1,
        );
    }

    fn access_range(
        &self,
        dev: &DeviceState,
        var: VarId,
        taken: &[(VarId, u64, Vec<u8>)],
    ) -> AccessRange {
        let haddr = self.host.addr(var);
        let dev_addr = taken
            .iter()
            .find(|(v, _, _)| *v == var)
            .map(|(_, d, _)| *d)
            .or_else(|| dev.present.lookup(haddr).map(|e| e.dev_addr))
            .unwrap_or(0);
        AccessRange {
            host_addr: haddr,
            dev_addr,
            bytes: self.host.size(var),
        }
    }

    // ---------------------------------------------------------------
    // Map-clause machinery
    // ---------------------------------------------------------------

    /// Consult the attached advisor for one map item, or keep as written.
    fn consult(&mut self, enter: bool, device: u32, m: Map, codeptr: CodePtr) -> MapAdvice {
        let Some(advisor) = self.advisor.as_mut() else {
            return MapAdvice::KEEP;
        };
        let haddr = self.host.addr(m.var);
        let bytes = self.host.size(m.var);
        if enter {
            advisor.advise_enter(device, codeptr, haddr, bytes, m.map_type)
        } else {
            advisor.advise_exit(device, codeptr, haddr, bytes, m.map_type)
        }
    }

    /// Account a transfer a rewrite made unnecessary.
    fn note_avoided_transfer(&mut self, device: u32, cause: AdviceCause, bytes: u64, h2d: bool) {
        let dur = self.cfg.timing.transfer_duration(bytes, h2d);
        let c = self.remedy.counter_mut(device, cause);
        c.transfers_avoided += 1;
        c.transfer_bytes_avoided += bytes;
        c.transfer_time_avoided += dur;
    }

    /// Account an allocation a rewrite made unnecessary.
    fn note_avoided_alloc(&mut self, device: u32, cause: AdviceCause, bytes: u64) {
        let dur = self.cfg.timing.alloc.alloc_duration(bytes);
        let c = self.remedy.counter_mut(device, cause);
        c.allocs_avoided += 1;
        c.mgmt_time_avoided += dur;
    }

    /// Account a deallocation a rewrite made unnecessary.
    fn note_avoided_delete(&mut self, device: u32, cause: AdviceCause) {
        let dur = self.cfg.timing.alloc.free_duration();
        let c = self.remedy.counter_mut(device, cause);
        c.deletes_avoided += 1;
        c.mgmt_time_avoided += dur;
    }

    /// `force_map` pins the clause for a variable the launching kernel
    /// references: elision and enter-copy downgrades (`skip_to`) are
    /// overridden (a mispredicting advisor may waste bandwidth but never
    /// leave a kernel without its data).
    fn map_enter(
        &mut self,
        device: u32,
        m: Map,
        target_id: u64,
        codeptr: CodePtr,
        force_map: bool,
    ) {
        let advice = self.consult(true, device, m, codeptr);
        let haddr = self.host.addr(m.var);
        let bytes = self.host.size(m.var);
        // One lock for the whole clause: the lookup, the refcount or
        // insert it decides on, and phantom-reference adoption must be
        // atomic with respect to other threads mapping the same range.
        let devices = self.devices.clone();
        let mut dev = devices.lock(device);
        let present = dev.present.lookup(haddr).copied();

        // Elide: drop the clause. Only meaningful while the data is
        // absent; present data is simply reused (persist semantics).
        if let Some(cause) = advice.elide {
            if !force_map && present.is_none() {
                if m.map_type.allocates() {
                    self.note_avoided_alloc(device, cause, bytes);
                    if m.map_type.copies_to_device() {
                        self.note_avoided_transfer(device, cause, bytes, true);
                    }
                    self.remedy.counter_mut(device, cause).rewrites += 1;
                }
                return;
            }
        }

        match present {
            Some(entry) => {
                // A mapping alive only because remediation skipped its
                // release holds one *phantom* reference (the skip left
                // the refcount at 1 with no real holder). This re-entry
                // adopts it — consume the mark, skip the retain, and
                // count the re-allocation + re-send the baseline would
                // have performed as recovered.
                let adopted = if entry.refcount == 1 {
                    dev.retained.remove(&haddr)
                } else {
                    None
                };
                if let Some(cause) = adopted {
                    self.note_avoided_alloc(device, cause, bytes);
                    // Under `always` the copy below happens (or is booked
                    // by skip_to) regardless of residency, so only a plain
                    // `to` re-entry actually saves a transfer here.
                    if m.map_type.copies_to_device() && !m.modifier.always {
                        self.note_avoided_transfer(device, cause, bytes, true);
                    }
                } else {
                    dev.present.retain(haddr);
                }
                if m.modifier.always && m.map_type.copies_to_device() {
                    match advice.skip_to {
                        Some(cause) if !force_map => {
                            self.note_avoided_transfer(device, cause, bytes, true);
                            self.remedy.counter_mut(device, cause).rewrites += 1;
                        }
                        _ => {
                            self.do_h2d(&mut dev, device, m.var, entry.dev_addr, target_id, codeptr)
                        }
                    }
                }
            }
            None => {
                if !m.map_type.allocates() {
                    // release/delete of absent data on an *enter* path is
                    // a programming error; record and move on.
                    self.warnings.push(RuntimeWarning::ReleaseOfAbsentData {
                        var: self.host.var(m.var).name.clone(),
                    });
                    return;
                }
                let Some(dev_addr) = self.do_alloc(&mut dev, device, m.var, target_id, codeptr)
                else {
                    // Device OOM: the mapping is skipped; the kernel
                    // path substitutes scratch storage.
                    return;
                };
                dev.present.insert(haddr, dev_addr, self.host.size(m.var));
                if m.map_type.copies_to_device() {
                    match advice.skip_to {
                        // to → alloc: the data lands uninitialized, which
                        // Algorithm 5 proved no kernel will notice. Like
                        // elision, never applied to a variable the
                        // launching kernel references.
                        Some(cause) if !force_map => {
                            self.note_avoided_transfer(device, cause, bytes, true);
                            self.remedy.counter_mut(device, cause).rewrites += 1;
                        }
                        _ => self.do_h2d(&mut dev, device, m.var, dev_addr, target_id, codeptr),
                    }
                }
            }
        }
    }

    fn map_exit(&mut self, device: u32, m: Map, target_id: u64, codeptr: CodePtr) {
        let advice = self.consult(false, device, m, codeptr);
        let haddr = self.host.addr(m.var);
        let bytes = self.host.size(m.var);
        // One lock for the whole clause (see map_enter): the release
        // decision and any copy-back/free it triggers are atomic.
        let devices = self.devices.clone();
        let mut dev = devices.lock(device);
        match m.map_type {
            MapType::Delete => {
                if let Some(cause) = advice.persist.or(advice.elide) {
                    if dev.present.contains(haddr) {
                        // Keep the mapping resident despite the forced
                        // delete; re-entries reuse it.
                        dev.retained.insert(haddr, cause);
                        self.note_avoided_delete(device, cause);
                        self.remedy.counter_mut(device, cause).rewrites += 1;
                        return;
                    }
                    if advice.elide.is_some() {
                        return; // elided at enter: nothing to delete
                    }
                }
                match dev.present.force_remove(haddr) {
                    Some(entry) => {
                        self.do_delete(&mut dev, device, m.var, entry.dev_addr, target_id, codeptr)
                    }
                    None => self.warnings.push(RuntimeWarning::DeleteOfAbsentData {
                        var: self.host.var(m.var).name.clone(),
                    }),
                }
            }
            _ => {
                let Some(entry) = dev.present.lookup(haddr).copied() else {
                    if advice.elide.is_some() {
                        return; // elided at enter: exit silently too
                    }
                    self.warnings.push(RuntimeWarning::ReleaseOfAbsentData {
                        var: self.host.var(m.var).name.clone(),
                    });
                    return;
                };
                // `always from` copies back even while references remain.
                if m.modifier.always && m.map_type.copies_from_device() {
                    if let Some(cause) = advice.skip_from {
                        self.note_avoided_transfer(device, cause, bytes, false);
                        self.remedy.counter_mut(device, cause).rewrites += 1;
                    } else {
                        self.do_d2h(&mut dev, device, m.var, entry.dev_addr, target_id, codeptr);
                    }
                }
                // Persist: when this release would free the mapping, keep
                // it resident instead. An exit-side `from` copy degrades
                // to a targeted update (host visibility preserved, no
                // delete/re-send round trip) unless skip_from also holds.
                let persist = advice.persist.or(advice.elide);
                if let Some(cause) = persist {
                    if entry.refcount == 1 {
                        if m.map_type.copies_from_device() && !m.modifier.always {
                            if let Some(skip) = advice.skip_from {
                                self.note_avoided_transfer(device, skip, bytes, false);
                            } else {
                                self.do_d2h(
                                    &mut dev,
                                    device,
                                    m.var,
                                    entry.dev_addr,
                                    target_id,
                                    codeptr,
                                );
                                let c = self.remedy.counter_mut(device, cause);
                                c.updates_injected += 1;
                                c.update_bytes += bytes;
                            }
                        }
                        dev.retained.insert(haddr, cause);
                        self.note_avoided_delete(device, cause);
                        self.remedy.counter_mut(device, cause).rewrites += 1;
                        return;
                    }
                    // refcount > 1: the release cannot free; fall through.
                }
                if let Some(entry) = dev.present.release(haddr) {
                    if m.map_type.copies_from_device() && !m.modifier.always {
                        if let Some(cause) = advice.skip_from {
                            // from → release: the copy-back is provably
                            // redundant (the host already holds the bytes).
                            self.note_avoided_transfer(device, cause, bytes, false);
                            self.remedy.counter_mut(device, cause).rewrites += 1;
                        } else {
                            self.do_d2h(
                                &mut dev,
                                device,
                                m.var,
                                entry.dev_addr,
                                target_id,
                                codeptr,
                            );
                        }
                    }
                    self.do_delete(&mut dev, device, m.var, entry.dev_addr, target_id, codeptr);
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Primitive data operations (each = one OMPT data-op event)
    // ---------------------------------------------------------------

    /// Allocate device memory for `var`. Returns `None` — with a
    /// [`RuntimeWarning::DeviceOutOfMemory`] recorded and no event
    /// emitted — when capacity is exhausted or an injected OOM fault
    /// fires; the caller skips the mapping and the run degrades
    /// gracefully instead of panicking.
    fn do_alloc(
        &mut self,
        dev: &mut DeviceState,
        device: u32,
        var: VarId,
        target_id: u64,
        codeptr: CodePtr,
    ) -> Option<u64> {
        let bytes = self.host.size(var);
        let dev_addr = if self.faults.alloc_fails() {
            None
        } else {
            dev.mem.alloc(bytes)
        };
        let Some(dev_addr) = dev_addr else {
            self.warnings.push(RuntimeWarning::DeviceOutOfMemory {
                var: self.host.var(var).name.clone(),
                bytes,
            });
            return None;
        };
        let t0 = self.clock;
        let dur = self.cfg.timing.alloc.alloc_duration(bytes);
        self.clock += dur;
        self.stats.allocs += 1;
        self.stats.alloc_time += dur;
        let host_op_id = self.fresh_host_op_id();
        let haddr = self.host.addr(var);
        self.dispatch_data_op(
            DataOpType::Alloc,
            device,
            target_id,
            host_op_id,
            haddr,
            dev_addr,
            bytes,
            codeptr,
            t0,
            self.clock,
            None,
        );
        Some(dev_addr)
    }

    fn do_delete(
        &mut self,
        dev: &mut DeviceState,
        device: u32,
        var: VarId,
        dev_addr: u64,
        target_id: u64,
        codeptr: CodePtr,
    ) {
        let bytes = self.host.size(var);
        let freed = dev.mem.free(dev_addr);
        debug_assert!(freed, "delete of unallocated device memory");
        let t0 = self.clock;
        let dur = self.cfg.timing.alloc.free_duration();
        self.clock += dur;
        self.stats.alloc_time += dur;
        let host_op_id = self.fresh_host_op_id();
        let haddr = self.host.addr(var);
        self.dispatch_data_op(
            DataOpType::Delete,
            device,
            target_id,
            host_op_id,
            haddr,
            dev_addr,
            bytes,
            codeptr,
            t0,
            self.clock,
            None,
        );
    }

    fn do_h2d(
        &mut self,
        dev: &mut DeviceState,
        device: u32,
        var: VarId,
        dev_addr: u64,
        target_id: u64,
        codeptr: CodePtr,
    ) {
        let bytes = self.host.size(var);
        // Real byte movement: host → device buffer. Clamped when a
        // shared-device run reuses another thread's different-sized
        // same-address mapping — surfaced as a warning, never silent.
        let src: Vec<u8> = self.host.bytes(var).to_vec();
        if let Some(buf) = dev.mem.bytes_mut(dev_addr) {
            if buf.len() != src.len() {
                self.warnings.push(RuntimeWarning::MappingSizeMismatch {
                    var: self.host.var(var).name.clone(),
                    mapped: buf.len() as u64,
                    requested: src.len() as u64,
                });
            }
            let n = src.len().min(buf.len());
            buf[..n].copy_from_slice(&src[..n]);
        }
        self.absorb_transfer_retries(var, bytes, true);
        let t0 = self.clock;
        let dur = self.cfg.timing.transfer_duration(bytes, true);
        self.clock += dur;
        self.stats.transfers += 1;
        self.stats.bytes_transferred += bytes;
        self.stats.transfer_time += dur;
        let host_op_id = self.fresh_host_op_id();
        let haddr = self.host.addr(var);
        let t1 = self.clock;
        self.dispatch_data_op_with_payload(
            DataOpType::TransferToDevice,
            device,
            target_id,
            host_op_id,
            haddr,
            dev_addr,
            bytes,
            codeptr,
            t0,
            t1,
            var,
        );
    }

    fn do_d2h(
        &mut self,
        dev: &mut DeviceState,
        device: u32,
        var: VarId,
        dev_addr: u64,
        target_id: u64,
        codeptr: CodePtr,
    ) {
        let bytes = self.host.size(var);
        // Real byte movement: device buffer → host (clamped + warned on
        // a size mismatch, see do_h2d).
        if let Some(buf) = dev.mem.bytes(dev_addr) {
            let copy: Vec<u8> = buf.to_vec();
            if copy.len() != self.host.size(var) as usize {
                self.warnings.push(RuntimeWarning::MappingSizeMismatch {
                    var: self.host.var(var).name.clone(),
                    mapped: copy.len() as u64,
                    requested: self.host.size(var),
                });
            }
            let host = self.host.bytes_mut(var);
            let n = copy.len().min(host.len());
            host[..n].copy_from_slice(&copy[..n]);
        }
        self.absorb_transfer_retries(var, bytes, false);
        let t0 = self.clock;
        let dur = self.cfg.timing.transfer_duration(bytes, false);
        self.clock += dur;
        self.stats.transfers += 1;
        self.stats.bytes_transferred += bytes;
        self.stats.transfer_time += dur;
        let host_op_id = self.fresh_host_op_id();
        let haddr = self.host.addr(var);
        let t1 = self.clock;
        self.dispatch_data_op_with_payload(
            DataOpType::TransferFromDevice,
            device,
            target_id,
            host_op_id,
            dev_addr,
            haddr,
            bytes,
            codeptr,
            t0,
            t1,
            var,
        );
    }

    /// Consult the fault plan for injected transfer failures: each
    /// failed attempt costs a full flight plus exponential backoff
    /// before the retry, absorbed into the clock ahead of the
    /// successful attempt (whose event span stays clean).
    fn absorb_transfer_retries(&mut self, var: VarId, bytes: u64, h2d: bool) {
        let failures = self.faults.transfer_failures();
        if failures == 0 {
            return;
        }
        let flight = self.cfg.timing.transfer_duration(bytes, h2d);
        let latency = if h2d {
            self.cfg.timing.h2d.latency_ns
        } else {
            self.cfg.timing.d2h.latency_ns
        };
        let mut penalty = SimDuration(0);
        for attempt in 0..failures {
            penalty += flight + SimDuration(latency << attempt);
        }
        self.clock += penalty;
        self.stats.transfer_time += penalty;
        self.warnings.push(RuntimeWarning::TransferRetried {
            var: self.host.var(var).name.clone(),
            attempts: failures,
        });
    }

    // ---------------------------------------------------------------
    // OMPT dispatch
    // ---------------------------------------------------------------

    fn emit_target(
        &mut self,
        construct: TargetConstructKind,
        endpoint: Endpoint,
        device: u32,
        target_id: u64,
        codeptr: CodePtr,
    ) {
        let time = self.clock;
        let Some(slot) = self.tool.as_mut() else {
            return;
        };
        let emi = slot.wants(CallbackKind::TargetEmi);
        let legacy = slot.wants(CallbackKind::Target);
        if !emi && !legacy {
            return;
        }
        if !emi && endpoint == Endpoint::End {
            // Non-EMI callbacks fire only at event start (§2.3).
            return;
        }
        slot.tool.on_target(&TargetCallback {
            endpoint,
            construct,
            device: DeviceId::target(device),
            target_id,
            codeptr_ra: codeptr,
            time,
        });
    }

    fn emit_submit(
        &mut self,
        endpoint: Endpoint,
        device: u32,
        target_id: u64,
        num_teams: u32,
        codeptr: CodePtr,
        time: SimTime,
    ) {
        let Some(slot) = self.tool.as_mut() else {
            return;
        };
        let emi = slot.wants(CallbackKind::TargetSubmitEmi);
        let legacy = slot.wants(CallbackKind::TargetSubmit);
        if !emi && !legacy {
            return;
        }
        if !emi && endpoint == Endpoint::End {
            return;
        }
        slot.tool.on_submit(&SubmitCallback {
            endpoint,
            target_id,
            device: DeviceId::target(device),
            requested_num_teams: num_teams,
            codeptr_ra: codeptr,
            time,
        });
    }

    /// Dispatch a data op with no payload (alloc/delete).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_data_op(
        &mut self,
        optype: DataOpType,
        device: u32,
        target_id: u64,
        host_op_id: u64,
        src_addr: u64,
        dest_addr: u64,
        bytes: u64,
        codeptr: CodePtr,
        t0: SimTime,
        t1: SimTime,
        payload: Option<&[u8]>,
    ) {
        let Some(slot) = self.tool.as_mut() else {
            return;
        };
        let emi = slot.wants(CallbackKind::TargetDataOpEmi);
        let legacy = slot.wants(CallbackKind::TargetDataOp);
        if !emi && !legacy {
            return;
        }
        let fault = self.faults.on_data_op(false);
        let device = if fault == DataOpFault::CorruptDevice {
            device + CORRUPT_DEVICE_OFFSET
        } else {
            device
        };
        let (src_device, dest_device) = device_endpoints(optype, device);
        let mk = |endpoint, time, payload| DataOpCallback {
            endpoint,
            target_id,
            host_op_id,
            optype,
            src_device,
            src_addr,
            dest_device,
            dest_addr,
            bytes,
            codeptr_ra: codeptr,
            time,
            payload,
        };
        if emi {
            if fault != DataOpFault::DropBegin {
                slot.tool.on_data_op(&mk(Endpoint::Begin, t0, None));
            }
            if fault != DataOpFault::DropEnd {
                slot.tool.on_data_op(&mk(Endpoint::End, t1, payload));
                if fault == DataOpFault::DuplicateEnd {
                    slot.tool.on_data_op(&mk(Endpoint::End, t1, payload));
                }
            }
        } else if fault != DataOpFault::DropBegin {
            // Begin-only, and the payload is observable at start for a
            // pointer-chasing tool, so hand it over here.
            slot.tool.on_data_op(&mk(Endpoint::Begin, t0, payload));
        }
    }

    /// Dispatch a transfer whose payload is `var`'s host bytes (valid for
    /// both directions: after a D2H the host copy equals the device copy).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_data_op_with_payload(
        &mut self,
        optype: DataOpType,
        device: u32,
        target_id: u64,
        host_op_id: u64,
        src_addr: u64,
        dest_addr: u64,
        bytes: u64,
        codeptr: CodePtr,
        t0: SimTime,
        t1: SimTime,
        var: VarId,
    ) {
        let Some(slot) = self.tool.as_mut() else {
            return;
        };
        let emi = slot.wants(CallbackKind::TargetDataOpEmi);
        let legacy = slot.wants(CallbackKind::TargetDataOp);
        if !emi && !legacy {
            return;
        }
        let fault = self.faults.on_data_op(true);
        let device = if fault == DataOpFault::CorruptDevice {
            device + CORRUPT_DEVICE_OFFSET
        } else {
            device
        };
        // For H2D the host copy *is* the payload; for D2H we just copied
        // the device bytes into the host var, so it is content-identical.
        // Payload faults operate on an owned copy so host memory itself
        // stays intact.
        let owned: Option<Vec<u8>> = match fault {
            DataOpFault::TruncatePayload => {
                let p = self.host.bytes(var);
                Some(p[..p.len() / 2].to_vec())
            }
            DataOpFault::CorruptPayload => {
                let mut p = self.host.bytes(var).to_vec();
                flip_payload_bit(&mut p, host_op_id);
                Some(p)
            }
            _ => None,
        };
        let payload = match owned.as_deref() {
            Some(p) => p,
            None => self.host.bytes(var),
        };
        let (src_device, dest_device) = device_endpoints(optype, device);
        let mk = |endpoint, time, payload| DataOpCallback {
            endpoint,
            target_id,
            host_op_id,
            optype,
            src_device,
            src_addr,
            dest_device,
            dest_addr,
            bytes,
            codeptr_ra: codeptr,
            time,
            payload,
        };
        if emi {
            if fault != DataOpFault::DropBegin {
                slot.tool.on_data_op(&mk(Endpoint::Begin, t0, None));
            }
            if fault != DataOpFault::DropEnd {
                slot.tool.on_data_op(&mk(Endpoint::End, t1, Some(payload)));
                if fault == DataOpFault::DuplicateEnd {
                    slot.tool.on_data_op(&mk(Endpoint::End, t1, Some(payload)));
                }
            }
        } else if fault != DataOpFault::DropBegin {
            slot.tool
                .on_data_op(&mk(Endpoint::Begin, t0, Some(payload)));
        }
    }

    // ---------------------------------------------------------------
    // Lifecycle
    // ---------------------------------------------------------------

    /// Finish the run: finalize the tool and return run statistics.
    pub fn finish(&mut self) -> RuntimeStats {
        assert!(!self.finished, "finish() called twice");
        assert!(
            self.open_regions.is_empty(),
            "target data region left open at program end"
        );
        self.finished = true;
        self.stats.total_time = SimDuration(self.clock.as_nanos());
        if let Some(slot) = self.tool.as_mut() {
            slot.tool.finalize(self.clock.as_nanos());
        }
        self.stats
    }

    /// Statistics so far (valid any time; total_time set at finish).
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// Peak device memory in use on `device`.
    pub fn device_peak_bytes(&self, device: u32) -> u64 {
        self.devices.peak_bytes(device)
    }

    /// Live present-table mappings on `device` (testing aid).
    pub fn present_mappings(&self, device: u32) -> usize {
        self.devices.present_mappings(device)
    }

    /// Advance the clock by the host-side directive dispatch overhead.
    fn dispatch_overhead(&mut self) {
        self.clock += SimDuration(self.cfg.timing.host_dispatch_ns);
    }

    fn fresh_target_id(&mut self) -> u64 {
        let id = self.next_target_id;
        self.next_target_id += 1;
        id
    }

    fn fresh_host_op_id(&mut self) -> u64 {
        let id = self.next_host_op_id;
        self.next_host_op_id += 1;
        id
    }

    fn assert_running(&self, device: u32) {
        assert!(!self.finished, "directive after finish()");
        assert!(
            (device as usize) < self.devices.len(),
            "device {device} out of range ({} devices)",
            self.devices.len()
        );
    }
}

/// OMPT device-number conventions per op type.
fn device_endpoints(optype: DataOpType, device: u32) -> (DeviceId, DeviceId) {
    match optype {
        DataOpType::TransferFromDevice => (DeviceId::target(device), DeviceId::HOST),
        // Alloc/delete/H2D/associate: host side is the source operand.
        _ => (DeviceId::HOST, DeviceId::target(device)),
    }
}

/// Deterministic default mutation for written buffers when a kernel has
/// no real body: stamps a salt-derived value into the head and bumps a
/// sparse stride, so distinct launches always produce distinct content
/// (the stamp mix is bijective in the salt) while staying cheap.
fn default_mutation(buf: &mut [u8], salt: u64) {
    if buf.is_empty() {
        return;
    }
    // SplitMix64 finalizer: bijective, so different target ids can never
    // stamp identical bytes into buffers of ≥ 8 bytes.
    let mut z = salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let stamp = z ^ (z >> 31);

    let k = buf.len().min(8);
    buf[..k].copy_from_slice(&stamp.to_le_bytes()[..k]);
    let step = (buf.len() / 64).max(1);
    let mut i = k;
    while i < buf.len() {
        buf[i] = buf[i].wrapping_add((stamp as u8) | 1);
        i += step;
    }
    let last = buf.len() - 1;
    buf[last] = buf[last].wrapping_add((stamp >> 8) as u8 | 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCost;
    use crate::{map, map_always};
    use std::sync::{Arc, Mutex};

    /// A recording tool capturing every callback for assertions.
    #[derive(Default)]
    struct Recorder {
        events: Arc<Mutex<Vec<String>>>,
        hashes_seen: Arc<Mutex<Vec<u64>>>,
    }

    impl Tool for Recorder {
        fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration {
            ToolRegistration::negotiate(
                &[
                    CallbackKind::TargetEmi,
                    CallbackKind::TargetDataOpEmi,
                    CallbackKind::TargetSubmitEmi,
                ],
                caps,
            )
        }

        fn on_target(&mut self, cb: &TargetCallback) {
            self.events
                .lock()
                .unwrap()
                .push(format!("target {:?} {:?}", cb.construct, cb.endpoint));
        }

        fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
            if cb.endpoint == Endpoint::End {
                self.events
                    .lock()
                    .unwrap()
                    .push(format!("dataop {:?} {} bytes", cb.optype, cb.bytes));
                if let Some(p) = cb.payload {
                    self.hashes_seen.lock().unwrap().push(odp_hash_stub(p));
                }
            }
        }

        fn on_submit(&mut self, cb: &SubmitCallback) {
            self.events
                .lock()
                .unwrap()
                .push(format!("submit {:?}", cb.endpoint));
        }
    }

    /// Cheap stand-in hash for tests (the real tool uses odp-hash).
    fn odp_hash_stub(data: &[u8]) -> u64 {
        data.iter().fold(0xcbf29ce484222325u64, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        })
    }

    #[allow(clippy::type_complexity)]
    fn recorder_runtime() -> (Runtime, Arc<Mutex<Vec<String>>>, Arc<Mutex<Vec<u64>>>) {
        let mut rt = Runtime::with_defaults();
        let events = Arc::new(Mutex::new(Vec::new()));
        let hashes = Arc::new(Mutex::new(Vec::new()));
        rt.attach_tool(Box::new(Recorder {
            events: events.clone(),
            hashes_seen: hashes.clone(),
        }));
        (rt, events, hashes)
    }

    #[test]
    fn listing1_duplicate_transfer_shape() {
        // Two back-to-back target regions mapping the same `to:` array:
        // alloc+H2D+delete twice, with identical payload → same hash.
        let (mut rt, events, hashes) = recorder_runtime();
        let a = rt.host_alloc("a", 1024);
        rt.host_fill_u32(a, |i| i as u32);
        for _ in 0..2 {
            rt.target(
                0,
                CodePtr(0x100),
                &[map(MapType::To, a)],
                Kernel::new("sum", KernelCost::fixed(1_000)).reads(&[a]),
            );
        }
        rt.finish();
        let ev = events.lock().unwrap();
        let h2d = ev.iter().filter(|e| e.contains("TransferToDevice")).count();
        let allocs = ev.iter().filter(|e| e.contains("Alloc")).count();
        let deletes = ev.iter().filter(|e| e.contains("Delete")).count();
        assert_eq!(h2d, 2, "duplicate transfer: {ev:?}");
        assert_eq!(allocs, 2, "repeated allocation");
        assert_eq!(deletes, 2);
        let hs = hashes.lock().unwrap();
        assert_eq!(hs.len(), 2);
        assert_eq!(hs[0], hs[1], "identical payloads hash identically");
    }

    #[test]
    fn target_data_region_suppresses_remapping() {
        // Listing 1's fix: wrap both regions in `target data map(to: a)`.
        let (mut rt, events, _) = recorder_runtime();
        let a = rt.host_alloc("a", 1024);
        let region = rt.target_data_begin(0, CodePtr(0x90), &[map(MapType::To, a)]);
        for _ in 0..2 {
            rt.target(
                0,
                CodePtr(0x100),
                &[map(MapType::To, a)],
                Kernel::new("sum", KernelCost::fixed(1_000)).reads(&[a]),
            );
        }
        rt.target_data_end(region);
        rt.finish();
        let ev = events.lock().unwrap();
        let h2d = ev.iter().filter(|e| e.contains("TransferToDevice")).count();
        let allocs = ev.iter().filter(|e| e.contains("Alloc")).count();
        assert_eq!(h2d, 1, "single transfer inside the data region: {ev:?}");
        assert_eq!(allocs, 1);
    }

    #[test]
    fn implicit_tofrom_round_trip() {
        // Listing 2: no explicit map → implicit tofrom each iteration.
        let (mut rt, events, hashes) = recorder_runtime();
        let a = rt.host_alloc("a", 4096);
        for _ in 0..3 {
            rt.target(
                0,
                CodePtr(0x200),
                &[],
                Kernel::new("incr", KernelCost::fixed(500))
                    .reads(&[a])
                    .writes(&[a]),
            );
        }
        rt.finish();
        let ev = events.lock().unwrap();
        let h2d = ev.iter().filter(|e| e.contains("TransferToDevice")).count();
        let d2h = ev
            .iter()
            .filter(|e| e.contains("TransferFromDevice"))
            .count();
        assert_eq!(h2d, 3);
        assert_eq!(d2h, 3);
        // Round-trip: D2H of iteration i has the same content as H2D of
        // iteration i+1 (kernel mutates on device, host copies it back).
        let hs = hashes.lock().unwrap();
        // order: h2d0, d2h0, h2d1, d2h1, h2d2, d2h2
        assert_eq!(hs[1], hs[2], "round trip between iterations");
        assert_eq!(hs[3], hs[4]);
        // And the kernel really mutates: h2d0 != d2h0.
        assert_ne!(hs[0], hs[1]);
    }

    #[test]
    fn kernel_body_runs_real_compute() {
        let mut rt = Runtime::with_defaults();
        let x = rt.host_alloc("x", 8 * 8);
        rt.host_fill_f64(x, |i| i as f64);
        let mut body = |view: &mut DeviceView<'_>| {
            let mut vals = view.read_f64(VarId(0));
            for v in vals.iter_mut() {
                *v *= 2.0;
            }
            view.write_f64(VarId(0), &vals);
        };
        rt.target(
            0,
            CodePtr(1),
            &[map(MapType::ToFrom, x)],
            Kernel::new("dbl", KernelCost::fixed(100))
                .reads(&[x])
                .writes(&[x])
                .body(&mut body),
        );
        rt.finish();
        let vals = rt.host_read_f64(x);
        assert_eq!(vals, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn enter_exit_data_persistence() {
        let (mut rt, events, _) = recorder_runtime();
        let a = rt.host_alloc("a", 64);
        rt.target_enter_data(0, CodePtr(1), &[map(MapType::To, a)]);
        for _ in 0..4 {
            rt.target(
                0,
                CodePtr(2),
                &[map(MapType::To, a)],
                Kernel::new("k", KernelCost::fixed(10)).reads(&[a]),
            );
        }
        rt.target_exit_data(0, CodePtr(3), &[map(MapType::Delete, a)]);
        rt.finish();
        let ev = events.lock().unwrap();
        assert_eq!(
            ev.iter().filter(|e| e.contains("TransferToDevice")).count(),
            1
        );
        assert_eq!(ev.iter().filter(|e| e.contains("Alloc")).count(), 1);
        assert_eq!(ev.iter().filter(|e| e.contains("Delete")).count(), 1);
        assert_eq!(rt.present_mappings(0), 0);
    }

    #[test]
    fn always_modifier_forces_copy() {
        let (mut rt, events, _) = recorder_runtime();
        let a = rt.host_alloc("a", 64);
        let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a)]);
        rt.target(
            0,
            CodePtr(2),
            &[map_always(MapType::To, a)],
            Kernel::new("k", KernelCost::fixed(10)).reads(&[a]),
        );
        rt.target_data_end(region);
        rt.finish();
        let ev = events.lock().unwrap();
        assert_eq!(
            ev.iter().filter(|e| e.contains("TransferToDevice")).count(),
            2,
            "region entry + forced copy"
        );
    }

    #[test]
    fn update_of_absent_data_warns() {
        let mut rt = Runtime::with_defaults();
        let a = rt.host_alloc("ghost", 64);
        rt.target_update_to(0, CodePtr(1), &[a]);
        assert_eq!(rt.warnings().len(), 1);
        assert!(matches!(
            rt.warnings()[0],
            RuntimeWarning::UpdateOfAbsentData { .. }
        ));
    }

    #[test]
    fn virtual_clock_advances_through_model() {
        let mut rt = Runtime::with_defaults();
        let a = rt.host_alloc("a", 1 << 20);
        assert_eq!(rt.now(), SimTime::ZERO);
        rt.target(
            0,
            CodePtr(1),
            &[map(MapType::ToFrom, a)],
            Kernel::new("k", KernelCost::fixed(1_000))
                .reads(&[a])
                .writes(&[a]),
        );
        let stats = rt.finish();
        // alloc + h2d + kernel + d2h + delete all contribute.
        assert!(stats.total_time.as_nanos() > 0);
        assert_eq!(stats.transfers, 2);
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.kernels, 1);
        assert!(stats.transfer_time > SimDuration::ZERO);
        assert!(stats.kernel_time.as_nanos() >= 1_000);
    }

    #[test]
    fn lifo_region_discipline_enforced() {
        let mut rt = Runtime::with_defaults();
        let a = rt.host_alloc("a", 8);
        let b = rt.host_alloc("b", 8);
        let r1 = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a)]);
        let r2 = rt.target_data_begin(0, CodePtr(2), &[map(MapType::To, b)]);
        rt.target_data_end(r2);
        rt.target_data_end(r1);
        rt.finish();
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn non_lifo_region_close_panics() {
        let mut rt = Runtime::with_defaults();
        let a = rt.host_alloc("a", 8);
        let b = rt.host_alloc("b", 8);
        let r1 = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a)]);
        let _r2 = rt.target_data_begin(0, CodePtr(2), &[map(MapType::To, b)]);
        rt.target_data_end(r1);
    }

    #[test]
    fn multi_device_independent_present_tables() {
        let (mut rt, events, _) = {
            let mut rt = Runtime::new(RuntimeConfig::default().with_devices(2));
            let events = Arc::new(Mutex::new(Vec::new()));
            let hashes = Arc::new(Mutex::new(Vec::new()));
            rt.attach_tool(Box::new(Recorder {
                events: events.clone(),
                hashes_seen: hashes.clone(),
            }));
            (rt, events, hashes)
        };
        let a = rt.host_alloc("a", 256);
        rt.target(
            0,
            CodePtr(1),
            &[map(MapType::To, a)],
            Kernel::new("k0", KernelCost::fixed(10)).reads(&[a]),
        );
        rt.target(
            1,
            CodePtr(2),
            &[map(MapType::To, a)],
            Kernel::new("k1", KernelCost::fixed(10)).reads(&[a]),
        );
        rt.finish();
        let ev = events.lock().unwrap();
        // Each device maps independently: 2 allocs, 2 H2D.
        assert_eq!(ev.iter().filter(|e| e.contains("Alloc")).count(), 2);
        assert_eq!(
            ev.iter().filter(|e| e.contains("TransferToDevice")).count(),
            2
        );
    }

    #[test]
    fn pre_emi_runtime_delivers_begin_only() {
        #[derive(Default)]
        struct CountEndpoints {
            begins: Arc<Mutex<usize>>,
            ends: Arc<Mutex<usize>>,
        }
        impl Tool for CountEndpoints {
            fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration {
                // Ask for EMI; fall back to legacy when denied.
                let emi = ToolRegistration::negotiate(&[CallbackKind::TargetDataOpEmi], caps);
                if emi.fully_granted() {
                    emi
                } else {
                    ToolRegistration::negotiate(&[CallbackKind::TargetDataOp], caps)
                }
            }
            fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
                match cb.endpoint {
                    Endpoint::Begin => *self.begins.lock().unwrap() += 1,
                    Endpoint::End => *self.ends.lock().unwrap() += 1,
                }
            }
        }
        let begins = Arc::new(Mutex::new(0));
        let ends = Arc::new(Mutex::new(0));
        let mut rt = Runtime::new(RuntimeConfig::default().pre_emi());
        rt.attach_tool(Box::new(CountEndpoints {
            begins: begins.clone(),
            ends: ends.clone(),
        }));
        let a = rt.host_alloc("a", 64);
        rt.target(
            0,
            CodePtr(1),
            &[map(MapType::To, a)],
            Kernel::new("k", KernelCost::fixed(10)).reads(&[a]),
        );
        rt.finish();
        assert!(*begins.lock().unwrap() > 0);
        assert_eq!(*ends.lock().unwrap(), 0, "non-EMI = begin only");
    }

    #[test]
    fn nowait_kernel_overlaps_host_clock() {
        let mut rt = Runtime::with_defaults();
        let a = rt.host_alloc("a", 256);
        let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a)]);
        let t0 = rt.now();
        rt.target_nowait(
            0,
            CodePtr(2),
            &[map(MapType::To, a)],
            Kernel::new("slow", KernelCost::fixed(1_000_000))
                .reads(&[a])
                .writes(&[a]),
        );
        let t1 = rt.now();
        assert!(
            (t1 - t0).as_nanos() < 1_000_000,
            "host must not wait for the async kernel"
        );
        rt.taskwait(0);
        assert!((rt.now() - t0).as_nanos() >= 1_000_000);
        rt.target_data_end(region);
        rt.finish();
    }

    #[test]
    fn nowait_exit_syncs_when_data_is_copied_back() {
        // An implicit tofrom on a nowait target must wait for the kernel
        // before the copy-back, per OpenMP data-environment semantics.
        let mut rt = Runtime::with_defaults();
        let a = rt.host_alloc("a", 256);
        let t0 = rt.now();
        rt.target_nowait(
            0,
            CodePtr(2),
            &[],
            Kernel::new("slow", KernelCost::fixed(2_000_000))
                .reads(&[a])
                .writes(&[a]),
        );
        assert!(
            (rt.now() - t0).as_nanos() >= 2_000_000,
            "copy-back forces synchronization"
        );
        rt.finish();
    }

    #[test]
    fn taskwait_is_idempotent() {
        let mut rt = Runtime::with_defaults();
        rt.taskwait(0);
        let t = rt.now();
        rt.taskwait(0);
        assert_eq!(rt.now(), t);
        rt.finish();
    }

    /// Table-driven advisor for hook tests: one advice per host address.
    struct TableAdvisor {
        rules: Vec<(u64, MapAdvice)>,
    }

    impl MapAdvisor for TableAdvisor {
        fn advise_enter(
            &mut self,
            _device: u32,
            _codeptr: CodePtr,
            host_addr: u64,
            _bytes: u64,
            _map_type: MapType,
        ) -> MapAdvice {
            self.rules
                .iter()
                .find(|(a, _)| *a == host_addr)
                .map(|(_, adv)| *adv)
                .unwrap_or(MapAdvice::KEEP)
        }

        fn advise_exit(
            &mut self,
            device: u32,
            codeptr: CodePtr,
            host_addr: u64,
            bytes: u64,
            map_type: MapType,
        ) -> MapAdvice {
            self.advise_enter(device, codeptr, host_addr, bytes, map_type)
        }
    }

    fn advise(rt: &Runtime, var: VarId, advice: MapAdvice) -> Box<TableAdvisor> {
        Box::new(TableAdvisor {
            rules: vec![(rt.host_addr(var), advice)],
        })
    }

    #[test]
    fn persist_advice_keeps_the_mapping_resident() {
        // The Listing 1 anti-pattern remediated: with persist advice the
        // second region reuses the present entry — one alloc, one H2D.
        let (mut rt, events, _) = recorder_runtime();
        let a = rt.host_alloc("a", 1024);
        rt.host_fill_u32(a, |i| i as u32);
        rt.attach_advisor(advise(
            &rt,
            a,
            MapAdvice {
                persist: Some(AdviceCause::DuplicateTransfer),
                ..MapAdvice::KEEP
            },
        ));
        for _ in 0..3 {
            rt.target(
                0,
                CodePtr(0x100),
                &[map(MapType::To, a)],
                Kernel::new("sum", KernelCost::fixed(1_000)).reads(&[a]),
            );
        }
        rt.finish();
        let ev = events.lock().unwrap();
        let h2d = ev.iter().filter(|e| e.contains("TransferToDevice")).count();
        let allocs = ev.iter().filter(|e| e.contains("Alloc")).count();
        let deletes = ev.iter().filter(|e| e.contains("Delete")).count();
        assert_eq!(h2d, 1, "re-sends dropped: {ev:?}");
        assert_eq!(allocs, 1, "re-allocations dropped");
        assert_eq!(deletes, 0, "releases skipped");
        let rec = rt
            .remediation_stats()
            .counter(0, AdviceCause::DuplicateTransfer);
        assert_eq!(rec.transfers_avoided, 2);
        assert_eq!(rec.transfer_bytes_avoided, 2 * 1024);
        assert!(rec.transfer_time_avoided > SimDuration::ZERO);
        assert_eq!(rec.allocs_avoided, 2);
        assert!(rec.rewrites >= 1);
    }

    #[test]
    fn persist_advice_degrades_tofrom_exit_to_targeted_update() {
        // tofrom + persist: the exit copy-back survives as a targeted
        // update (host visibility preserved), the delete/re-send do not.
        let (mut rt, events, _) = recorder_runtime();
        let a = rt.host_alloc("a", 512);
        rt.attach_advisor(advise(
            &rt,
            a,
            MapAdvice {
                persist: Some(AdviceCause::RoundTrip),
                ..MapAdvice::KEEP
            },
        ));
        for _ in 0..2 {
            rt.target(
                0,
                CodePtr(0x200),
                &[],
                Kernel::new("incr", KernelCost::fixed(100))
                    .reads(&[a])
                    .writes(&[a]),
            );
        }
        rt.finish();
        let ev = events.lock().unwrap();
        let h2d = ev.iter().filter(|e| e.contains("TransferToDevice")).count();
        let d2h = ev
            .iter()
            .filter(|e| e.contains("TransferFromDevice"))
            .count();
        assert_eq!(h2d, 1, "implicit tofrom re-send dropped: {ev:?}");
        assert_eq!(d2h, 2, "copy-back survives as an update each exit");
        let rec = rt.remediation_stats().counter(0, AdviceCause::RoundTrip);
        assert_eq!(rec.updates_injected, 2);
        assert_eq!(rec.transfers_avoided, 1);
    }

    #[test]
    fn skip_advice_downgrades_copies() {
        // skip_to: to → alloc; skip_from: from → release.
        let (mut rt, events, _) = recorder_runtime();
        let a = rt.host_alloc("a", 256);
        rt.attach_advisor(advise(
            &rt,
            a,
            MapAdvice {
                skip_to: Some(AdviceCause::UnusedTransfer),
                skip_from: Some(AdviceCause::RoundTrip),
                ..MapAdvice::KEEP
            },
        ));
        let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::ToFrom, a)]);
        rt.target_data_end(region);
        rt.finish();
        let ev = events.lock().unwrap();
        assert!(
            !ev.iter().any(|e| e.contains("Transfer")),
            "both copies downgraded: {ev:?}"
        );
        assert_eq!(ev.iter().filter(|e| e.contains("Alloc")).count(), 1);
        assert_eq!(ev.iter().filter(|e| e.contains("Delete")).count(), 1);
        let stats = rt.remediation_stats();
        assert_eq!(
            stats
                .counter(0, AdviceCause::UnusedTransfer)
                .transfers_avoided,
            1
        );
        assert_eq!(
            stats.counter(0, AdviceCause::RoundTrip).transfers_avoided,
            1
        );
    }

    #[test]
    fn elide_advice_drops_the_clause_but_never_starves_a_kernel() {
        let (mut rt, events, _) = recorder_runtime();
        let unused = rt.host_alloc("unused", 128);
        let needed = rt.host_alloc("needed", 128);
        let advisor = Box::new(TableAdvisor {
            rules: vec![
                (
                    rt.host_addr(unused),
                    MapAdvice {
                        elide: Some(AdviceCause::UnusedAlloc),
                        ..MapAdvice::KEEP
                    },
                ),
                (
                    rt.host_addr(needed),
                    MapAdvice {
                        elide: Some(AdviceCause::UnusedAlloc),
                        ..MapAdvice::KEEP
                    },
                ),
            ],
        });
        rt.attach_advisor(advisor);
        // `unused` is only mapped by the data region → elided. `needed`
        // is referenced by the kernel → the elision is overridden.
        let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, unused)]);
        rt.target(
            0,
            CodePtr(2),
            &[map(MapType::To, needed)],
            Kernel::new("k", KernelCost::fixed(10)).reads(&[needed]),
        );
        rt.target_data_end(region);
        rt.finish();
        let ev = events.lock().unwrap();
        assert_eq!(
            ev.iter().filter(|e| e.contains("Alloc")).count(),
            1,
            "only the kernel-referenced var is mapped: {ev:?}"
        );
        assert!(rt.warnings().is_empty(), "elided exit must stay silent");
        let rec = rt.remediation_stats().counter(0, AdviceCause::UnusedAlloc);
        assert_eq!(rec.allocs_avoided, 1);
        assert_eq!(rec.transfers_avoided, 1);
    }

    #[test]
    fn skip_to_advice_never_starves_a_kernel() {
        // A skip_to rule learned from one wasted transfer must not drop
        // the copy a *kernel-referenced* map of the same variable needs.
        let (mut rt, events, _) = recorder_runtime();
        let x = rt.host_alloc("x", 64);
        rt.host_fill_u32(x, |i| i as u32 + 1);
        rt.attach_advisor(advise(
            &rt,
            x,
            MapAdvice {
                skip_to: Some(AdviceCause::UnusedTransfer),
                ..MapAdvice::KEEP
            },
        ));
        let mut body = |view: &mut DeviceView<'_>| {
            let vals = view.read_u32(VarId(0));
            assert_eq!(vals[0], 1, "the kernel must see the host data");
        };
        rt.target(
            0,
            CodePtr(1),
            &[map(MapType::To, x)],
            Kernel::new("k", KernelCost::fixed(10))
                .reads(&[x])
                .body(&mut body),
        );
        rt.finish();
        let ev = events.lock().unwrap();
        assert_eq!(
            ev.iter().filter(|e| e.contains("TransferToDevice")).count(),
            1,
            "the copy survives for a kernel-referenced var: {ev:?}"
        );
    }

    #[test]
    fn no_advisor_means_no_remediation_stats() {
        let mut rt = Runtime::with_defaults();
        assert!(!rt.advisor_attached());
        let a = rt.host_alloc("a", 64);
        rt.target(
            0,
            CodePtr(1),
            &[map(MapType::To, a)],
            Kernel::new("k", KernelCost::fixed(10)).reads(&[a]),
        );
        rt.finish();
        assert!(!rt.remediation_stats().any_rewrites());
    }

    #[test]
    fn device_address_reuse_after_full_unmap() {
        // The allocator behaviour Algorithm 3 keys on.
        let mut rt = Runtime::with_defaults();
        let a = rt.host_alloc("a", 4096);
        let mut addrs = Vec::new();
        struct Grab {
            addrs: Arc<Mutex<Vec<u64>>>,
        }
        impl Tool for Grab {
            fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration {
                ToolRegistration::negotiate(&[CallbackKind::TargetDataOpEmi], caps)
            }
            fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
                if cb.optype == DataOpType::Alloc && cb.endpoint == Endpoint::End {
                    self.addrs.lock().unwrap().push(cb.dest_addr);
                }
            }
        }
        let grabbed = Arc::new(Mutex::new(Vec::new()));
        rt.attach_tool(Box::new(Grab {
            addrs: grabbed.clone(),
        }));
        for _ in 0..3 {
            rt.target(
                0,
                CodePtr(1),
                &[map(MapType::To, a)],
                Kernel::new("k", KernelCost::fixed(10)).reads(&[a]),
            );
        }
        rt.finish();
        addrs.extend(grabbed.lock().unwrap().iter().copied());
        assert_eq!(addrs.len(), 3);
        assert_eq!(addrs[0], addrs[1], "repeat alloc reuses the device address");
        assert_eq!(addrs[1], addrs[2]);
    }
}
