//! First-fit device memory allocator with address reuse.
//!
//! Address recycling matters to the reproduction: Algorithm 3 keys
//! repeated allocations on `(host_addr, device, bytes)` precisely because
//! device (and host) allocators hand the same addresses back out, which
//! would otherwise cause false positives "in scenarios where the same
//! memory address is used to map different variables" (§5.3). A bump
//! allocator would never reuse addresses and would silently weaken the
//! tests that pin that behaviour.

use std::collections::BTreeMap;

/// Allocation alignment (256 B, cudaMalloc-like).
const ALIGN: u64 = 256;

#[inline]
fn align_up(v: u64) -> u64 {
    (v + ALIGN - 1) & !(ALIGN - 1)
}

/// A first-fit free-list allocator over a contiguous address space.
#[derive(Debug)]
pub struct FreeListAllocator {
    base: u64,
    capacity: u64,
    /// Free blocks: start → len. Coalesced on free.
    free: BTreeMap<u64, u64>,
    /// Live blocks: start → len.
    live: BTreeMap<u64, u64>,
    /// High-water mark of bytes in use.
    peak_in_use: u64,
    in_use: u64,
}

impl FreeListAllocator {
    /// An allocator managing `[base, base+capacity)`.
    pub fn new(base: u64, capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        free.insert(base, capacity);
        FreeListAllocator {
            base,
            capacity,
            free,
            live: BTreeMap::new(),
            peak_in_use: 0,
            in_use: 0,
        }
    }

    /// Allocate `bytes` (rounded up to alignment). Returns the address,
    /// or `None` if the space is exhausted (device OOM).
    pub fn alloc(&mut self, bytes: u64) -> Option<u64> {
        let need = align_up(bytes.max(1));
        // First fit: lowest-addressed block that is large enough. This is
        // what makes a free-then-alloc of the same size reuse the same
        // address, as real device allocators commonly do.
        let found = self
            .free
            .iter()
            .find(|(_, &len)| len >= need)
            .map(|(&start, &len)| (start, len));
        let (start, len) = found?;
        self.free.remove(&start);
        if len > need {
            self.free.insert(start + need, len - need);
        }
        self.live.insert(start, need);
        self.in_use += need;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        Some(start)
    }

    /// Free the block at `addr`. Returns the block's size, or `None` if
    /// `addr` is not a live allocation (double free / bad pointer).
    pub fn free(&mut self, addr: u64) -> Option<u64> {
        let len = self.live.remove(&addr)?;
        self.in_use -= len;
        // Coalesce with successor.
        let mut start = addr;
        let mut size = len;
        if let Some(&next_len) = self.free.get(&(addr + len)) {
            self.free.remove(&(addr + len));
            size += next_len;
        }
        // Coalesce with predecessor.
        if let Some((&prev_start, &prev_len)) = self.free.range(..addr).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                size += prev_len;
            }
        }
        self.free.insert(start, size);
        Some(len)
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Peak bytes ever allocated simultaneously.
    pub fn peak_in_use(&self) -> u64 {
        self.peak_in_use
    }

    /// Total managed capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Base address of the managed space.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_realloc_reuses_address() {
        // The property Algorithm 3 leans on: same-size realloc after free
        // lands on the same device address.
        let mut a = FreeListAllocator::new(0x1000, 1 << 20);
        let p1 = a.alloc(4096).unwrap();
        a.free(p1).unwrap();
        let p2 = a.alloc(4096).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn distinct_live_blocks_do_not_overlap() {
        let mut a = FreeListAllocator::new(0, 1 << 16);
        let p1 = a.alloc(100).unwrap();
        let p2 = a.alloc(100).unwrap();
        assert!(p2 >= p1 + 256, "alignment-separated");
    }

    #[test]
    fn oom_returns_none() {
        let mut a = FreeListAllocator::new(0, 1024);
        assert!(a.alloc(2048).is_none());
        let p = a.alloc(512).unwrap();
        assert!(a.alloc(1024).is_none());
        a.free(p).unwrap();
        assert!(a.alloc(1024).is_some());
    }

    #[test]
    fn double_free_detected() {
        let mut a = FreeListAllocator::new(0, 4096);
        let p = a.alloc(128).unwrap();
        assert!(a.free(p).is_some());
        assert!(a.free(p).is_none());
        assert!(a.free(0xdead).is_none());
    }

    #[test]
    fn coalescing_allows_full_reuse() {
        let mut a = FreeListAllocator::new(0, 4096);
        let p1 = a.alloc(1024).unwrap();
        let p2 = a.alloc(1024).unwrap();
        let p3 = a.alloc(1024).unwrap();
        a.free(p2).unwrap();
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        // After freeing everything, one block spanning the space remains.
        let big = a.alloc(4096).unwrap();
        assert_eq!(big, 0);
    }

    #[test]
    fn peak_tracking() {
        let mut a = FreeListAllocator::new(0, 1 << 20);
        let p1 = a.alloc(1000).unwrap(); // rounds to 1024
        let p2 = a.alloc(1000).unwrap();
        a.free(p1).unwrap();
        a.free(p2).unwrap();
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.peak_in_use(), 2048);
    }

    proptest! {
        #[test]
        fn random_alloc_free_invariants(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut a = FreeListAllocator::new(0x4000, 1 << 22);
            let mut live: Vec<u64> = Vec::new();
            for op in ops {
                match op {
                    0 | 1 => {
                        if let Some(p) = a.alloc(512) {
                            prop_assert!(!live.contains(&p), "allocator handed out a live address");
                            live.push(p);
                        }
                    }
                    _ => {
                        if let Some(p) = live.pop() {
                            prop_assert!(a.free(p).is_some());
                        }
                    }
                }
            }
            prop_assert_eq!(a.live_blocks(), live.len());
            prop_assert_eq!(a.in_use(), live.len() as u64 * 512);
        }
    }
}
