//! Multi-threaded driving of the simulated runtime.
//!
//! A real OpenMP program's host threads each issue target directives,
//! so an OMPT tool observes callbacks arriving concurrently from every
//! runtime thread. This module reproduces that concurrency with *real
//! OS threads*, in two shapes:
//!
//! * [`run_on_threads`] gives each thread its own [`Runtime`] instance
//!   — its own virtual clock, host memory, and device state (the
//!   rank-per-thread offload shape, as when each host thread drives
//!   its own data environment) — and attaches one caller-supplied tool
//!   per thread. A sharded tool (e.g.
//!   `ompdataperf::tool::ToolHandle::fork_tool`) turns those
//!   per-thread callback streams back into one deterministic trace.
//! * [`run_on_threads_shared`] attaches every thread's runtime to one
//!   [`SharedDevices`] set — `libomptarget`'s true shape: all threads
//!   contend on the same per-device present tables, cross-thread
//!   mapping reuse is real, and each thread may carry its own
//!   `MapAdvisor` handle (remediation under concurrency).
//!
//! Each thread's virtual timeline is deterministic, and sharded trace
//! merging orders events by `(timestamp, shard, per-shard order)`, so
//! the *merged* observation is byte-identical across runs no matter how
//! the OS interleaves the threads — the property the concurrency stress
//! suite pins down.

use crate::config::RuntimeConfig;
use crate::device::SharedDevices;
use crate::runtime::{Runtime, RuntimeStats};
use odp_ompt::{MapAdvisor, RemediationStats, Tool};

/// Run `body` on `threads` OS threads, thread `i` against its own
/// `Runtime::new(cfg.clone())` with `tools[i]` attached. Joins all
/// threads and returns each thread's `(body output, run statistics)` in
/// thread-index order.
///
/// # Panics
/// Propagates a panic from any runtime thread, and panics when
/// `tools.len() != threads`.
pub fn run_on_threads<R, F>(
    threads: u32,
    cfg: &RuntimeConfig,
    tools: Vec<Box<dyn Tool>>,
    body: F,
) -> Vec<(R, RuntimeStats)>
where
    R: Send,
    F: Fn(u32, &mut Runtime) -> R + Sync,
{
    assert_eq!(tools.len(), threads as usize, "one tool per runtime thread");
    std::thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = tools
            .into_iter()
            .enumerate()
            .map(|(i, tool)| {
                let mut cfg = cfg.clone();
                // Each shard draws an independent, reproducible fault
                // stream; totals stay shared across the shards.
                cfg.faults = cfg.faults.for_shard(i as u32);
                scope.spawn(move || {
                    let mut rt = Runtime::new(cfg);
                    rt.attach_tool(tool);
                    let out = body(i as u32, &mut rt);
                    let stats = rt.finish();
                    (out, stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

/// Outcome of a shared-device threaded run.
pub struct SharedThreadOutcome<R> {
    /// Per-thread `(body output, run statistics)`, thread-index order.
    pub results: Vec<(R, RuntimeStats)>,
    /// Per-thread advisor rewrites merged across all runtimes.
    pub remediation: RemediationStats,
    /// The device set the threads shared (for post-run inspection).
    pub devices: SharedDevices,
}

/// Run `body` on `threads` OS threads that all operate on **one shared
/// device set** — the true `libomptarget` shape, where every host
/// thread's directives contend on the same per-device present tables.
/// Thread `i` gets its own `Runtime` (private virtual clock and host
/// memory) attached to the shared devices, with `tools[i]` and, when
/// provided, `advisors[i]` attached.
///
/// Unlike [`run_on_threads`], the *interleaving* of present-table
/// operations is real: which thread allocates a mapping first (and who
/// merely retains it) depends on OS scheduling, exactly as in a real
/// runtime. Deterministic assertions over such runs must force the
/// interleaving (barriers), or assert scheduling-independent facts
/// (e.g. a seeded remediation policy eliminates its finding kinds).
///
/// # Panics
/// Propagates a panic from any runtime thread; panics when
/// `tools.len() != threads` or a non-empty `advisors` has a different
/// length.
pub fn run_on_threads_shared<R, F>(
    threads: u32,
    cfg: &RuntimeConfig,
    tools: Vec<Box<dyn Tool>>,
    advisors: Vec<Option<Box<dyn MapAdvisor>>>,
    body: F,
) -> SharedThreadOutcome<R>
where
    R: Send,
    F: Fn(u32, &mut Runtime) -> R + Sync,
{
    assert_eq!(tools.len(), threads as usize, "one tool per runtime thread");
    assert!(
        advisors.is_empty() || advisors.len() == threads as usize,
        "advisors must be absent or one per runtime thread"
    );
    let devices = SharedDevices::new(cfg);
    let mut advisors = advisors;
    if advisors.is_empty() {
        advisors = (0..threads).map(|_| None).collect();
    }
    let results = std::thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = tools
            .into_iter()
            .zip(advisors)
            .enumerate()
            .map(|(i, (tool, advisor))| {
                let mut cfg = cfg.clone();
                cfg.faults = cfg.faults.for_shard(i as u32);
                let devices = devices.clone();
                scope.spawn(move || {
                    let mut rt = Runtime::with_shared_devices(cfg, devices);
                    rt.attach_tool(tool);
                    if let Some(advisor) = advisor {
                        rt.attach_advisor(advisor);
                    }
                    let out = body(i as u32, &mut rt);
                    let stats = rt.finish();
                    let remedy = rt.remediation_stats();
                    (out, stats, remedy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect::<Vec<_>>()
    });
    let mut remediation = RemediationStats::default();
    let results = results
        .into_iter()
        .map(|(out, stats, remedy)| {
            remediation.merge(&remedy);
            (out, stats)
        })
        .collect();
    SharedThreadOutcome {
        results,
        remediation,
        devices,
    }
}

/// Aggregate per-thread run statistics: counters and cumulative times
/// sum; total time is the slowest thread (the threads run in parallel).
pub fn merged_stats(per_thread: &[RuntimeStats]) -> RuntimeStats {
    let mut out = RuntimeStats::default();
    for s in per_thread {
        out.total_time = out.total_time.max(s.total_time);
        out.transfers += s.transfers;
        out.bytes_transferred += s.bytes_transferred;
        out.allocs += s.allocs;
        out.kernels += s.kernels;
        out.transfer_time += s.transfer_time;
        out.alloc_time += s.alloc_time;
        out.kernel_time += s.kernel_time;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelCost};
    use crate::map;
    use odp_model::{CodePtr, MapType};
    use odp_ompt::{CallbackKind, DataOpCallback, Endpoint, RuntimeCapabilities, ToolRegistration};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Counts end-of-transfer callbacks; shared across all threads.
    struct Counter {
        transfers: Arc<AtomicUsize>,
    }

    impl Tool for Counter {
        fn initialize(&mut self, caps: &RuntimeCapabilities) -> ToolRegistration {
            ToolRegistration::negotiate(&[CallbackKind::TargetDataOpEmi], caps)
        }
        fn on_data_op(&mut self, cb: &DataOpCallback<'_>) {
            if cb.endpoint == Endpoint::End && cb.payload.is_some() {
                self.transfers.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn offload_once(rt: &mut Runtime) {
        let a = rt.host_alloc("a", 256);
        rt.target(
            0,
            CodePtr(0x10),
            &[map(MapType::ToFrom, a)],
            Kernel::new("k", KernelCost::fixed(100))
                .reads(&[a])
                .writes(&[a]),
        );
    }

    #[test]
    fn each_thread_drives_its_own_runtime() {
        let transfers = Arc::new(AtomicUsize::new(0));
        let tools: Vec<Box<dyn Tool>> = (0..4)
            .map(|_| {
                Box::new(Counter {
                    transfers: transfers.clone(),
                }) as Box<dyn Tool>
            })
            .collect();
        let results = run_on_threads(4, &RuntimeConfig::default(), tools, |i, rt| {
            offload_once(rt);
            i
        });
        assert_eq!(results.len(), 4);
        let outs: Vec<u32> = results.iter().map(|(o, _)| *o).collect();
        assert_eq!(outs, vec![0, 1, 2, 3], "results in thread-index order");
        // Each thread: one H2D + one D2H.
        assert_eq!(transfers.load(Ordering::Relaxed), 8);
        let merged = merged_stats(&results.iter().map(|(_, s)| *s).collect::<Vec<_>>());
        assert_eq!(merged.transfers, 8);
        assert_eq!(merged.kernels, 4);
        assert!(merged.total_time.as_nanos() > 0);
        // Threads ran the same deterministic program: identical clocks.
        let times: Vec<u64> = results
            .iter()
            .map(|(_, s)| s.total_time.as_nanos())
            .collect();
        assert!(times.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "one tool per runtime thread")]
    fn tool_count_must_match_thread_count() {
        let _ = run_on_threads(2, &RuntimeConfig::default(), Vec::new(), |_, _| ());
    }

    #[test]
    fn shared_devices_are_reused_across_threads() {
        use crate::map;
        use odp_model::MapType;
        use std::sync::Barrier;

        // All threads open a data region over the same host address and
        // hold it across a barrier: whatever the interleaving, exactly
        // one thread allocates + transfers (map_enter is atomic on the
        // shared present table) and the rest retain the entry.
        let threads = 4u32;
        let transfers = Arc::new(AtomicUsize::new(0));
        let tools: Vec<Box<dyn Tool>> = (0..threads)
            .map(|_| {
                Box::new(Counter {
                    transfers: transfers.clone(),
                }) as Box<dyn Tool>
            })
            .collect();
        let barrier = Barrier::new(threads as usize);
        let outcome = run_on_threads_shared(
            threads,
            &RuntimeConfig::default(),
            tools,
            Vec::new(),
            |_, rt| {
                let a = rt.host_alloc("a", 256);
                let region = rt.target_data_begin(0, CodePtr(0x10), &[map(MapType::To, a)]);
                barrier.wait(); // every region is open before any closes
                rt.target_data_end(region);
            },
        );
        let stats: Vec<RuntimeStats> = outcome.results.iter().map(|(_, s)| *s).collect();
        let merged = merged_stats(&stats);
        assert_eq!(merged.allocs, 1, "one shared allocation: {merged:?}");
        assert_eq!(merged.transfers, 1, "one shared H2D: {merged:?}");
        assert_eq!(transfers.load(Ordering::Relaxed), 1);
        assert_eq!(
            outcome.devices.present_mappings(0),
            0,
            "the last release frees the shared mapping"
        );
        assert!(!outcome.remediation.any_rewrites(), "no advisor attached");
    }

    #[test]
    #[should_panic(expected = "advisors must be absent or one per runtime thread")]
    fn shared_advisor_count_must_match() {
        let tools: Vec<Box<dyn Tool>> = (0..2)
            .map(|_| {
                Box::new(Counter {
                    transfers: Arc::new(AtomicUsize::new(0)),
                }) as Box<dyn Tool>
            })
            .collect();
        let _ = run_on_threads_shared(2, &RuntimeConfig::default(), tools, vec![None], |_, _| ());
    }
}
