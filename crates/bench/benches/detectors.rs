//! Criterion micro-benchmark: the five detection algorithms over a
//! realistic synthetic event log (post-mortem analysis cost), plus the
//! fused-engine vs. five-separate-passes comparison that motivates
//! `core::detect::engine` (the BENCH trajectory's baseline: the fused
//! sweep must beat the separate passes by ≥ 2× at 100k+ events).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};
use odp_ompt::{CompilerProfile, DataOpCallback, DataOpType, Endpoint, Tool};
use ompdataperf::detect::{EventView, Findings, StreamingEngine};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::hint::black_box;
use std::sync::Arc;

/// Build a log shaped like a real trace: per iteration one alloc + H2D +
/// kernel + D2H + delete, with every fourth iteration re-sending
/// identical content.
fn build_log(iters: usize) -> (Vec<DataOpEvent>, Vec<TargetEvent>) {
    let mut ops = Vec::with_capacity(iters * 5);
    let mut kernels = Vec::with_capacity(iters);
    let mut id = 0u64;
    let next = |id: &mut u64| {
        *id += 1;
        EventId(*id)
    };
    for i in 0..iters {
        let t = (i as u64) * 100;
        let hash = if i % 4 == 0 { 42 } else { 1000 + i as u64 };
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Alloc,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: None,
            span: TimeSpan::new(SimTime(t), SimTime(t + 5)),
            codeptr: CodePtr(0x1),
        });
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: Some(HashVal(hash)),
            span: TimeSpan::new(SimTime(t + 10), SimTime(t + 20)),
            codeptr: CodePtr(0x2),
        });
        kernels.push(TargetEvent {
            id: next(&mut id),
            device: DeviceId::target(0),
            kind: TargetKind::Kernel,
            span: TimeSpan::new(SimTime(t + 30), SimTime(t + 60)),
            codeptr: CodePtr(0x3),
        });
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::target(0),
            dest_device: DeviceId::HOST,
            src_addr: 0xd000,
            dest_addr: 0x1000,
            bytes: 4096,
            hash: Some(HashVal(5000 + i as u64)),
            span: TimeSpan::new(SimTime(t + 70), SimTime(t + 80)),
            codeptr: CodePtr(0x4),
        });
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Delete,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: None,
            span: TimeSpan::new(SimTime(t + 90), SimTime(t + 95)),
            codeptr: CodePtr(0x5),
        });
    }
    (ops, kernels)
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_all_five");
    for &iters in &[1_000usize, 10_000] {
        let (ops, kernels) = build_log(iters);
        group.bench_with_input(
            BenchmarkId::from_parameter(iters),
            &(ops, kernels),
            |b, (ops, kernels)| {
                b.iter(|| black_box(Findings::detect(black_box(ops), black_box(kernels), 1)))
            },
        );
    }
    group.finish();
}

/// Fused engine vs. the five standalone passes at 10k / 100k / 1M
/// events (`build_log` emits five events per iteration). Both sides
/// start from the same sorted slices and produce identical findings;
/// the fused side includes building the shared `EventView`.
fn bench_fused_vs_separate(c: &mut Criterion) {
    for &events in &[10_000usize, 100_000, 1_000_000] {
        let (ops, kernels) = build_log(events / 5);
        let total = (ops.len() + kernels.len()) as u64;

        let mut group = c.benchmark_group(format!("detect_{events}_events"));
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(
            BenchmarkId::new("separate", events),
            &(&ops, &kernels),
            |b, (ops, kernels)| {
                b.iter(|| {
                    black_box(Findings::detect_separate(
                        black_box(ops),
                        black_box(kernels),
                        1,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fused", events),
            &(&ops, &kernels),
            |b, (ops, kernels)| {
                b.iter(|| {
                    let view = EventView::new(black_box(ops), black_box(kernels), 1);
                    black_box(Findings::detect_fused(&view))
                })
            },
        );
        group.finish();
    }
}

/// Streaming (per-callback pushes + watermark advances + finalize)
/// vs. the post-mortem fused sweep, at 10k / 100k events. The streaming
/// side pays one clone, one heap push/pop, and the state-machine step
/// per event — this group tracks that per-callback overhead so online
/// mode cannot silently regress the tool's 5 % budget.
fn bench_streaming_vs_postmortem(c: &mut Criterion) {
    enum Arrival {
        Op(DataOpEvent),
        Kernel(TargetEvent),
    }
    for &events in &[10_000usize, 100_000] {
        let (ops, kernels) = build_log(events / 5);
        let total = (ops.len() + kernels.len()) as u64;
        // build_log emits non-overlapping spans, so completion order is
        // chronological; the watermark is simply each event's end.
        let mut arrivals: Vec<Arrival> = ops.iter().cloned().map(Arrival::Op).collect();
        arrivals.extend(kernels.iter().cloned().map(Arrival::Kernel));
        arrivals.sort_by_key(|a| match a {
            Arrival::Op(e) => (e.span.end, e.id.0),
            Arrival::Kernel(k) => (k.span.end, k.id.0),
        });

        let mut group = c.benchmark_group("streaming_vs_postmortem");
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(
            BenchmarkId::new("postmortem", events),
            &(&ops, &kernels),
            |b, (ops, kernels)| {
                b.iter(|| black_box(Findings::detect(black_box(ops), black_box(kernels), 1)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming", events),
            &(&ops, &kernels, &arrivals),
            |b, (ops, kernels, arrivals)| {
                b.iter(|| {
                    let mut engine = StreamingEngine::default();
                    for arrival in arrivals.iter() {
                        match arrival {
                            Arrival::Op(e) => {
                                let end = e.span.end;
                                engine.push_data_op(e.clone());
                                engine.advance_watermark(end);
                            }
                            Arrival::Kernel(k) => {
                                let end = k.span.end;
                                engine.push_target(k.clone());
                                engine.advance_watermark(end);
                            }
                        }
                    }
                    let view = EventView::new(black_box(ops), black_box(kernels), 1);
                    black_box(engine.finalize(&view))
                })
            },
        );
        group.finish();
    }
}

/// Per-callback collection cost under concurrency: the sharded tool
/// (per-thread shard locks + atomic watermark publishes; zero global
/// lock acquisitions on the fast path) against the pre-refactor design
/// — every callback funnelled through one global `Mutex<TraceLog>`.
/// Near-linear callback throughput from 1→4 threads on the sharded
/// side is the acceptance signal; the single-lock side collapses as
/// threads contend.
fn bench_sharded_vs_single_lock(c: &mut Criterion) {
    const OPS_PER_THREAD: u64 = 10_000;

    fn callback(endpoint: Endpoint, id: u64, time: u64) -> DataOpCallback<'static> {
        DataOpCallback {
            endpoint,
            target_id: 1,
            host_op_id: id,
            optype: DataOpType::TransferToDevice,
            src_device: DeviceId::HOST,
            src_addr: 0x1000,
            dest_device: DeviceId::target(0),
            dest_addr: 0xd000,
            bytes: 64,
            codeptr_ra: CodePtr(0x42),
            time: SimTime(time),
            payload: None,
        }
    }

    /// The old design, reproduced for comparison: one global lock
    /// around the one shared log, taken once per recorded event.
    fn single_lock_storm(threads: u64) {
        let log = Arc::new(parking_lot::Mutex::new(odp_trace::TraceLog::new()));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let log = log.clone();
                s.spawn(move || {
                    let mut open = std::collections::HashMap::new();
                    for i in 0..OPS_PER_THREAD {
                        let t = i * 10;
                        open.insert(i, SimTime(t));
                        let begin = open.remove(&i).unwrap();
                        log.lock().record_data_op(
                            DataOpKind::Transfer,
                            DeviceId::HOST,
                            DeviceId::target(0),
                            0x1000,
                            0xd000,
                            64,
                            None,
                            TimeSpan::new(begin, SimTime(t + 5)),
                            CodePtr(0x42),
                        );
                    }
                });
            }
        });
        black_box(log.lock().data_op_count());
    }

    fn sharded_storm(threads: u64) {
        let (tool0, handle) = OmpDataPerfTool::new(ToolConfig::default());
        let mut tools = vec![tool0];
        for _ in 1..threads {
            tools.push(handle.fork_tool());
        }
        let caps = CompilerProfile::LlvmClang.capabilities();
        std::thread::scope(|s| {
            for mut tool in tools {
                let caps = caps.clone();
                s.spawn(move || {
                    tool.initialize(&caps);
                    for i in 0..OPS_PER_THREAD {
                        let t = i * 10;
                        tool.on_data_op(&callback(Endpoint::Begin, i, t));
                        tool.on_data_op(&callback(Endpoint::End, i, t + 5));
                    }
                });
            }
        });
        black_box(handle.take_trace().data_op_count());
    }

    for &threads in &[1u64, 4, 16] {
        let mut group = c.benchmark_group("sharded_vs_single_lock");
        group.throughput(Throughput::Elements(threads * OPS_PER_THREAD));
        group.bench_function(BenchmarkId::new("single_lock", threads), |b| {
            b.iter(|| single_lock_storm(threads))
        });
        group.bench_function(BenchmarkId::new("sharded", threads), |b| {
            b.iter(|| sharded_storm(threads))
        });
        group.finish();
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_detectors, bench_fused_vs_separate, bench_streaming_vs_postmortem, bench_sharded_vs_single_lock
);
criterion_main!(benches);
