//! Criterion micro-benchmark: the five detection algorithms over a
//! realistic synthetic event log (post-mortem analysis cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent,
    TargetKind, TimeSpan,
};
use ompdataperf::detect::Findings;
use std::hint::black_box;

/// Build a log shaped like a real trace: per iteration one alloc + H2D +
/// kernel + D2H + delete, with every fourth iteration re-sending
/// identical content.
fn build_log(iters: usize) -> (Vec<DataOpEvent>, Vec<TargetEvent>) {
    let mut ops = Vec::with_capacity(iters * 5);
    let mut kernels = Vec::with_capacity(iters);
    let mut id = 0u64;
    let next = |id: &mut u64| {
        *id += 1;
        EventId(*id)
    };
    for i in 0..iters {
        let t = (i as u64) * 100;
        let hash = if i % 4 == 0 { 42 } else { 1000 + i as u64 };
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Alloc,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: None,
            span: TimeSpan::new(SimTime(t), SimTime(t + 5)),
            codeptr: CodePtr(0x1),
        });
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: Some(HashVal(hash)),
            span: TimeSpan::new(SimTime(t + 10), SimTime(t + 20)),
            codeptr: CodePtr(0x2),
        });
        kernels.push(TargetEvent {
            id: next(&mut id),
            device: DeviceId::target(0),
            kind: TargetKind::Kernel,
            span: TimeSpan::new(SimTime(t + 30), SimTime(t + 60)),
            codeptr: CodePtr(0x3),
        });
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::target(0),
            dest_device: DeviceId::HOST,
            src_addr: 0xd000,
            dest_addr: 0x1000,
            bytes: 4096,
            hash: Some(HashVal(5000 + i as u64)),
            span: TimeSpan::new(SimTime(t + 70), SimTime(t + 80)),
            codeptr: CodePtr(0x4),
        });
        ops.push(DataOpEvent {
            id: next(&mut id),
            kind: DataOpKind::Delete,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: None,
            span: TimeSpan::new(SimTime(t + 90), SimTime(t + 95)),
            codeptr: CodePtr(0x5),
        });
    }
    (ops, kernels)
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_all_five");
    for &iters in &[1_000usize, 10_000] {
        let (ops, kernels) = build_log(iters);
        group.bench_with_input(
            BenchmarkId::from_parameter(iters),
            &(ops, kernels),
            |b, (ops, kernels)| {
                b.iter(|| black_box(Findings::detect(black_box(ops), black_box(kernels), 1)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_detectors
);
criterion_main!(benches);
