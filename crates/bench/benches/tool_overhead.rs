//! Criterion micro-benchmark: end-to-end per-event tool overhead — the
//! monitored program's view of the profiler (hash + record append).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odp_model::{CodePtr, DeviceId, SimTime};
use odp_ompt::{DataOpCallback, DataOpType, Endpoint, Tool};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::hint::black_box;

fn bench_data_op_callback(c: &mut Criterion) {
    let mut group = c.benchmark_group("tool_data_op_event");
    for &size in &[64usize, 4096, 262_144] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, payload| {
            let (mut tool, _handle) = OmpDataPerfTool::new(ToolConfig::default());
            tool.initialize(&odp_ompt::CompilerProfile::LlvmClang.capabilities());
            let mut op_id = 0u64;
            let mut t = 0u64;
            fn mk<'a>(
                endpoint: Endpoint,
                op_id: u64,
                time: u64,
                bytes: u64,
                p: Option<&'a [u8]>,
            ) -> DataOpCallback<'a> {
                DataOpCallback {
                    endpoint,
                    target_id: 1,
                    host_op_id: op_id,
                    optype: DataOpType::TransferToDevice,
                    src_device: DeviceId::HOST,
                    src_addr: 0x1000,
                    dest_device: DeviceId::target(0),
                    dest_addr: 0xd000,
                    bytes,
                    codeptr_ra: CodePtr(0x42),
                    time: SimTime(time),
                    payload: p,
                }
            }
            b.iter(|| {
                op_id += 1;
                t += 20;
                let bytes = payload.len() as u64;
                tool.on_data_op(&mk(Endpoint::Begin, op_id, t, bytes, None));
                tool.on_data_op(black_box(&mk(
                    Endpoint::End,
                    op_id,
                    t + 10,
                    bytes,
                    Some(payload),
                )));
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_data_op_callback
);
criterion_main!(benches);
