//! Criterion micro-benchmark: present-table and device-allocator
//! operations — the simulated runtime's per-map-clause hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use odp_sim::alloc::FreeListAllocator;
use odp_sim::PresentTable;
use std::hint::black_box;

fn bench_present_table(c: &mut Criterion) {
    c.bench_function("present_lookup_hit", |b| {
        let mut t = PresentTable::new();
        for i in 0..1024u64 {
            t.insert(0x1000 + i * 64, 0xd000 + i * 64, 64);
        }
        b.iter(|| black_box(t.lookup(black_box(0x1000 + 512 * 64))));
    });

    c.bench_function("present_retain_release_cycle", |b| {
        let mut t = PresentTable::new();
        t.insert(0x1000, 0xd000, 4096);
        b.iter(|| {
            t.retain(black_box(0x1000));
            black_box(t.release(0x1000));
        });
    });

    c.bench_function("map_enter_exit_cycle", |b| {
        let mut t = PresentTable::new();
        let mut addr = 0xd000u64;
        b.iter(|| {
            t.insert(black_box(0x1000), addr, 4096);
            addr += 64;
            black_box(t.release(0x1000));
        });
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("device_alloc_free_cycle", |b| {
        let mut a = FreeListAllocator::new(0xd000_0000, 1 << 30);
        b.iter(|| {
            let p = a.alloc(black_box(4096)).unwrap();
            black_box(a.free(p));
        });
    });

    c.bench_function("device_alloc_free_fragmented", |b| {
        let mut a = FreeListAllocator::new(0xd000_0000, 1 << 30);
        // Pre-fragment: many live blocks of mixed sizes.
        let live: Vec<u64> = (0..512)
            .map(|i| a.alloc(256 + (i % 7) * 512).unwrap())
            .collect();
        // Free every other block to punch holes.
        for p in live.iter().step_by(2) {
            a.free(*p);
        }
        b.iter(|| {
            let p = a.alloc(black_box(384)).unwrap();
            black_box(a.free(p));
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_present_table, bench_allocator
);
criterion_main!(benches);
