//! Criterion micro-benchmark: trace-record append cost — the tool's
//! per-event hot path (must stay tiny to preserve the 5 % overhead).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use odp_model::{CodePtr, DataOpKind, DeviceId, SimTime, TargetKind, TimeSpan};
use odp_trace::TraceLog;
use std::hint::black_box;

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_append");
    group.throughput(Throughput::Elements(1));

    group.bench_function("data_op_record_72B", |b| {
        let mut log = TraceLog::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                black_box(0x1000),
                0xd000,
                4096,
                Some(black_box(0xabcdef)),
                TimeSpan::new(SimTime(t), SimTime(t + 5)),
                CodePtr(0x42),
            );
        });
    });

    group.bench_function("target_record_24B", |b| {
        let mut log = TraceLog::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            log.record_target(
                TargetKind::Kernel,
                DeviceId::target(0),
                TimeSpan::new(SimTime(t), SimTime(t + 5)),
                CodePtr(black_box(0x43)),
            );
        });
    });

    group.finish();
}

fn bench_hydration(c: &mut Criterion) {
    let mut log = TraceLog::new();
    for i in 0..50_000u64 {
        log.record_data_op(
            DataOpKind::Transfer,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1000 + i,
            0xd000,
            64,
            Some(i),
            TimeSpan::new(SimTime(i * 10), SimTime(i * 10 + 5)),
            CodePtr(0x42),
        );
    }
    c.bench_function("hydrate_50k_data_ops", |b| {
        b.iter(|| black_box(log.data_op_events()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_append, bench_hydration
);
criterion_main!(benches);
