//! Criterion micro-benchmark: cost of the fault-injection hook on the
//! per-event hot path. The disabled (default) plan must be a single
//! flag test — the monitored program's per-event overhead with
//! `FaultPlan::none()` wired in stays within noise (≤ 5%) of the plain
//! callback path; an enabled plan pays one RNG draw per event.

use criterion::{criterion_group, criterion_main, Criterion};
use odp_model::{CodePtr, DeviceId, SimTime};
use odp_ompt::{DataOpCallback, DataOpType, Endpoint, Tool};
use odp_sim::{FaultPlan, FaultProfile};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::hint::black_box;

fn mk(endpoint: Endpoint, op_id: u64, time: u64, p: Option<&[u8]>) -> DataOpCallback<'_> {
    DataOpCallback {
        endpoint,
        target_id: 1,
        host_op_id: op_id,
        optype: DataOpType::TransferToDevice,
        src_device: DeviceId::HOST,
        src_addr: 0x1000,
        dest_device: DeviceId::target(0),
        dest_addr: 0xd000,
        bytes: 64,
        codeptr_ra: CodePtr(0x42),
        time: SimTime(time),
        payload: p,
    }
}

/// One monitored 64-byte transfer event (Begin + hashed End), with the
/// runtime's fault consultation optionally riding in front — exactly
/// where `dispatch_data_op_with_payload` puts it.
fn bench_fault_hook(c: &mut Criterion) {
    let payload: Vec<u8> = (0..64u32).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("fault_overhead");

    let variants: [(&str, Option<FaultPlan>); 3] = [
        // The tool alone: the ~65 ns/event baseline.
        ("baseline", None),
        // The default wiring: plan present but disabled.
        ("noop_plan", Some(FaultPlan::none())),
        // An active profile: one RNG draw per event.
        (
            "lossy_plan",
            Some(FaultPlan::from_profile(FaultProfile::Lossy, 42)),
        ),
    ];
    for (name, plan) in variants {
        group.bench_function(name, |b| {
            let (mut tool, _handle) = OmpDataPerfTool::new(ToolConfig::default());
            tool.initialize(&odp_ompt::CompilerProfile::LlvmClang.capabilities());
            let mut session = plan.as_ref().map(|p| p.session());
            let mut op_id = 0u64;
            let mut t = 0u64;
            b.iter(|| {
                op_id += 1;
                t += 20;
                if let Some(s) = session.as_mut() {
                    black_box(s.on_data_op(true));
                }
                tool.on_data_op(&mk(Endpoint::Begin, op_id, t, None));
                tool.on_data_op(black_box(&mk(Endpoint::End, op_id, t + 10, Some(&payload))));
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(800)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_fault_hook
);
criterion_main!(benches);
