//! Criterion micro-benchmark: the streaming engine's shard-run reorder
//! pipeline ([`RunMergeBuffer`]) against the `BinaryHeap` oracle it
//! replaced, across shard counts (1–8) and inversion rates (0%, 1%,
//! 10% of events arriving with an out-of-order key within their
//! shard). The heap pays a log-n sift per event regardless of how
//! sorted the input already is; the run merge appends in-order events
//! to per-shard runs and only the rare genuine inversion touches its
//! side-pocket heap, so the gap widens exactly where real traces live
//! (mostly-ordered arrivals).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odp_model::SimTime;
use ompdataperf::detect::reorder::{RunMergeBuffer, SortKey};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const EVENTS: u64 = 100_000;
/// Watermark lag: events this far behind the newest arrival retire.
const LAG: u64 = 1_000;
/// Drain cadence (events between watermark advances) — the ring-drain
/// batch shape the tool produces.
const BATCH: u64 = 256;

/// One synthetic arrival: `(shard, key, value)`.
type Arrival = (u32, SortKey, u64);

/// Deterministic shard-interleaved arrivals: per-shard times ascend,
/// except that `inv_permille` of events lag far enough behind their
/// shard's frontier to be genuine inversions.
fn build_arrivals(shards: u32, inv_permille: u64) -> Vec<Arrival> {
    let mut out = Vec::with_capacity(EVENTS as usize);
    let mut rng = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift seed
    for i in 0..EVENTS {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let shard = (rng >> 32) as u32 % shards;
        let t = i * 10;
        let t = if rng % 1000 < inv_permille {
            t.saturating_sub(LAG / 2)
        } else {
            t
        };
        out.push((shard, (SimTime(t), i, 0), i));
    }
    out
}

/// Sum of drained values (identical for both structures — the compiler
/// cannot elide either pipeline).
fn run_merge(arrivals: &[Arrival]) -> u64 {
    let mut buf: RunMergeBuffer<u64> = RunMergeBuffer::default();
    let mut acc = 0u64;
    for (n, &(shard, key, value)) in arrivals.iter().enumerate() {
        buf.push(shard, key, value);
        if n as u64 % BATCH == BATCH - 1 {
            let wm = SimTime((key.0).0.saturating_sub(LAG));
            while let Some(v) = buf.pop_if(|k| k.0 <= wm) {
                acc = acc.wrapping_add(v);
            }
        }
    }
    while let Some(v) = buf.pop_if(|_| true) {
        acc = acc.wrapping_add(v);
    }
    acc
}

fn heap_oracle(arrivals: &[Arrival]) -> u64 {
    let mut heap: BinaryHeap<Reverse<(SortKey, u64)>> = BinaryHeap::new();
    let mut acc = 0u64;
    for (n, &(_, key, value)) in arrivals.iter().enumerate() {
        heap.push(Reverse((key, value)));
        if n as u64 % BATCH == BATCH - 1 {
            let wm = SimTime((key.0).0.saturating_sub(LAG));
            while let Some(&Reverse((k, _))) = heap.peek() {
                if k.0 > wm {
                    break;
                }
                let Some(Reverse((_, v))) = heap.pop() else {
                    break;
                };
                acc = acc.wrapping_add(v);
            }
        }
    }
    while let Some(Reverse((_, v))) = heap.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

fn bench_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder");
    group.throughput(Throughput::Elements(EVENTS));
    for &shards in &[1u32, 2, 4, 8] {
        for &inv_permille in &[0u64, 10, 100] {
            let arrivals = build_arrivals(shards, inv_permille);
            let label = format!("{}sh_{}pm", shards, inv_permille);
            group.bench_with_input(
                BenchmarkId::new("run_merge", &label),
                &arrivals,
                |b, arrivals| b.iter(|| black_box(run_merge(black_box(arrivals)))),
            );
            group.bench_with_input(
                BenchmarkId::new("heap_oracle", &label),
                &arrivals,
                |b, arrivals| b.iter(|| black_box(heap_oracle(black_box(arrivals)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reorder);
criterion_main!(benches);
