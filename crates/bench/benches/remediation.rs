//! Criterion micro-benchmark: the cost and the payoff of online
//! remediation.
//!
//! * `remediation_overhead/consult` — the raw policy lookup the runtime
//!   pays per map-clause item (with an empty table and with 1k learned
//!   rules); this is the only cost a remediated run adds to regions
//!   that need no rewrite.
//! * `remediation_overhead/run` — a synthetic iterative offload pattern
//!   (the Listing 1 shape: re-map, kernel, unmap) driven end to end at
//!   10k/100k-event scale, baseline vs. adaptive; the adaptive run
//!   reports its recovered bytes so the payoff is visible next to the
//!   consult cost.
//! * `remediation_overhead/shared_consult` — the same consult served
//!   through a `SharedRemediator` per-thread advisor handle (policy
//!   behind a mutex + the per-consult findings pump), the cost every
//!   map clause pays in a threaded `--remediate` run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odp_model::MapType;
use odp_ompt::MapAdvisor as _;
use odp_sim::{map, Kernel, KernelCost, Runtime, RuntimeConfig};
use ompdataperf::remedy::{LiveRemediator, RemediationPolicy, SharedRemediator};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::hint::black_box;

/// Drive `iters` iterations of the re-map/kernel/unmap anti-pattern;
/// returns (bytes actually transferred, bytes recovered). Each
/// iteration emits ~5 data-op events + 1 kernel, so 2k iterations ≈ 10k
/// events and 20k iterations ≈ 100k events.
fn drive(iters: usize, remediate: bool) -> (u64, u64) {
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: remediate,
        ..Default::default()
    });
    let mut rt = Runtime::new(RuntimeConfig::default());
    rt.attach_tool(Box::new(tool));
    if remediate {
        let (remediator, _policy) = LiveRemediator::new(handle.clone());
        rt.attach_advisor(Box::new(remediator));
    }
    let a = rt.host_alloc("a", 4096);
    rt.host_fill_u32(a, |i| i as u32);
    for _ in 0..iters {
        let region = rt.target_data_begin(0, odp_model::CodePtr(0x100), &[map(MapType::To, a)]);
        rt.target(
            0,
            odp_model::CodePtr(0x200),
            &[map(MapType::To, a)],
            Kernel::new("k", KernelCost::fixed(500)).reads(&[a]),
        );
        rt.target_data_end(region);
    }
    let stats = rt.finish();
    let recovered = rt.remediation_stats().totals().transfer_bytes_avoided;
    drop(handle.take_trace());
    (stats.bytes_transferred, recovered)
}

fn bench_remediation(c: &mut Criterion) {
    let mut group = c.benchmark_group("remediation_overhead");

    // Policy consult cost per map-clause item.
    for rules in [0usize, 1_000] {
        let mut policy = RemediationPolicy::new();
        for i in 0..rules {
            use odp_model::CodePtr;
            use ompdataperf::detect::StreamFinding;
            policy.observe(&StreamFinding::RepeatedAlloc {
                host_addr: 0x1000 + (i as u64) * 64,
                device: odp_model::DeviceId::target(0),
                bytes: 64,
                codeptr: CodePtr(0x1),
                alloc: i as u64,
                occurrence: 2,
                confidence: ompdataperf::Confidence::Confirmed,
            });
        }
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("consult", format!("rules_{rules}")), |b| {
            let mut addr = 0u64;
            b.iter(|| {
                addr = addr.wrapping_add(64) & 0xFFFF;
                black_box(policy.advise(0, 0x1000 + addr))
            })
        });
    }

    // The threaded shape: one policy behind a per-thread advisor
    // handle. Measures the mutex + pump overhead on top of the raw
    // lookup above.
    {
        let mut policy = RemediationPolicy::new();
        for i in 0..1_000u64 {
            use odp_model::CodePtr;
            use ompdataperf::detect::StreamFinding;
            policy.observe(&StreamFinding::RepeatedAlloc {
                host_addr: 0x1000 + i * 64,
                device: odp_model::DeviceId::target(0),
                bytes: 64,
                codeptr: CodePtr(0x1),
                alloc: i,
                occurrence: 2,
                confidence: ompdataperf::Confidence::Confirmed,
            });
        }
        let (remediator, _cell) = SharedRemediator::seeded(policy);
        let mut advisor = remediator.fork_advisor();
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("shared_consult", "rules_1000"), |b| {
            let mut addr = 0u64;
            b.iter(|| {
                addr = addr.wrapping_add(64) & 0xFFFF;
                black_box(advisor.advise_enter(
                    0,
                    odp_model::CodePtr(0x1),
                    0x1000 + addr,
                    64,
                    MapType::To,
                ))
            })
        });
    }

    // End-to-end: baseline vs adaptive at 10k/100k-event scale.
    for (label, iters) in [("10k_events", 2_000usize), ("100k_events", 20_000)] {
        group.throughput(Throughput::Elements(iters as u64));
        group.bench_function(BenchmarkId::new("run_baseline", label), |b| {
            b.iter(|| black_box(drive(iters, false)))
        });
        group.bench_function(BenchmarkId::new("run_adaptive", label), |b| {
            b.iter(|| black_box(drive(iters, true)))
        });
        let (baseline_bytes, _) = drive(iters, false);
        let (actual, recovered) = drive(iters, true);
        println!(
            "remediation_overhead/{label}: baseline {baseline_bytes} B, \
             adaptive {actual} B moved + {recovered} B recovered"
        );
        assert!(recovered > 0, "the adaptive run must recover bytes");
        assert!(actual < baseline_bytes);
    }

    group.finish();
}

criterion_group!(benches, bench_remediation);
criterion_main!(benches);
