//! Criterion micro-benchmark: content-hash throughput for the Figure-5
//! representatives across payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use odp_hash::HashAlgoId;
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_throughput");
    for &size in &[64usize, 4 * 1024, 256 * 1024] {
        let data: Vec<u8> = (0..size).map(|i| (i * 131 % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        for algo in HashAlgoId::FIGURE5 {
            group.bench_with_input(BenchmarkId::new(algo.name(), size), &data, |b, data| {
                b.iter(|| black_box(algo.hash(black_box(data))))
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(700)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_hashes
);
criterion_main!(benches);
