//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    // First column left-aligned.
                    let _ = write!(out, "{:<w$}", cell, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a byte count the way Figure 3's axis does (powers of two).
pub fn pow2_bytes(b: usize) -> String {
    if b == 0 {
        return "0".into();
    }
    let log = (b as f64).log2();
    format!("{b} (~2^{log:.1})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn pow2_rendering() {
        assert_eq!(pow2_bytes(0), "0");
        assert!(pow2_bytes(1024).contains("2^10.0"));
    }
}
