// The vendored `json!` stand-in expands field-by-field recursively; the
// bench document's field count needs more headroom than the default 128.
#![recursion_limit = "512"]

//! Hot-path throughput probe for the columnar/ring refactor: the fused
//! detector sweep (Melem/s over the columnar `EventView`), the
//! per-callback collection cost of the sharded tool (ns/event, ring
//! ingest on and off), and the streaming increment — the three numbers
//! the BENCH trajectory tracks against `BENCH_hotpath.json`.
//!
//! Unlike the criterion benches this is a plain binary with a stable
//! JSON schema, so CI's perf guard can diff a fresh run against the
//! checked-in baseline without parsing criterion output.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin hotpath -- \
//!     [--quick] [--json PATH] [--guard BASELINE]
//! ```
//!
//! `--guard BASELINE` compares the fresh run against the checked-in
//! baseline and exits non-zero on a >20% regression in any gated
//! number: fused, persist_save, and persist_load Melem/s (throughput
//! floors) plus streaming, reorder, and callback ns/event (latency
//! ceilings) — the contract `scripts/perf_guard.sh` enforces in CI.

use odp_bench::{measure_wall, Table};
use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};
use odp_ompt::{CompilerProfile, DataOpCallback, DataOpType, Endpoint, Tool};
use ompdataperf::detect::{EventView, Findings, StreamingEngine};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Same trace shape as the criterion detector bench: five events per
/// iteration (alloc + H2D + kernel + D2H + delete), every fourth H2D
/// re-sending identical content so the detectors have real work.
fn build_log(iters: usize) -> (Vec<DataOpEvent>, Vec<TargetEvent>) {
    let mut ops = Vec::with_capacity(iters * 4);
    let mut kernels = Vec::with_capacity(iters);
    let mut id = 0u64;
    let mut next = || {
        id += 1;
        EventId(id)
    };
    for i in 0..iters {
        let t = (i as u64) * 100;
        let hash = if i % 4 == 0 { 42 } else { 1000 + i as u64 };
        ops.push(DataOpEvent {
            id: next(),
            kind: DataOpKind::Alloc,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: None,
            span: TimeSpan::new(SimTime(t), SimTime(t + 5)),
            codeptr: CodePtr(0x1),
        });
        ops.push(DataOpEvent {
            id: next(),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: Some(HashVal(hash)),
            span: TimeSpan::new(SimTime(t + 10), SimTime(t + 20)),
            codeptr: CodePtr(0x2),
        });
        kernels.push(TargetEvent {
            id: next(),
            device: DeviceId::target(0),
            kind: TargetKind::Kernel,
            span: TimeSpan::new(SimTime(t + 30), SimTime(t + 60)),
            codeptr: CodePtr(0x3),
        });
        ops.push(DataOpEvent {
            id: next(),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::target(0),
            dest_device: DeviceId::HOST,
            src_addr: 0xd000,
            dest_addr: 0x1000,
            bytes: 4096,
            hash: Some(HashVal(5000 + i as u64)),
            span: TimeSpan::new(SimTime(t + 70), SimTime(t + 80)),
            codeptr: CodePtr(0x4),
        });
        ops.push(DataOpEvent {
            id: next(),
            kind: DataOpKind::Delete,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000,
            dest_addr: 0xd000,
            bytes: 4096,
            hash: None,
            span: TimeSpan::new(SimTime(t + 90), SimTime(t + 95)),
            codeptr: CodePtr(0x5),
        });
    }
    (ops, kernels)
}

struct Sweep {
    events: usize,
    melem_per_s: f64,
    ns_per_event: f64,
}

fn sweep(events: usize, reps: usize, f: impl Fn() -> std::time::Duration) -> Sweep {
    let wall = measure_wall(reps, f);
    let ns = wall.as_secs_f64() * 1e9;
    Sweep {
        events,
        melem_per_s: events as f64 / wall.as_secs_f64() / 1e6,
        ns_per_event: ns / events as f64,
    }
}

/// Sharded callback storm: `threads` concurrent tools, each recording
/// `pairs` Begin/End transfer pairs. Returns ns per callback event
/// (criterion's convention: concurrent wall over total events).
fn callback_storm(threads: u64, pairs: u64, stream: bool) -> f64 {
    fn cb(endpoint: Endpoint, id: u64, time: u64) -> DataOpCallback<'static> {
        DataOpCallback {
            endpoint,
            target_id: 1,
            host_op_id: id,
            optype: DataOpType::TransferToDevice,
            src_device: DeviceId::HOST,
            src_addr: 0x1000,
            dest_device: DeviceId::target(0),
            dest_addr: 0xd000,
            bytes: 64,
            codeptr_ra: CodePtr(0x42),
            time: SimTime(time),
            payload: None,
        }
    }
    let wall = measure_wall(3, || {
        let (tool0, handle) = OmpDataPerfTool::new(ToolConfig {
            stream,
            ..Default::default()
        });
        let mut tools = vec![tool0];
        for _ in 1..threads {
            tools.push(handle.fork_tool());
        }
        let caps = CompilerProfile::LlvmClang.capabilities();
        let start = Instant::now();
        std::thread::scope(|s| {
            for mut tool in tools {
                let caps = caps.clone();
                s.spawn(move || {
                    tool.initialize(&caps);
                    for i in 0..pairs {
                        let t = i * 10;
                        tool.on_data_op(&cb(Endpoint::Begin, i, t));
                        tool.on_data_op(&cb(Endpoint::End, i, t + 5));
                    }
                    tool.finalize(pairs * 10);
                });
            }
        });
        let wall = start.elapsed();
        black_box(handle.take_trace().data_op_count());
        wall
    });
    wall.as_secs_f64() * 1e9 / (threads * pairs * 2) as f64
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut guard_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next(),
            "--guard" => guard_path = args.next(),
            "--help" | "-h" => {
                println!(
                    "flags: --quick (skip the 1M sweep), --json PATH, --guard BASELINE (fail on >20% fused regression)"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut table = Table::new(&["Path", "Events", "Melem/s", "ns/event"]);
    let mut fused = Vec::new();
    let mut separate = Vec::new();
    let mut streaming = Vec::new();
    let mut reorder = Vec::new();

    let mut hydrate = Vec::new();
    let mut persist_save = Vec::new();
    let mut persist_load = Vec::new();

    for &events in sizes {
        let (ops, kernels) = build_log(events / 5);
        let total = ops.len() + kernels.len();
        let reps = if events >= 1_000_000 { 3 } else { 7 };

        // The tool's hot sweep: detection over the memoized columnar
        // hydration (`EventView::from_log` borrows it zero-copy), so
        // the fused number is indexing + the five fused state machines
        // over prebuilt columns — hydration is its own row below.
        let cols = odp_trace::ColumnarView::from_events(&ops, &kernels);
        let s = sweep(total, reps, || {
            let start = Instant::now();
            let view = EventView::over(black_box(&cols), 1);
            black_box(Findings::detect_fused(&view));
            start.elapsed()
        });
        table.row(vec![
            "fused".into(),
            format!("{events}"),
            format!("{:.3}", s.melem_per_s),
            format!("{:.1}", s.ns_per_event),
        ]);
        fused.push(s);

        let s = sweep(total, reps, || {
            let start = Instant::now();
            black_box(EventView::over(black_box(&cols), 1));
            start.elapsed()
        });
        table.row(vec![
            "index".into(),
            format!("{events}"),
            format!("{:.3}", s.melem_per_s),
            format!("{:.1}", s.ns_per_event),
        ]);

        let s = sweep(total, reps, || {
            let start = Instant::now();
            black_box(odp_trace::ColumnarView::from_events(
                black_box(&ops),
                black_box(&kernels),
            ));
            start.elapsed()
        });
        table.row(vec![
            "hydrate".into(),
            format!("{events}"),
            format!("{:.3}", s.melem_per_s),
            format!("{:.1}", s.ns_per_event),
        ]);
        hydrate.push(s);

        {
            // Persistence round-trip over the same columns: `to_bytes`
            // is column memcpy + FNV-1a checksums + the JSON footer;
            // the load verifies every checksum and rebuilds the
            // columns. Both are floors the perf guard holds so the
            // corpus pipeline keeps up with the detectors it feeds.
            let artifact = odp_trace::TraceArtifact {
                meta: odp_trace::TraceMeta {
                    program: "hotpath".into(),
                    total_time_ns: events as u64 * 100,
                    ..Default::default()
                },
                shards: vec![odp_trace::ShardColumns {
                    shard: 0,
                    ops: cols.ops.clone(),
                    targets: cols.kernels.clone(),
                }],
                ..Default::default()
            };
            let s = sweep(total, reps, || {
                let start = Instant::now();
                black_box(black_box(&artifact).to_bytes());
                start.elapsed()
            });
            table.row(vec![
                "persist_save".into(),
                format!("{events}"),
                format!("{:.3}", s.melem_per_s),
                format!("{:.1}", s.ns_per_event),
            ]);
            persist_save.push(s);

            let bytes = artifact.to_bytes();
            let s = sweep(total, reps, || {
                let start = Instant::now();
                black_box(odp_trace::load_trace_lenient(black_box(&bytes)));
                start.elapsed()
            });
            table.row(vec![
                "persist_load".into(),
                format!("{events}"),
                format!("{:.3}", s.melem_per_s),
                format!("{:.1}", s.ns_per_event),
            ]);
            persist_load.push(s);
        }

        let s = sweep(total, reps, || {
            let start = Instant::now();
            black_box(Findings::detect_separate(
                black_box(&ops),
                black_box(&kernels),
                1,
            ));
            start.elapsed()
        });
        table.row(vec![
            "separate".into(),
            format!("{events}"),
            format!("{:.3}", s.melem_per_s),
            format!("{:.1}", s.ns_per_event),
        ]);
        separate.push(s);

        {
            // Streaming increment: batched ingest in ring-drain-sized
            // chunks with a trailing watermark, then finalize — the
            // shape `ToolShared::drain_locked` produces.
            use ompdataperf::detect::StreamEvent;
            let mut arrivals: Vec<StreamEvent> = ops.iter().cloned().map(StreamEvent::Op).collect();
            arrivals.extend(kernels.iter().cloned().map(StreamEvent::Kernel));
            arrivals.sort_by_key(|ev| match ev {
                StreamEvent::Op(e) => (e.span.end, e.id.0),
                StreamEvent::Kernel(k) => (k.span.end, k.id.0),
            });
            let s = sweep(total, reps, || {
                let start = Instant::now();
                let mut engine = StreamingEngine::default();
                for chunk in arrivals.chunks(256) {
                    let watermark = match chunk.last() {
                        Some(StreamEvent::Op(e)) => e.span.end,
                        Some(StreamEvent::Kernel(k)) => k.span.end,
                        None => SimTime(0),
                    };
                    engine.ingest_batch(chunk.iter().cloned(), Some(watermark));
                }
                let view = EventView::new(&ops, &kernels, 1);
                black_box(engine.finalize(&view));
                start.elapsed()
            });
            table.row(vec![
                "streaming".into(),
                format!("{events}"),
                format!("{:.3}", s.melem_per_s),
                format!("{:.1}", s.ns_per_event),
            ]);
            streaming.push(s);
        }

        {
            // Standalone reorder-pipeline increment: the shard-run
            // merge that replaced the streaming engine's BinaryHeap,
            // fed four in-order shard runs with a trailing watermark
            // drain every 256 events — detector state machines
            // excluded, so this row isolates the pipeline's per-event
            // push + merge + retire cost (the <50 ns streaming-
            // increment budget).
            use ompdataperf::detect::reorder::RunMergeBuffer;
            let shards = 4u64;
            let s = sweep(total, reps, || {
                let start = Instant::now();
                let mut buf: RunMergeBuffer<u64> = RunMergeBuffer::default();
                let mut drained = 0usize;
                for i in 0..total as u64 {
                    let t = SimTime(i * 10);
                    buf.push((i % shards) as u32, (t, i, 0), i);
                    if i % 256 == 255 {
                        let wm = SimTime((i * 10).saturating_sub(2_560));
                        while let Some(v) = buf.pop_if(|k| k.0 <= wm) {
                            drained += 1;
                            black_box(v);
                        }
                    }
                }
                while let Some(v) = buf.pop_if(|_| true) {
                    drained += 1;
                    black_box(v);
                }
                black_box(drained);
                start.elapsed()
            });
            table.row(vec![
                "reorder".into(),
                format!("{events}"),
                format!("{:.3}", s.melem_per_s),
                format!("{:.1}", s.ns_per_event),
            ]);
            reorder.push(s);
        }
    }

    let threads = 4u64;
    let pairs = if quick { 20_000 } else { 50_000 };
    let callback_ns = callback_storm(threads, pairs, false);
    let callback_stream_ns = callback_storm(threads, pairs, true);
    table.row(vec![
        "callback".into(),
        format!("{}x{}", threads, pairs * 2),
        String::new(),
        format!("{callback_ns:.1}"),
    ]);
    table.row(vec![
        "callback+ring".into(),
        format!("{}x{}", threads, pairs * 2),
        String::new(),
        format!("{callback_stream_ns:.1}"),
    ]);

    println!("hotpath — fused sweep, streaming increment, callback cost");
    println!("{}", table.render());

    if let Some(path) = json_path {
        let row = |s: &Sweep| {
            json!({
                "events": s.events,
                "melem_per_s": (s.melem_per_s * 1000.0).round() / 1000.0,
                "ns_per_event": (s.ns_per_event * 10.0).round() / 10.0,
            })
        };
        // `pr6_baseline` is the pre-refactor code (mutex pending queue,
        // row-based `EventView`) measured the same day, on the same
        // machine, interleaved run-for-run with this binary — the
        // denominators of the ISSUE's ≥2× fused target. Medians of
        // three interleaved rounds.
        let doc = json!({
            "schema": "hotpath-v1",
            "quick": quick,
            "fused": fused.iter().map(row).collect::<Vec<_>>(),
            "hydrate": hydrate.iter().map(row).collect::<Vec<_>>(),
            "persist_save": persist_save.iter().map(row).collect::<Vec<_>>(),
            "persist_load": persist_load.iter().map(row).collect::<Vec<_>>(),
            "separate": separate.iter().map(row).collect::<Vec<_>>(),
            "streaming": streaming.iter().map(row).collect::<Vec<_>>(),
            "reorder": reorder.iter().map(row).collect::<Vec<_>>(),
            "callback": {
                "threads": threads,
                "pairs_per_thread": pairs,
                "ns_per_event": (callback_ns * 10.0).round() / 10.0,
                "ring_ns_per_event": (callback_stream_ns * 10.0).round() / 10.0,
            },
            "pr6_baseline": {
                "fused_melem_per_s": { "10000": 22.2, "100000": 8.85, "1000000": 3.88 },
                "separate_melem_per_s": { "10000": 10.49, "100000": 4.18, "1000000": 2.03 },
                "callback_ns_per_event": 35.4,
            },
        });
        let rendered = serde_json::to_string_pretty(&doc)
            .unwrap_or_else(|e| panic!("serialize bench doc: {e}"));
        std::fs::write(&path, rendered + "\n")
            .unwrap_or_else(|e| panic!("write bench json {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = guard_path {
        const TOLERANCE: f64 = 0.20;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf guard: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("perf guard: baseline {path} is not valid JSON: {e}");
                std::process::exit(2);
            }
        };

        let mut checked = 0usize;
        let mut failed = false;

        // Throughput gates (higher is better): fused Melem/s.
        // Latency gates (lower is better): streaming, reorder, and
        // callback ns/event. Both use the same ±20% band the script's
        // 3-strike retry was designed around.
        let mut gate = |name: &str,
                        events: Option<usize>,
                        measured: f64,
                        base: f64,
                        floor: bool| {
            checked += 1;
            let at = events.map(|e| format!(" @{e} events")).unwrap_or_default();
            let bound = if floor {
                base * (1.0 - TOLERANCE)
            } else {
                base * (1.0 + TOLERANCE)
            };
            let (unit, ok) = if floor {
                ("Melem/s", measured >= bound)
            } else {
                ("ns/event", measured <= bound)
            };
            if ok {
                println!(
                    "perf guard: {name}{at} ok: {measured:.3} {unit} vs bound {bound:.3} (baseline {base:.3})"
                );
            } else {
                eprintln!(
                    "perf guard: {name}{at} REGRESSED: {measured:.3} {unit} vs bound {bound:.3} (baseline {base:.3} ± {:.0}%)",
                    TOLERANCE * 100.0
                );
                failed = true;
            }
        };

        let by_events = |section: &str, events: usize, field: &str| -> Option<f64> {
            baseline[section].as_array()?.iter().find_map(|r| {
                (r["events"].as_u64() == Some(events as u64)).then(|| r[field].as_f64())?
            })
        };
        for s in &fused {
            if let Some(base) = by_events("fused", s.events, "melem_per_s") {
                gate("fused", Some(s.events), s.melem_per_s, base, true);
            }
        }
        for s in &persist_save {
            if let Some(base) = by_events("persist_save", s.events, "melem_per_s") {
                gate("persist_save", Some(s.events), s.melem_per_s, base, true);
            }
        }
        for s in &persist_load {
            if let Some(base) = by_events("persist_load", s.events, "melem_per_s") {
                gate("persist_load", Some(s.events), s.melem_per_s, base, true);
            }
        }
        for s in &streaming {
            if let Some(base) = by_events("streaming", s.events, "ns_per_event") {
                gate("streaming", Some(s.events), s.ns_per_event, base, false);
            }
        }
        for s in &reorder {
            if let Some(base) = by_events("reorder", s.events, "ns_per_event") {
                gate("reorder", Some(s.events), s.ns_per_event, base, false);
            }
        }
        if let Some(base) = baseline["callback"]["ns_per_event"].as_f64() {
            gate("callback", None, callback_ns, base, false);
        }
        if let Some(base) = baseline["callback"]["ring_ns_per_event"].as_f64() {
            gate("callback+ring", None, callback_stream_ns, base, false);
        }

        if checked == 0 {
            eprintln!("perf guard: baseline {path} has no rows matching the measured sizes");
            std::process::exit(2);
        }
        if failed {
            std::process::exit(1);
        }
    }
}
