//! Table 3 — runtime before and after fixing the issues each tool
//! reported on the HeCBench programs (§7.7).
//!
//! Paper (absolute seconds on an A100 node; our substrate is a simulator,
//! so the *ratios* are the reproduction target):
//! resize 11.604→11.065 s, mandelbrot 3.974→3.950 s,
//! accuracy 11.644→11.640 s, lif 10.802 s (N/A), bspline 6.736→5.899 s.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin table3_runtime
//! ```

use odp_arbalest::AnomalyKind;
use odp_bench::{run_with_arbalest, run_without_tool, Table};
use odp_workloads::{ProblemSize, Variant};

/// Paper-reported before/after seconds for the ratio comparison.
fn paper_ratio(name: &str) -> Option<f64> {
    match name {
        "resize-omp" => Some(11.604 / 11.065),
        "mandelbrot-omp" => Some(3.974 / 3.950),
        "accuracy-omp" => Some(11.644 / 11.640),
        "bspline-vgh-omp" => Some(6.736 / 5.899),
        _ => None,
    }
}

fn main() {
    let mut table = Table::new(&[
        "Program Name",
        "Before",
        "OMPDP",
        "AV",
        "speedup",
        "paper speedup",
    ]);
    for w in odp_workloads::hecbench_programs() {
        let name = w.name();
        let (before, _) = run_without_tool(w.as_ref(), ProblemSize::Medium, Variant::Original);

        // The OMPDataPerf column: runtime after applying its suggested
        // fixes, where any were reported.
        let odp_cell = if w.supports(Variant::Fixed) {
            let (after, _) = run_without_tool(w.as_ref(), ProblemSize::Medium, Variant::Fixed);
            format!("{after}")
        } else {
            "N/A".to_string()
        };

        // The Arbalest-Vec column: its reports on these programs are
        // either absent (N/A) or false positives (FP) — nothing to fix.
        let av_report = run_with_arbalest(w.as_ref(), ProblemSize::Medium, Variant::Original);
        let av_cell = if av_report.count(AnomalyKind::Uum) > 0 {
            "FP".to_string()
        } else {
            "N/A".to_string()
        };

        let speedup = if w.supports(Variant::Fixed) {
            let (after, _) = run_without_tool(w.as_ref(), ProblemSize::Medium, Variant::Fixed);
            format!(
                "{:.3}x",
                before.as_nanos() as f64 / after.as_nanos().max(1) as f64
            )
        } else {
            "-".to_string()
        };
        let paper = paper_ratio(name)
            .map(|r| format!("{r:.3}x"))
            .unwrap_or_else(|| "-".to_string());

        table.row(vec![
            name.to_string(),
            format!("{before}"),
            odp_cell,
            av_cell,
            speedup,
            paper,
        ]);
    }
    println!(
        "Table 3: Runtime Measurements Before and After Fixing the Identified Issues\n\
         (simulated seconds; compare the speedup ratios with the paper's)\n"
    );
    println!("{}", table.render());
    println!(
        "FP = Arbalest-Vec's reports were false positives; N/A = no issues \
         reported. The bspline-vgh fix trades ~169 KB of device memory for \
         a ~14% speedup and a 99% reduction in copy calls (§7.7)."
    );
}
