//! Ablation — how the content-hash choice drives tool overhead.
//!
//! Appendix B motivates hash selection by throughput: "users might ...
//! experience significant runtime overhead" with a slow hash. The tool
//! times its own hashing (the Table-4 "effective hash rate" meter), so
//! this ablation reports the *exact* nanoseconds each algorithm spends
//! inside the profiler on the same workload — a noise-free signal — plus
//! the implied overhead against the untooled wall-clock runtime.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin ablate_hash_overhead
//! ```

use odp_bench::{measure_wall, Table};
use odp_hash::HashAlgoId;
use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

const REPS: usize = 3;

fn main() {
    let hashes = [
        HashAlgoId::T1ha0_avx2,
        HashAlgoId::XXH3_64bits,
        HashAlgoId::XXH64,
        HashAlgoId::XXH32,
        HashAlgoId::CityHash32,
    ];
    let programs = ["babelstream", "xsbench", "bspline-vgh-omp"];

    let mut headers: Vec<String> = vec!["program".into(), "baseline".into(), "bytes hashed".into()];
    headers.extend(hashes.iter().map(|h| h.name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);

    for name in programs {
        let w = odp_workloads::by_name(name)
            .unwrap_or_else(|| panic!("unknown ablation workload '{name}'"));
        let baseline = measure_wall(REPS, || {
            let mut rt = Runtime::with_defaults();
            let t = std::time::Instant::now();
            w.run(&mut rt, ProblemSize::Medium, Variant::Original);
            rt.finish();
            t.elapsed()
        });
        let mut row = vec![
            name.to_string(),
            format!("{:.2} ms", baseline.as_secs_f64() * 1e3),
        ];
        let mut bytes_cell = String::new();
        let mut cells = Vec::new();
        for algo in hashes {
            // Median hashing time over REPS runs, from the tool's own
            // meter — deterministic event stream, exact attribution.
            let mut metered: Vec<(u64, u64)> = (0..REPS)
                .map(|_| {
                    let mut rt = Runtime::with_defaults();
                    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
                        hash_algo: algo,
                        ..Default::default()
                    });
                    rt.attach_tool(Box::new(tool));
                    w.run(&mut rt, ProblemSize::Medium, Variant::Original);
                    rt.finish();
                    let m = handle.hash_meter();
                    (m.nanos, m.bytes)
                })
                .collect();
            metered.sort_unstable();
            let (hash_ns, bytes) = metered[REPS / 2];
            bytes_cell = format!("{:.1} MB", bytes as f64 / 1e6);
            let implied = 1.0 + hash_ns as f64 / baseline.as_nanos() as f64;
            cells.push(format!("{:.2} ms ({implied:.3}x)", hash_ns as f64 / 1e6));
        }
        row.push(bytes_cell);
        row.extend(cells);
        table.row(row);
    }

    println!("Ablation: time spent hashing inside the profiler, per algorithm");
    println!("(cells: hashing wall time and the implied overhead vs the baseline)\n");
    println!("{}", table.render());
    println!(
        "expected: hashing time grows as the hash slows (t1ha0_avx2/XXH3 → \
         XXH64 → XXH32 → CityHash32), which is why §B.1 selects the default \
         by measured throughput."
    );
}
