//! Table 6 — compiler and runtime support of OMPT target features, with
//! behavioural verification: for each profile, attach the tool to a
//! runtime configured with that profile and confirm the negotiated
//! feature set matches the table.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin table6_ompt
//! ```

use odp_bench::Table;
use odp_ompt::{CallbackKind, CompilerProfile, ToolRegistration};

fn cell(v: Option<&str>) -> String {
    v.unwrap_or("-").to_string()
}

fn main() {
    let mut table = Table::new(&[
        "Compiler",
        "Runtime",
        "Tool Init",
        "Target CBs*",
        "Tracing",
        "Target EMI",
        "Map EMI†",
        "OMPDataPerf‡",
    ]);

    for profile in CompilerProfile::ALL {
        let row = profile.support_matrix_row();
        let caps = profile.capabilities();
        table.row(vec![
            row.compiler.to_string(),
            row.runtime_name.to_string(),
            cell(row.tool_init),
            cell(row.target_callbacks),
            cell(row.tracing),
            cell(row.target_emi),
            cell(row.target_map_emi),
            if caps.meets_ompdataperf_requirements() {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);

        // Behavioural verification: negotiate the tool's required set
        // against this profile and check the grant matches the table.
        let reg = ToolRegistration::negotiate(
            &[CallbackKind::TargetEmi, CallbackKind::TargetDataOpEmi],
            &caps,
        );
        assert_eq!(
            reg.fully_granted(),
            caps.meets_ompdataperf_requirements(),
            "{profile:?}: negotiation disagrees with the capability matrix"
        );
    }

    println!("Table 6: Compiler and Runtime Support of OMPT Target Features\n");
    println!("{}", table.render());
    println!("*  deprecated in OpenMP 6.0, no longer required for compliance");
    println!("†  optional for OMPT compliance (only NVHPC implements it)");
    println!("‡  runtime satisfies OMPDataPerf's required callbacks (§6)");
    println!("\nall rows behaviourally verified against tool negotiation");
}
