//! Figure 3 — peak tool space overhead per benchmark and problem size.
//!
//! Paper: 72 B per data-transfer event, 24 B per target-launch event;
//! per-application peaks between ~1 KB and a few MB; tealeaf accumulates
//! fastest (~1 MB/s); geometric-mean accumulation ~43 KB/s.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin fig3_space [-- --quick --json]
//! ```

use odp_bench::{geometric_mean, run_with_tool, BenchArgs, Table};
use odp_workloads::Variant;
use ompdataperf::tool::ToolConfig;
use serde_json::json;

fn main() {
    let args = BenchArgs::from_env();
    let mut table = Table::new(&[
        "program",
        "size",
        "data ops",
        "targets",
        "record bytes",
        "peak bytes",
        "rate",
    ]);
    let mut rates = Vec::new();
    let mut records = Vec::new();

    for w in odp_workloads::paper_benchmarks() {
        for &size in args.sizes() {
            let run = run_with_tool(w.as_ref(), size, Variant::Original, ToolConfig::default());
            let space = run.report.space;
            let rate = space.rate_bytes_per_sec(run.sim_time);
            if rate > 0.0 {
                rates.push(rate);
            }
            table.row(vec![
                w.name().to_string(),
                size.name().to_string(),
                space.data_op_records.to_string(),
                space.target_records.to_string(),
                space.record_bytes.to_string(),
                space.peak_alloc_bytes.to_string(),
                format!("{:.1} KB/s", rate / 1e3),
            ]);
            records.push(json!({
                "program": w.name(),
                "size": size.name(),
                "data_op_records": space.data_op_records,
                "target_records": space.target_records,
                "record_bytes": space.record_bytes,
                "peak_alloc_bytes": space.peak_alloc_bytes,
                "rate_bytes_per_sec": rate,
            }));
        }
    }

    println!("Figure 3: peak space overhead when analyzing with OMPDataPerf (lower is better)");
    println!("(72 B per data-op record, 24 B per target record, chunked storage)\n");
    println!("{}", table.render());
    println!(
        "geometric-mean accumulation rate : {:.1} KB/s of program time (paper: ~43 KB/s)",
        geometric_mean(&rates) / 1e3
    );

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "experiment": "fig3_space",
                "points": records,
            }))
            .unwrap_or_else(|e| panic!("serialize experiment json: {e}"))
        );
    }
}
