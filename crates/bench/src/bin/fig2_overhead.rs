//! Figure 2 — runtime overhead of profiling with OMPDataPerf, expressed
//! as slowdown over an untooled run, per benchmark and problem size.
//!
//! Paper: worst case 1.33× (xsbench Large), seven of ten benchmarks
//! under 1.07×, geometric mean 1.05×. "Programs with more runtime
//! dominated by host/device communication activity tended to incur
//! greater overhead."
//!
//! ```sh
//! cargo run --release -p odp-bench --bin fig2_overhead [-- --quick --json]
//! ```

use odp_bench::{geometric_mean, BenchArgs, Table};
use odp_sim::Runtime;
use odp_workloads::Variant;
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use serde_json::json;

const REPS: usize = 5;

fn main() {
    let args = BenchArgs::from_env();
    let mut table = Table::new(&["program", "size", "baseline", "tooled", "slowdown"]);
    let mut slowdowns = Vec::new();
    let mut records = Vec::new();

    for w in odp_workloads::paper_benchmarks() {
        for &size in args.sizes() {
            // Interleave baseline/tooled samples so clock-speed drift,
            // page-cache warming and allocator state cancel out instead
            // of biasing one side.
            let run_baseline = || {
                let mut rt = Runtime::with_defaults();
                let t = std::time::Instant::now();
                w.run(&mut rt, size, Variant::Original);
                rt.finish();
                t.elapsed()
            };
            let run_tooled = || {
                let mut rt = Runtime::with_defaults();
                let (tool, _handle) = OmpDataPerfTool::new(ToolConfig::default());
                rt.attach_tool(Box::new(tool));
                let t = std::time::Instant::now();
                w.run(&mut rt, size, Variant::Original);
                rt.finish();
                t.elapsed()
            };
            let _ = run_baseline(); // warm-up
            let _ = run_tooled();
            let mut base_samples = Vec::with_capacity(REPS);
            let mut tool_samples = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                base_samples.push(run_baseline());
                tool_samples.push(run_tooled());
            }
            base_samples.sort();
            tool_samples.sort();
            let baseline = base_samples[REPS / 2];
            let tooled = tool_samples[REPS / 2];
            let slowdown = tooled.as_secs_f64() / baseline.as_secs_f64().max(1e-9);
            slowdowns.push(slowdown);
            table.row(vec![
                w.name().to_string(),
                size.name().to_string(),
                format!("{:.2} ms", baseline.as_secs_f64() * 1e3),
                format!("{:.2} ms", tooled.as_secs_f64() * 1e3),
                format!("{slowdown:.3}x"),
            ]);
            records.push(json!({
                "program": w.name(),
                "size": size.name(),
                "baseline_ms": baseline.as_secs_f64() * 1e3,
                "tooled_ms": tooled.as_secs_f64() * 1e3,
                "slowdown": slowdown,
            }));
        }
    }

    println!("Figure 2: runtime overhead when analyzing with OMPDataPerf (lower is better)\n");
    println!("{}", table.render());
    let gmean = geometric_mean(&slowdowns);
    let worst = slowdowns.iter().cloned().fold(0.0, f64::max);
    println!("geometric-mean slowdown : {gmean:.3}x   (paper: 1.05x)");
    println!("worst-case slowdown     : {worst:.3}x   (paper: 1.33x, xsbench Large)");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "experiment": "fig2_overhead",
                "geomean": gmean,
                "worst": worst,
                "points": records,
            }))
            .unwrap_or_else(|e| panic!("serialize experiment json: {e}"))
        );
    }
}
