//! Figure 5 — sequential hash throughput vs data size for the top hash
//! of each family, against the host↔device transfer throughput curve.
//!
//! Paper claims to reproduce: (1) hash throughput rises, peaks while the
//! buffer fits in cache, and drops past LLC capacity; (2) the transfer
//! curve has high startup cost and needs much larger volumes to reach
//! peak; (3) even past LLC, hashing stays a healthy multiple of transfer
//! throughput (2.4–3.0× in the paper), so content hashing keeps up.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin fig5_throughput [-- --quick --json]
//! ```

use odp_bench::{BenchArgs, Table};
use odp_hash::throughput::{calibrate_iters, measure};
use odp_hash::HashAlgoId;
use odp_sim::TransferModel;
use serde_json::json;

fn main() {
    let args = BenchArgs::from_env();
    let max_pow = if args.quick { 24 } else { 28 };
    let sizes: Vec<usize> = (1..=max_pow).map(|p| 1usize << p).collect();

    let mut headers: Vec<String> = vec!["Data Size (B)".to_string()];
    headers.extend(HashAlgoId::FIGURE5.iter().map(|a| a.name().to_string()));
    headers.push("Data Transfer".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);

    let transfer = TransferModel::pcie_gen4_h2d();
    let mut records = Vec::new();
    let mut big_sizes = 0usize;
    let mut hash_wins = 0usize;

    for &size in &sizes {
        let data: Vec<u8> = (0..size)
            .map(|i| (i.wrapping_mul(131) % 251) as u8)
            .collect();
        let mut row = vec![format!("2^{}", size.trailing_zeros())];
        let mut best_hash_rate: f64 = 0.0;
        for algo in HashAlgoId::FIGURE5 {
            let iters = calibrate_iters(size, 30_000_000);
            let rate = measure(algo, &data, iters).gb_per_s();
            best_hash_rate = best_hash_rate.max(rate);
            row.push(format!("{rate:.1}"));
            records.push(json!({
                "size": size,
                "hash": algo.name(),
                "gb_per_s": rate,
            }));
        }
        let xfer = transfer.effective_gb_per_s(size as u64);
        row.push(format!("{xfer:.2}"));
        records.push(json!({ "size": size, "hash": "transfer", "gb_per_s": xfer }));
        table.row(row);

        // §B.1: "The top-performing hash functions demonstrated higher
        // effective throughput than host/device data transfers." The
        // paper measured both curves on one physical machine (EPYC 7543
        // vs its own PCIe link); here the hash curve is this host's CPU
        // while the transfer curve models an A100-class link, so the
        // crossover point shifts with the hardware executing the tests.
        if size >= 1 << 16 {
            big_sizes += 1;
            if best_hash_rate >= xfer {
                hash_wins += 1;
            }
        }
    }

    println!("Figure 5: average sequential throughput vs data size (GB/s, higher is better)\n");
    println!("{}", table.render());
    println!(
        "expected shape: hash curves peak in cache and dip past the LLC; the \
         transfer curve is startup-dominated below ~1 MiB and saturates at \
         ~{} GB/s.",
        transfer.bytes_per_ns
    );
    println!(
        "hash-beats-modeled-transfer at {hash_wins}/{big_sizes} sizes ≥ 64 KiB \
         (the paper's EPYC 7543 beat its own link everywhere; a slower test \
         CPU against the same modeled A100 link shifts the crossover — see \
         EXPERIMENTS.md)"
    );
    assert!(big_sizes > 0, "sweep must include post-64KiB sizes");

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "experiment": "fig5_throughput",
                "points": records,
            }))
            .unwrap_or_else(|e| panic!("serialize experiment json: {e}"))
        );
    }
}
