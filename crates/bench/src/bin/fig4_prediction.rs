//! Figure 4 — predicted vs actual speedup for every program and size.
//!
//! Paper: average relative error 14 %, MSE 0.17, excluding the tealeaf-
//! Large outlier (16× actual vs 5.8× predicted, yet 90 % accuracy on the
//! predicted time *savings*).
//!
//! ```sh
//! cargo run --release -p odp-bench --bin fig4_prediction [-- --quick --json]
//! ```

use odp_bench::{run_with_tool, run_without_tool, BenchArgs, Table};
use ompdataperf::tool::ToolConfig;
use serde_json::json;

fn main() {
    let args = BenchArgs::from_env();
    let mut table = Table::new(&[
        "program",
        "size",
        "before",
        "after",
        "predicted",
        "actual",
        "rel err",
    ]);
    let mut errs = Vec::new();
    let mut sq_errs = Vec::new();
    let mut outliers: Vec<String> = Vec::new();
    let mut records = Vec::new();

    for w in odp_workloads::all() {
        let Some((before_v, after_v)) = w.fig4_pair() else {
            continue;
        };
        for &size in args.sizes() {
            let run = run_with_tool(w.as_ref(), size, before_v, ToolConfig::default());
            let t_before = run.sim_time;
            let predicted = run.report.prediction.predicted_speedup;
            let (t_after, _) = run_without_tool(w.as_ref(), size, after_v);
            let actual = t_before.as_nanos() as f64 / t_after.as_nanos().max(1) as f64;
            let rel = (predicted - actual).abs() / actual;

            // §7.6 excludes large-speedup outliers from the error stats:
            // "When calculating large speedups, small errors in predicted
            // execution time can cause disproportionate errors."
            let outlier = actual > 4.0 && rel > 0.5;
            if outlier {
                let saved_pred = run.report.prediction.time_saved.as_nanos() as f64;
                let saved_actual = (t_before - t_after).as_nanos() as f64;
                let savings_acc = 100.0 * (1.0 - (saved_pred - saved_actual).abs() / saved_actual);
                outliers.push(format!(
                    "{} {} excluded as outlier: actual {actual:.1}x vs predicted \
                     {predicted:.1}x; time-savings accuracy {savings_acc:.0}%",
                    w.name(),
                    size.name()
                ));
            } else {
                errs.push(rel);
                sq_errs.push((predicted - actual) * (predicted - actual));
            }

            table.row(vec![
                w.name().to_string(),
                size.name().to_string(),
                format!("{}", t_before),
                format!("{}", t_after),
                format!("{predicted:.2}x"),
                format!("{actual:.2}x"),
                format!("{:.1}%", rel * 100.0),
            ]);
            records.push(json!({
                "program": w.name(),
                "size": size.name(),
                "predicted": predicted,
                "actual": actual,
                "rel_err": rel,
                "outlier": outlier,
            }));
        }
    }

    println!("Figure 4: Predicted Speedup vs Actual Speedup\n");
    println!("{}", table.render());
    let mean_err = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    let mse = sq_errs.iter().sum::<f64>() / sq_errs.len().max(1) as f64;
    println!(
        "average relative error : {:.1}%   (paper: 14%)",
        mean_err * 100.0
    );
    println!("mean squared error     : {mse:.3}    (paper: 0.17)");
    for o in &outliers {
        println!("note: {o}");
    }

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "experiment": "fig4_prediction",
                "mean_rel_err": mean_err,
                "mse": mse,
                "points": records,
            }))
            .unwrap_or_else(|e| panic!("serialize experiment json: {e}"))
        );
    }
}
