//! Table 1 — issues detected by OMPDataPerf per benchmark, including the
//! synthetic-issue and fixed rows. Pass `--inputs` to also print the
//! Table 5 input strings.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin table1_issues
//! ```

use odp_bench::{run_with_tool, Table};
use odp_workloads::{ProblemSize, Variant, Workload};
use ompdataperf::tool::ToolConfig;

fn add_row(table: &mut Table, w: &dyn Workload, variant: Variant) {
    let run = run_with_tool(w, ProblemSize::Medium, variant, ToolConfig::default());
    let c = run.report.counts;
    table.row(vec![
        format!("{}{}", w.name(), variant.suffix()),
        c.dd.to_string(),
        c.rt.to_string(),
        c.ra.to_string(),
        c.ua.to_string(),
        c.ut.to_string(),
    ]);
}

fn main() {
    let show_inputs = std::env::args().any(|a| a == "--inputs");

    let mut table = Table::new(&["Program Name", "DD", "RT", "RA", "UA", "UT"]);
    let benches = odp_workloads::paper_benchmarks();
    for w in &benches {
        add_row(&mut table, w.as_ref(), Variant::Original);
    }
    println!("Table 1: Issues Detected by OMPDataPerf (Medium problem size)\n");
    println!("{}", table.render());

    let mut syn = Table::new(&["Program Name", "DD", "RT", "RA", "UA", "UT"]);
    for w in &benches {
        if w.supports(Variant::Synthetic) {
            add_row(&mut syn, w.as_ref(), Variant::Synthetic);
        }
    }
    println!("Applications With Injected Synthetic Issues:\n");
    println!("{}", syn.render());

    let mut fixed = Table::new(&["Program Name", "DD", "RT", "RA", "UA", "UT"]);
    for w in &benches {
        if w.supports(Variant::Fixed)
            && matches!(w.name(), "bfs" | "minife" | "rsbench" | "xsbench")
        {
            add_row(&mut fixed, w.as_ref(), Variant::Fixed);
        }
    }
    println!("Applications With Key Issues Fixed:\n");
    println!("{}", fixed.render());

    if show_inputs {
        let mut inputs = Table::new(&["Application", "Domain", "Small", "Medium", "Large"]);
        for w in &benches {
            inputs.row(vec![
                w.name().to_string(),
                w.domain().to_string(),
                w.paper_input(ProblemSize::Small).to_string(),
                w.paper_input(ProblemSize::Medium).to_string(),
                w.paper_input(ProblemSize::Large).to_string(),
            ]);
        }
        println!("Table 5: Programs and Inputs Used for Evaluating OMPDataPerf\n");
        println!("{}", inputs.render());
    }
}
