//! Run every experiment binary in sequence (the artifact's §A.5 "run
//! everything" workflow). Forwards `--quick` to each.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin all_experiments [-- --quick]
//! ```

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bins = [
        "table1_issues",
        "table2_comparison",
        "table3_runtime",
        "fig4_prediction",
        "fig2_overhead",
        "fig3_space",
        "table4_hashrate",
        "fig5_throughput",
        "table6_ompt",
    ];
    let exe_dir = match std::env::current_exe() {
        Ok(exe) => match exe.parent() {
            Some(dir) => dir.to_path_buf(),
            None => {
                eprintln!("cannot determine bench binary directory");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("cannot determine current executable: {e}");
            std::process::exit(1);
        }
    };

    for bin in bins {
        println!("\n================ {bin} ================\n");
        let mut cmd = Command::new(exe_dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!("failed to launch {bin}: {e} (build with `cargo build --release -p odp-bench` first)")
        });
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments completed");
}
