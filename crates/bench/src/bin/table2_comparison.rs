//! Table 2 — issues detected by OMPDataPerf and Arbalest-Vec on the five
//! HeCBench programs (§7.7).
//!
//! ```sh
//! cargo run --release -p odp-bench --bin table2_comparison
//! ```

use odp_bench::{run_with_arbalest, run_with_tool, Table};
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::ToolConfig;

fn main() {
    let mut table = Table::new(&["Program Name", "OMPDataPerf", "Arbalest-Vec"]);
    for w in odp_workloads::hecbench_programs() {
        let run = run_with_tool(
            w.as_ref(),
            ProblemSize::Medium,
            Variant::Original,
            ToolConfig::default(),
        );
        let c = run.report.counts;
        let mut cats = Vec::new();
        if c.dd > 0 {
            cats.push("DD");
        }
        if c.rt > 0 {
            cats.push("RT");
        }
        if c.ra > 0 {
            cats.push("RA");
        }
        if c.ua > 0 {
            cats.push("UA");
        }
        if c.ut > 0 {
            cats.push("UT");
        }
        let odp = if cats.is_empty() {
            "N/A".to_string()
        } else {
            cats.join(", ")
        };
        let av = run_with_arbalest(w.as_ref(), ProblemSize::Medium, Variant::Original).summary();
        table.row(vec![w.name().to_string(), odp, av]);
    }
    println!("Table 2: Issues Detected by OMPDataPerf and Arbalest-Vec\n");
    println!("{}", table.render());
    println!(
        "Arbalest-Vec's UUM reports point at write-only kernel outputs \
         (masked vector stores) — false positives per the paper's manual \
         inspection (§7.7)."
    );
}
