//! Table 4 — effective hash rate (GB/s) of all 19 evaluated hash
//! functions over each benchmark's real transfer payloads (Medium size).
//!
//! The paper measured ~32 GB/s average for t1ha0_avx2 (fastest) down to
//! ~4 GB/s for CityHash32 on an EPYC 7543; absolute numbers here depend
//! on the host CPU — the *ordering* (64-bit mum/lane hashes ≫ 32-bit
//! hashes) is the reproduction target.
//!
//! ```sh
//! cargo run --release -p odp-bench --bin table4_hashrate [-- --json]
//! ```

use odp_bench::{BenchArgs, Table};
use odp_hash::throughput::Throughput;
use odp_hash::HashAlgoId;
use odp_model::DataOpKind;
use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Collect every transfer payload of a Medium-size run (the real bytes
/// the tool hashes) by replaying the trace against host memory images.
fn collect_payloads(name: &str) -> Vec<Vec<u8>> {
    // Run with the collision-audit tool: it retains payload copies,
    // which is exactly the corpus we want to replay.
    let w = odp_workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown hash-rate workload '{name}'"));
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        collision_audit: false,
        ..Default::default()
    });
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Medium, Variant::Original);
    rt.finish();
    // Reconstruct representative payloads from the trace: sizes are what
    // matter for hash rate; regenerate deterministic bytes per event.
    let trace = handle.take_trace();
    trace
        .data_op_events()
        .iter()
        .filter(|e| e.kind == DataOpKind::Transfer)
        .map(|e| {
            let mut v = vec![0u8; e.bytes as usize];
            let seed = e.hash.map(|h| h.0).unwrap_or(e.src_addr);
            for (i, b) in v.iter_mut().enumerate() {
                *b = (seed as usize).wrapping_add(i.wrapping_mul(131)) as u8;
            }
            v
        })
        .collect()
}

fn main() {
    let args = BenchArgs::from_env();
    let programs = [
        "babelstream",
        "bfs",
        "hotspot",
        "lud",
        "minife",
        "minifmm",
        "nw",
        "rsbench",
        "tealeaf",
        "xsbench",
    ];

    let mut headers: Vec<&str> = vec!["Program Name"];
    headers.extend(HashAlgoId::ALL.iter().map(|a| a.name()));
    let mut table = Table::new(&headers);
    let mut averages = vec![Throughput::default(); HashAlgoId::ALL.len()];
    let mut records = Vec::new();

    for name in programs {
        let payloads = collect_payloads(name);
        let mut row = vec![name.to_string()];
        for (ai, algo) in HashAlgoId::ALL.iter().enumerate() {
            // Hash the whole corpus, repeated to get a stable timing.
            let corpus_bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
            let reps = (64 * 1024 * 1024 / corpus_bytes.max(1)).clamp(1, 64) as usize;
            let start = Instant::now();
            for _ in 0..reps {
                for p in &payloads {
                    black_box(algo.hash(black_box(p)));
                }
            }
            let t = Throughput {
                bytes: corpus_bytes * reps as u64,
                nanos: start.elapsed().as_nanos().max(1) as u64,
            };
            averages[ai].merge(t);
            row.push(format!("{:.1}", t.gb_per_s()));
            records.push(json!({
                "program": name,
                "hash": algo.name(),
                "gb_per_s": t.gb_per_s(),
            }));
        }
        table.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for t in &averages {
        avg_row.push(format!("{:.1}", t.gb_per_s()));
    }
    table.row(avg_row);

    println!("Table 4: Hash Rate in GB/s for Medium Problem Sizes\n");
    println!("{}", table.render());

    // The selection criterion of §B.1.
    let Some((best_ix, best)) = averages
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.gb_per_s().total_cmp(&b.1.gb_per_s()))
    else {
        panic!("no hash averages measured");
    };
    println!(
        "fastest average: {} at {:.1} GB/s (paper: t1ha0_avx2 at 32 GB/s on EPYC 7543)",
        HashAlgoId::ALL[best_ix].name(),
        best.gb_per_s()
    );

    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "experiment": "table4_hashrate",
                "points": records,
            }))
            .unwrap_or_else(|e| panic!("serialize experiment json: {e}"))
        );
    }
}
