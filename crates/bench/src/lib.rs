//! # odp-bench — the experiment-regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md
//! §4 for the experiment index). This library holds the shared pieces:
//! workload execution with and without the tool, wall-clock measurement,
//! aggregate statistics, and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod render;
pub mod runner;

pub use render::Table;
pub use runner::{
    geometric_mean, measure_wall, run_with_arbalest, run_with_tool, run_without_tool, ToolRun,
};

/// Parse the common bench-binary flags (`--quick`, `--json`).
pub struct BenchArgs {
    /// Restrict sweeps to small/medium sizes for CI-speed runs.
    pub quick: bool,
    /// Also emit machine-readable JSON to stdout at the end.
    pub json: bool,
}

impl BenchArgs {
    /// Parse from `std::env::args`.
    pub fn from_env() -> BenchArgs {
        let mut quick = false;
        let mut json = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = true,
                "--help" | "-h" => {
                    println!("flags: --quick (skip Large sizes), --json");
                    std::process::exit(0);
                }
                _ => {}
            }
        }
        BenchArgs { quick, json }
    }

    /// The problem sizes this run sweeps.
    pub fn sizes(&self) -> &'static [odp_workloads::ProblemSize] {
        use odp_workloads::ProblemSize::*;
        if self.quick {
            &[Small, Medium]
        } else {
            &[Small, Medium, Large]
        }
    }
}
