//! Workload execution helpers shared by the experiment binaries.

use odp_arbalest::{ArbalestReport, ArbalestVecTool};
use odp_model::SimDuration;
use odp_sim::{Runtime, RuntimeConfig};
use odp_workloads::{ProblemSize, Variant, Workload};
use ompdataperf::attrib::DebugInfo;
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig, ToolHandle};
use ompdataperf::Report;
use std::time::{Duration, Instant};

/// Everything a tool-on run produces.
pub struct ToolRun {
    /// The analysis report.
    pub report: Report,
    /// The tool handle (hash meter, collision counts, console lines).
    pub handle: ToolHandle,
    /// Simulated program time.
    pub sim_time: SimDuration,
    /// Wall-clock time of the monitored run (tool attached).
    pub wall: Duration,
    /// Debug info the workload registered.
    pub debug_info: DebugInfo,
}

/// Run `w` with OMPDataPerf attached and analyze the trace.
pub fn run_with_tool(
    w: &dyn Workload,
    size: ProblemSize,
    variant: Variant,
    cfg: ToolConfig,
) -> ToolRun {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let (tool, handle) = OmpDataPerfTool::new(cfg);
    rt.attach_tool(Box::new(tool));
    let start = Instant::now();
    let debug_info = w.run(&mut rt, size, variant);
    let stats = rt.finish();
    let wall = start.elapsed();
    let trace = handle.take_trace();
    let report = ompdataperf::analysis::analyze_named(
        &trace,
        Some(&debug_info),
        w.name(),
        handle.console_lines(),
    );
    ToolRun {
        report,
        handle,
        sim_time: stats.total_time,
        wall,
        debug_info,
    }
}

/// Run `w` without any tool; returns (simulated time, wall-clock).
pub fn run_without_tool(
    w: &dyn Workload,
    size: ProblemSize,
    variant: Variant,
) -> (SimDuration, Duration) {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let start = Instant::now();
    w.run(&mut rt, size, variant);
    let stats = rt.finish();
    (stats.total_time, start.elapsed())
}

/// Run `w` under the Arbalest-Vec baseline.
pub fn run_with_arbalest(w: &dyn Workload, size: ProblemSize, variant: Variant) -> ArbalestReport {
    let mut rt = Runtime::new(RuntimeConfig::default());
    let (tool, handle) = ArbalestVecTool::new();
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, size, variant);
    rt.finish();
    handle.report()
}

/// Median wall-clock of `reps` runs of `f` (first run discarded as
/// warm-up when `reps > 1`).
pub fn measure_wall(reps: usize, mut f: impl FnMut() -> Duration) -> Duration {
    assert!(reps >= 1);
    if reps > 1 {
        let _ = f(); // warm-up
    }
    let mut samples: Vec<Duration> = (0..reps).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Geometric mean of a slice of ratios.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn measure_wall_returns_median() {
        let mut calls = 0;
        let d = measure_wall(3, || {
            calls += 1;
            Duration::from_millis(calls)
        });
        // warm-up + 3 samples → samples are 2,3,4 ms → median 3.
        assert_eq!(d, Duration::from_millis(3));
    }

    #[test]
    fn tool_run_smoke() {
        let w = odp_workloads::by_name("hotspot").unwrap();
        let run = run_with_tool(
            w.as_ref(),
            ProblemSize::Small,
            Variant::Original,
            ToolConfig::default(),
        );
        assert_eq!(run.report.counts.dd, 2);
        assert!(run.sim_time.as_nanos() > 0);
        assert!(!run.debug_info.is_empty());
        let (sim, _wall) = run_without_tool(w.as_ref(), ProblemSize::Small, Variant::Original);
        assert_eq!(sim, run.sim_time, "tool must not change virtual time");
    }
}
