//! Static-vs-dynamic cross-check: score the analyzer's predictions
//! against the fused dynamic engine's findings on the lowered program.
//!
//! Both sides key findings by `(codeptr, device, kind)`, so the join is
//! exact. The headline metric is *certain precision*: a
//! [`Certainty::Certain`] row is refuted if the dynamic engine finds
//! nothing at its key, or fewer instances than the analyzer proved must
//! occur — the soundness contract the property suite and the golden
//! fixtures pin at 100%.
//!
//! The JSON rendering carries counts only (no ratios), so fixtures are
//! byte-stable; percentages appear only in the text rendering.

use crate::analysis::{analyze, Certainty, StaticReport};
use crate::ir::MappingProgram;
use crate::lower::{lower_and_run, LoweredRun};
use ompdataperf::fleet::FindingKind;
use serde::Serialize;
use std::collections::BTreeMap;

/// How one `(codeptr, device, kind)` key fared in the join.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RowStatus {
    /// `Certain` prediction with a dynamic finding covering its certain
    /// instance count.
    ConfirmedCertain,
    /// `Certain` prediction the dynamic engine refutes (absent key or
    /// fewer instances than proven) — a soundness bug.
    RefutedCertain,
    /// `MayDependOnData` prediction matched by a dynamic finding.
    MatchedMay,
    /// `MayDependOnData` prediction with no dynamic counterpart on this
    /// input (not an error: the input may not exercise the pattern).
    UnmatchedMay,
    /// Dynamic finding the analyzer did not predict (a recall miss).
    DynamicOnly,
}

/// One joined row of the cross-check.
#[derive(Clone, Debug, Serialize)]
pub struct CrossRow {
    /// Source site.
    pub codeptr: u64,
    /// Raw device number (-1 = host).
    pub device: i32,
    /// Inefficiency class.
    pub kind: FindingKind,
    /// Join verdict.
    pub status: RowStatus,
    /// Statically predicted instances (0 for `DynamicOnly`).
    pub static_count: u64,
    /// Instances proven to occur in every execution.
    pub certain_count: u64,
    /// Dynamically observed instances (0 for unmatched predictions).
    pub dynamic_count: u64,
}

/// Aggregate tallies of a cross-check.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct CrossSummary {
    /// `Certain` rows predicted.
    pub certain_rows: u64,
    /// `Certain` rows the dynamic engine confirms.
    pub certain_confirmed: u64,
    /// `Certain` rows the dynamic engine refutes.
    pub certain_refuted: u64,
    /// `MayDependOnData` rows predicted.
    pub may_rows: u64,
    /// `MayDependOnData` rows with a dynamic counterpart.
    pub may_matched: u64,
    /// Dynamic findings with no static prediction.
    pub dynamic_only: u64,
}

impl CrossSummary {
    /// Is every `Certain` prediction dynamically confirmed?
    pub fn certain_precision_is_total(&self) -> bool {
        self.certain_refuted == 0
    }
}

/// A full cross-check: the static report, the dynamic run, the join.
#[derive(Clone, Debug, Serialize)]
pub struct CrossCheck {
    /// Program name.
    pub program: String,
    /// Joined rows, ascending by `(codeptr, device, kind)`.
    pub rows: Vec<CrossRow>,
    /// Aggregate tallies.
    pub summary: CrossSummary,
}

/// Run the analyzer and the lowered dynamic engine on `p` and join the
/// results. Also returns both sides for callers that render them.
pub fn crosscheck(p: &MappingProgram) -> (CrossCheck, StaticReport, LoweredRun) {
    let report = analyze(p);
    let run = lower_and_run(p);
    let check = join(p, &report, &run);
    (check, report, run)
}

/// Join a static report against a dynamic run.
pub fn join(p: &MappingProgram, report: &StaticReport, run: &LoweredRun) -> CrossCheck {
    // (codeptr, device, kind) → (static count, certain count, dynamic count, certain?).
    type JoinAgg = BTreeMap<(u64, i32, FindingKind), (u64, u64, u64, bool)>;
    let mut keys: JoinAgg = BTreeMap::new();
    for r in &report.rows {
        let e = keys
            .entry((r.codeptr, r.device, r.kind))
            .or_insert((0, 0, 0, false));
        e.0 = r.count;
        e.1 = r.certain_count;
        e.3 = r.certainty == Certainty::Certain;
    }
    for s in &run.sites {
        let e = keys
            .entry((s.codeptr, s.device, s.kind))
            .or_insert((0, 0, 0, false));
        e.2 = s.count;
    }
    let mut summary = CrossSummary::default();
    let rows = keys
        .into_iter()
        .map(|((codeptr, device, kind), (sc, cc, dc, certain))| {
            let status = if sc == 0 {
                summary.dynamic_only += 1;
                RowStatus::DynamicOnly
            } else if certain {
                summary.certain_rows += 1;
                if dc >= cc {
                    summary.certain_confirmed += 1;
                    RowStatus::ConfirmedCertain
                } else {
                    summary.certain_refuted += 1;
                    RowStatus::RefutedCertain
                }
            } else {
                summary.may_rows += 1;
                if dc > 0 {
                    summary.may_matched += 1;
                    RowStatus::MatchedMay
                } else {
                    RowStatus::UnmatchedMay
                }
            };
            CrossRow {
                codeptr,
                device,
                kind,
                status,
                static_count: sc,
                certain_count: cc,
                dynamic_count: dc,
            }
        })
        .collect();
    CrossCheck {
        program: p.name.clone(),
        rows,
        summary,
    }
}

impl CrossCheck {
    /// Deterministic pretty-JSON rendering (counts only, byte-stable).
    pub fn to_json(&self) -> String {
        // Plain serializable counts; cannot fail.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("crosscheck serialization cannot fail")
    }

    /// Human-readable rendering with site labels and percentages.
    pub fn render(&self, p: &MappingProgram) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cross-check: {}", self.program);
        for r in &self.rows {
            let status = match r.status {
                RowStatus::ConfirmedCertain => "certain+confirmed",
                RowStatus::RefutedCertain => "CERTAIN-REFUTED ",
                RowStatus::MatchedMay => "may+matched     ",
                RowStatus::UnmatchedMay => "may (unmatched) ",
                RowStatus::DynamicOnly => "dynamic-only    ",
            };
            let _ = writeln!(
                out,
                "  [{status}] {} dev{:>2} @ {:<28} static {} (certain {}) dynamic {}",
                r.kind.code(),
                r.device,
                p.site_label(r.codeptr),
                r.static_count,
                r.certain_count,
                r.dynamic_count,
            );
        }
        let s = &self.summary;
        let pct = |num: u64, den: u64| {
            if den == 0 {
                100.0
            } else {
                100.0 * num as f64 / den as f64
            }
        };
        let _ = writeln!(
            out,
            "  certain precision: {}/{} confirmed ({:.1}%)",
            s.certain_confirmed,
            s.certain_rows,
            pct(s.certain_confirmed, s.certain_rows),
        );
        let _ = writeln!(
            out,
            "  may coverage: {}/{} matched dynamically ({:.1}%)",
            s.may_matched,
            s.may_rows,
            pct(s.may_matched, s.may_rows),
        );
        let _ = writeln!(
            out,
            "  dynamic-only rows (recall misses): {}",
            s.dynamic_only
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{by_name, Size, NAMES};

    #[test]
    fn babelstream_certain_precision_is_total() {
        let p = by_name("babelstream", Size::S).expect("known");
        let (check, report, _run) = crosscheck(&p);
        assert!(check.summary.certain_rows > 0, "{report:?}");
        assert!(
            check.summary.certain_precision_is_total(),
            "{}",
            check.render(&p)
        );
        // BabelStream's skeleton is fully static: no May rows at all,
        // and nothing the analyzer missed.
        assert_eq!(check.summary.may_rows, 0, "{}", check.render(&p));
        assert_eq!(check.summary.dynamic_only, 0, "{}", check.render(&p));
    }

    #[test]
    fn every_program_has_total_certain_precision_at_small() {
        for name in NAMES {
            let p = by_name(name, Size::S).expect("known");
            let (check, _, _) = crosscheck(&p);
            assert!(
                check.summary.certain_precision_is_total(),
                "{name}:\n{}",
                check.render(&p)
            );
        }
    }

    #[test]
    fn bfs_has_certain_cross_var_duplicate_and_may_rows() {
        let p = by_name("bfs", Size::S).expect("known");
        let (check, report, _) = crosscheck(&p);
        let init_dd = report
            .rows
            .iter()
            .find(|r| {
                r.codeptr == crate::programs::bfs_sites::INIT
                    && r.kind == FindingKind::DuplicateTransfer
            })
            .expect("cross-var DD at init");
        assert_eq!(init_dd.certainty, Certainty::Certain);
        assert!(check.summary.may_rows > 0);
    }

    #[test]
    fn xsbench_round_trip_is_certain_and_confirmed() {
        let p = by_name("xsbench", Size::S).expect("known");
        let (check, report, run) = crosscheck(&p);
        let rt = report
            .rows
            .iter()
            .find(|r| r.kind == FindingKind::RoundTrip)
            .expect("RT row");
        assert_eq!(rt.certainty, Certainty::Certain);
        assert_eq!(rt.codeptr, crate::programs::xsbench_sites::LOOKUP);
        assert_eq!(run.counts.rt as u64, rt.count);
        assert!(
            check.summary.certain_precision_is_total(),
            "{}",
            check.render(&p)
        );
    }
}
