//! Declarative IR descriptions of the three reference workloads.
//!
//! Each constructor expresses a workload's *data-mapping skeleton* — the
//! map clauses, region structure and loop shape of its canonical
//! OpenMP-offload source — so one description drives the static
//! analyzer, the dynamic lowering, and the patch-plan emitter:
//!
//! - [`babelstream`]: the run loop re-opens a `target data` region with
//!   `map(to:)` on all three streams every iteration, and the dot
//!   kernel carries a per-iteration `map(from: sum)` — the fully
//!   `Certain`, fully remediable case (§7.5's re-mapping pattern; the
//!   fix is SNIPPETS.md's Mem5 split: hoist the region, split the sum
//!   map into `enter data` + deferred `exit data`).
//! - [`bfs`]: rodinia-style level loop with a data-dependent trip count
//!   and everything implicitly `tofrom`-mapped per kernel — the
//!   canonical `MayDependOnData` flood, plus one `Certain` cross-variable
//!   duplicate (mask and visited share a byte-identical initial image)
//!   that no directive rewrite can remove.
//! - [`xsbench`]: a lookup kernel with `map(tofrom:)` on read-only
//!   tables — the round-trip pattern (§7.5), fixed by `tofrom` → `to`.

use crate::ir::{
    Init, KernelSpec, KernelWrite, MapClause, MappingProgram, Step, TripCount, VarDecl, VarRef,
    WriteContent,
};
use std::collections::BTreeMap;

/// Problem-size presets for the declarative workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Size {
    /// Small: unit-test scale.
    S,
    /// Medium: CI smoke scale.
    M,
    /// Large: benchmark scale.
    L,
}

impl Size {
    /// Parse `s`/`m`/`l` (case-insensitive).
    pub fn parse(s: &str) -> Option<Size> {
        match s.to_ascii_lowercase().as_str() {
            "s" | "small" => Some(Size::S),
            "m" | "medium" => Some(Size::M),
            "l" | "large" => Some(Size::L),
            _ => None,
        }
    }
}

/// Names accepted by [`by_name`].
pub const NAMES: [&str; 3] = ["babelstream", "bfs", "xsbench"];

/// Construct a declarative workload by name at a preset size.
pub fn by_name(name: &str, size: Size) -> Option<MappingProgram> {
    match name {
        "babelstream" => Some(match size {
            Size::S => babelstream(4, 32),
            Size::M => babelstream(10, 1024),
            Size::L => babelstream(50, 16384),
        }),
        "bfs" => Some(match size {
            Size::S => bfs(16, 3),
            Size::M => bfs(64, 5),
            Size::L => bfs(256, 8),
        }),
        "xsbench" => Some(match size {
            Size::S => xsbench(64),
            Size::M => xsbench(2048),
            Size::L => xsbench(32768),
        }),
        _ => None,
    }
}

/// Directive sites of [`babelstream`].
pub mod babelstream_sites {
    /// The per-iteration `target data` region.
    pub const REGION: u64 = 0x100;
    /// The copy kernel.
    pub const COPY: u64 = 0x110;
    /// The mul kernel.
    pub const MUL: u64 = 0x120;
    /// The add kernel.
    pub const ADD: u64 = 0x130;
    /// The triad kernel.
    pub const TRIAD: u64 = 0x140;
    /// The dot kernel (carries `map(from: sum)`).
    pub const DOT: u64 = 0x150;
}

/// BabelStream's mapping skeleton: `runs` iterations, each re-opening a
/// `target data map(to: a, b, c)` region around the five kernels, with
/// the dot kernel's reduction result mapped `from` per iteration.
pub fn babelstream(runs: u32, elems: usize) -> MappingProgram {
    use babelstream_sites as site;
    let a = VarRef(0);
    let b = VarRef(1);
    let c = VarRef(2);
    let sum = VarRef(3);
    let kernel = |name: &str, reads: &[VarRef], writes: &[VarRef]| KernelSpec {
        name: name.into(),
        reads: reads.to_vec(),
        writes: writes.iter().map(|&v| KernelWrite::unique(v)).collect(),
    };
    MappingProgram {
        name: format!("babelstream(runs={runs}, elems={elems})"),
        num_devices: 1,
        vars: vec![
            VarDecl {
                name: "a".into(),
                bytes: elems * 8,
                init: Init::f64(0.1),
            },
            VarDecl {
                name: "b".into(),
                bytes: elems * 8,
                init: Init::f64(0.2),
            },
            VarDecl {
                name: "c".into(),
                bytes: elems * 8,
                init: Init::f64(0.0),
            },
            VarDecl {
                name: "sum".into(),
                bytes: 8,
                init: Init::f64(0.0),
            },
        ],
        steps: vec![Step::Loop {
            trip: TripCount::Static(runs),
            body: vec![Step::DataRegion {
                site: site::REGION,
                device: 0,
                maps: vec![MapClause::to(a), MapClause::to(b), MapClause::to(c)],
                body: vec![
                    Step::Target {
                        site: site::COPY,
                        device: 0,
                        maps: vec![],
                        kernel: kernel("copy", &[a], &[c]),
                    },
                    Step::Target {
                        site: site::MUL,
                        device: 0,
                        maps: vec![],
                        kernel: kernel("mul", &[c], &[b]),
                    },
                    Step::Target {
                        site: site::ADD,
                        device: 0,
                        maps: vec![],
                        kernel: kernel("add", &[a, b], &[c]),
                    },
                    Step::Target {
                        site: site::TRIAD,
                        device: 0,
                        maps: vec![],
                        kernel: kernel("triad", &[b, c], &[a]),
                    },
                    Step::Target {
                        site: site::DOT,
                        device: 0,
                        maps: vec![MapClause::from(sum)],
                        kernel: kernel("dot", &[a, b], &[sum]),
                    },
                ],
            }],
        }],
        site_labels: BTreeMap::from([
            (site::REGION, "babelstream:run_loop_region".into()),
            (site::COPY, "babelstream:copy".into()),
            (site::MUL, "babelstream:mul".into()),
            (site::ADD, "babelstream:add".into()),
            (site::TRIAD, "babelstream:triad".into()),
            (site::DOT, "babelstream:dot".into()),
        ]),
    }
}

/// Directive sites of [`bfs`].
pub mod bfs_sites {
    /// The initialization kernel (first delivery of mask/visited/cost).
    pub const INIT: u64 = 0x200;
    /// Level kernel 1 (expand frontier).
    pub const K1: u64 = 0x210;
    /// Level kernel 2 (commit frontier, raise `over`).
    pub const K2: u64 = 0x220;
}

/// Rodinia-style BFS: an initialization kernel, then a data-dependent
/// level loop whose two kernels rely entirely on implicit `tofrom`
/// mapping. `levels` is the trip count one concrete input produces.
pub fn bfs(nodes: u32, levels: u32) -> MappingProgram {
    use bfs_sites as site;
    let graph = VarRef(0);
    let mask = VarRef(1);
    let updating_mask = VarRef(2);
    let visited = VarRef(3);
    let cost = VarRef(4);
    let over = VarRef(5);
    let n = nodes as usize;
    MappingProgram {
        name: format!("bfs(nodes={nodes}, levels={levels})"),
        num_devices: 1,
        vars: vec![
            VarDecl {
                name: "graph".into(),
                bytes: n * 4,
                init: Init::U32Chain { limit: nodes },
            },
            VarDecl {
                name: "mask".into(),
                bytes: n,
                init: Init::MarkFirstByte(1),
            },
            VarDecl {
                name: "updating_mask".into(),
                bytes: n,
                init: Init::Byte(0),
            },
            VarDecl {
                name: "visited".into(),
                bytes: n,
                init: Init::MarkFirstByte(1),
            },
            VarDecl {
                name: "cost".into(),
                bytes: n * 4,
                init: Init::U32FirstRest {
                    first: 0,
                    rest: u32::MAX,
                },
            },
            VarDecl {
                name: "over".into(),
                bytes: 4,
                init: Init::Byte(0),
            },
        ],
        steps: vec![
            // Deliver the initial masks and costs for a device-side
            // sanity pass. mask and visited have byte-identical images:
            // the unremediable cross-variable duplicate.
            Step::Target {
                site: site::INIT,
                device: 0,
                maps: vec![
                    MapClause::to(mask),
                    MapClause::to(visited),
                    MapClause::to(cost),
                ],
                kernel: KernelSpec {
                    name: "bfs_init_check".into(),
                    reads: vec![mask, visited, cost],
                    writes: vec![],
                },
            },
            Step::Loop {
                trip: TripCount::DataDependent { executed: levels },
                body: vec![
                    Step::HostWrite {
                        var: over,
                        content: WriteContent::Byte(0),
                    },
                    Step::Target {
                        site: site::K1,
                        device: 0,
                        maps: vec![],
                        kernel: KernelSpec {
                            name: "bfs_kernel_1".into(),
                            reads: vec![graph, mask, cost],
                            writes: vec![
                                KernelWrite::unique(updating_mask),
                                KernelWrite::unique(cost),
                                KernelWrite::byte(mask, 0),
                            ],
                        },
                    },
                    Step::Target {
                        site: site::K2,
                        device: 0,
                        maps: vec![],
                        kernel: KernelSpec {
                            name: "bfs_kernel_2".into(),
                            reads: vec![updating_mask],
                            writes: vec![
                                KernelWrite::unique(mask),
                                KernelWrite::unique(visited),
                                KernelWrite {
                                    var: over,
                                    content: WriteContent::U32(1),
                                    fires: crate::ir::Fires::OnAllButLastIteration,
                                },
                                KernelWrite::byte(updating_mask, 0),
                            ],
                        },
                    },
                ],
            },
        ],
        site_labels: BTreeMap::from([
            (site::INIT, "bfs:init_check".into()),
            (site::K1, "bfs:kernel_1".into()),
            (site::K2, "bfs:kernel_2".into()),
        ]),
    }
}

/// Directive sites of [`xsbench`].
pub mod xsbench_sites {
    /// The cross-section lookup kernel.
    pub const LOOKUP: u64 = 0x300;
}

/// XSBench's lookup skeleton: one kernel with `map(tofrom:)` on its
/// read-only energy and nuclide grids — each makes an unmodified round
/// trip (§7.5's rsbench/xsbench pattern).
pub fn xsbench(gridpoints: usize) -> MappingProgram {
    use xsbench_sites as site;
    let energy_grid = VarRef(0);
    let nuclide_grid = VarRef(1);
    let results = VarRef(2);
    MappingProgram {
        name: format!("xsbench(gridpoints={gridpoints})"),
        num_devices: 1,
        vars: vec![
            VarDecl {
                name: "energy_grid".into(),
                bytes: gridpoints * 4,
                init: Init::U32Affine { base: 7, step: 3 },
            },
            VarDecl {
                name: "nuclide_grid".into(),
                bytes: gridpoints * 8,
                init: Init::f64(0.5),
            },
            VarDecl {
                name: "results".into(),
                bytes: gridpoints * 8,
                init: Init::f64(0.0),
            },
        ],
        steps: vec![Step::Target {
            site: site::LOOKUP,
            device: 0,
            maps: vec![
                MapClause::tofrom(energy_grid),
                MapClause::tofrom(nuclide_grid),
                MapClause::tofrom(results),
            ],
            kernel: KernelSpec {
                name: "xs_lookup".into(),
                reads: vec![energy_grid, nuclide_grid],
                writes: vec![KernelWrite::unique(results)],
            },
        }],
        site_labels: BTreeMap::from([(site::LOOKUP, "xsbench:lookup_kernel".into())]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_validate_at_all_sizes() {
        for name in NAMES {
            for size in [Size::S, Size::M, Size::L] {
                let p = by_name(name, size).expect("known name");
                p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("minifmm", Size::S).is_none());
    }

    #[test]
    fn size_parses_aliases() {
        assert_eq!(Size::parse("S"), Some(Size::S));
        assert_eq!(Size::parse("medium"), Some(Size::M));
        assert_eq!(Size::parse("x"), None);
    }
}
