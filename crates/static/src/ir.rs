//! The declarative mapping IR: one description of a program's offload
//! structure that drives *both* the static analyzer and the dynamic
//! simulated runtime.
//!
//! A [`MappingProgram`] is the data-mapping skeleton of an OpenMP
//! offload application: variables with deterministic initial images,
//! and a tree of steps — `target data` regions, `enter`/`exit data`,
//! `target update`, `target` kernels, host writes, and loops. Loops
//! carry their iteration structure explicitly: a compile-time-known
//! [`TripCount::Static`] count (babelstream's run loop) or a
//! [`TripCount::DataDependent`] count (bfs's frontier loop), which is
//! exactly the distinction the analyzer's `Certain` vs
//! `MayDependOnData` tagging rests on.
//!
//! Every directive carries a `site` — the code pointer its events are
//! attributed to, the join key of the static-vs-dynamic cross-check.

use odp_model::MapType;
use std::collections::BTreeMap;

/// Index of a variable in [`MappingProgram::vars`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct VarRef(pub usize);

/// Deterministic initial image of a variable's host buffer.
///
/// Two initializers produce byte-identical buffers iff their normalized
/// forms and lengths are equal — the property the analyzer's content
/// tokens rely on, so every variant here must describe its bytes
/// exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Init {
    /// Every byte is `v`.
    Byte(u8),
    /// Repeating little-endian f64 (stored as bits so `Init` is `Eq`).
    F64Bits(u64),
    /// Byte 0 is `mark`, the rest are zero (bfs's mask/visited images).
    MarkFirstByte(u8),
    /// Little-endian u32s: element 0 is `first`, the rest are `rest`
    /// (bfs's cost array: source 0, everyone else u32::MAX).
    U32FirstRest {
        /// Element 0.
        first: u32,
        /// Every other element.
        rest: u32,
    },
    /// Little-endian u32s: element i is `i + 1` while `i + 1 < limit`,
    /// else `u32::MAX` (bfs's chain-shaped edge list).
    U32Chain {
        /// Number of nodes.
        limit: u32,
    },
    /// Little-endian u32s: element i is `base + step * i` (xsbench's
    /// grid and aggregated simulation data).
    U32Affine {
        /// Element 0.
        base: u32,
        /// Per-element increment.
        step: u32,
    },
}

impl Init {
    /// An f64 fill (convenience constructor over [`Init::F64Bits`]).
    pub fn f64(v: f64) -> Init {
        Init::F64Bits(v.to_bits())
    }

    /// Canonical form: variants that describe the same byte pattern map
    /// to one representative, so token equality is exactly byte
    /// equality for the patterns workloads use.
    pub fn normalize(self) -> Init {
        match self {
            Init::F64Bits(0) => Init::Byte(0),
            Init::MarkFirstByte(0) => Init::Byte(0),
            Init::U32FirstRest { first, rest } if first == rest => Init::U32Affine {
                base: first,
                step: 0,
            }
            .normalize(),
            Init::U32Affine { base, step: 0 } => {
                let b = base.to_le_bytes();
                if b.iter().all(|&x| x == b[0]) {
                    Init::Byte(b[0])
                } else {
                    Init::U32Affine { base, step: 0 }
                }
            }
            other => other,
        }
    }

    /// Materialize the image for a buffer of `bytes` bytes.
    pub fn materialize(self, bytes: usize) -> Vec<u8> {
        let mut buf = vec![0u8; bytes];
        match self {
            Init::Byte(v) => buf.fill(v),
            Init::F64Bits(bits) => {
                for chunk in buf.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&bits.to_le_bytes());
                }
            }
            Init::MarkFirstByte(mark) => {
                if !buf.is_empty() {
                    buf[0] = mark;
                }
            }
            Init::U32FirstRest { first, rest } => {
                for (i, chunk) in buf.chunks_exact_mut(4).enumerate() {
                    let v = if i == 0 { first } else { rest };
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            Init::U32Chain { limit } => {
                for (i, chunk) in buf.chunks_exact_mut(4).enumerate() {
                    let next = i as u32 + 1;
                    let v = if next < limit { next } else { u32::MAX };
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
            Init::U32Affine { base, step } => {
                for (i, chunk) in buf.chunks_exact_mut(4).enumerate() {
                    let v = base.wrapping_add(step.wrapping_mul(i as u32));
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
            }
        }
        buf
    }
}

/// A variable declaration: name, size, deterministic initial image.
#[derive(Clone, Debug)]
pub struct VarDecl {
    /// Source-level name (reports, patch plans).
    pub name: String,
    /// Buffer size in bytes.
    pub bytes: usize,
    /// Initial host image.
    pub init: Init,
}

/// One map clause: `map([always,] <type>: var)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapClause {
    /// The mapped variable.
    pub var: VarRef,
    /// The map type keyword.
    pub map_type: MapType,
    /// The `always` modifier.
    pub always: bool,
}

impl MapClause {
    /// `map(to: var)`.
    pub fn to(var: VarRef) -> MapClause {
        MapClause {
            var,
            map_type: MapType::To,
            always: false,
        }
    }

    /// `map(from: var)`.
    pub fn from(var: VarRef) -> MapClause {
        MapClause {
            var,
            map_type: MapType::From,
            always: false,
        }
    }

    /// `map(tofrom: var)`.
    pub fn tofrom(var: VarRef) -> MapClause {
        MapClause {
            var,
            map_type: MapType::ToFrom,
            always: false,
        }
    }

    /// `map(alloc: var)`.
    pub fn alloc(var: VarRef) -> MapClause {
        MapClause {
            var,
            map_type: MapType::Alloc,
            always: false,
        }
    }

    /// `map(release: var)`.
    pub fn release(var: VarRef) -> MapClause {
        MapClause {
            var,
            map_type: MapType::Release,
            always: false,
        }
    }

    /// `map(delete: var)`.
    pub fn delete(var: VarRef) -> MapClause {
        MapClause {
            var,
            map_type: MapType::Delete,
            always: false,
        }
    }

    /// Add the `always` modifier.
    pub fn always(mut self) -> MapClause {
        self.always = true;
        self
    }
}

/// What a kernel write stores into a variable's device buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteContent {
    /// Content unique to this (kernel execution, variable) — real
    /// compute whose result differs from every other buffer image in
    /// the program (babelstream's triad output, bfs's next frontier).
    Unique,
    /// Every byte set to `v` (clearing a mask).
    Byte(u8),
    /// Every u32 element set to `v` (bfs raising its `over` flag).
    U32(u32),
}

/// When a kernel write fires, relative to the enclosing data-dependent
/// loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fires {
    /// On every execution.
    Always,
    /// On every execution except the innermost data-dependent loop's
    /// final iteration — the canonical convergence flag: bfs's `over`
    /// is raised while the frontier is non-empty and stays clear on the
    /// last level.
    OnAllButLastIteration,
}

/// One variable a kernel writes.
#[derive(Clone, Copy, Debug)]
pub struct KernelWrite {
    /// Written variable.
    pub var: VarRef,
    /// Stored content.
    pub content: WriteContent,
    /// Firing condition.
    pub fires: Fires,
}

impl KernelWrite {
    /// An unconditional write of unique content.
    pub fn unique(var: VarRef) -> KernelWrite {
        KernelWrite {
            var,
            content: WriteContent::Unique,
            fires: Fires::Always,
        }
    }

    /// An unconditional byte fill.
    pub fn byte(var: VarRef, v: u8) -> KernelWrite {
        KernelWrite {
            var,
            content: WriteContent::Byte(v),
            fires: Fires::Always,
        }
    }

    /// An unconditional u32 fill.
    pub fn u32(var: VarRef, v: u32) -> KernelWrite {
        KernelWrite {
            var,
            content: WriteContent::U32(v),
            fires: Fires::Always,
        }
    }
}

/// A kernel: name, reads, writes. Read/write *order* is part of the
/// specification — it determines the OpenMP implicit-map order for
/// referenced-but-unmapped variables, which both the lowering and the
/// analyzer must reproduce identically.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Kernel name.
    pub name: String,
    /// Variables read (first in implicit-map order).
    pub reads: Vec<VarRef>,
    /// Variables written, with content and firing condition.
    pub writes: Vec<KernelWrite>,
}

impl KernelSpec {
    /// All referenced variables — reads then writes, deduplicated,
    /// order preserved (mirrors `odp_sim::Kernel::referenced_vars`).
    pub fn referenced(&self) -> Vec<VarRef> {
        let mut out = Vec::with_capacity(self.reads.len() + self.writes.len());
        for v in self
            .reads
            .iter()
            .copied()
            .chain(self.writes.iter().map(|w| w.var))
        {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

/// Loop iteration structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripCount {
    /// Compile-time-known count: the analyzer unrolls it exactly and
    /// its predictions stay `Certain`.
    Static(u32),
    /// Runtime-data-dependent count (bfs's frontier loop). `executed`
    /// is the count one concrete execution performs — used only by the
    /// lowering; the analyzer sees just "some count ≥ 1" and tags
    /// everything the loop touches `MayDependOnData`. Must be ≥ 1
    /// (do-while semantics, as in bfs).
    DataDependent {
        /// Iterations the lowered execution runs.
        executed: u32,
    },
}

/// One step of the program, in program order.
#[derive(Clone, Debug)]
pub enum Step {
    /// `#pragma omp target data map(...)` — a structured region: maps
    /// enter in clause order, the body runs, maps exit in reverse.
    DataRegion {
        /// Code pointer of the directive.
        site: u64,
        /// Target device.
        device: u32,
        /// Map clauses.
        maps: Vec<MapClause>,
        /// Enclosed steps.
        body: Vec<Step>,
    },
    /// `#pragma omp target enter data map(...)`.
    EnterData {
        /// Code pointer of the directive.
        site: u64,
        /// Target device.
        device: u32,
        /// Map clauses.
        maps: Vec<MapClause>,
    },
    /// `#pragma omp target exit data map(...)`.
    ExitData {
        /// Code pointer of the directive.
        site: u64,
        /// Target device.
        device: u32,
        /// Map clauses.
        maps: Vec<MapClause>,
    },
    /// `#pragma omp target update to(...)`.
    UpdateTo {
        /// Code pointer of the directive.
        site: u64,
        /// Target device.
        device: u32,
        /// Updated variables.
        vars: Vec<VarRef>,
    },
    /// `#pragma omp target update from(...)`.
    UpdateFrom {
        /// Code pointer of the directive.
        site: u64,
        /// Target device.
        device: u32,
        /// Updated variables.
        vars: Vec<VarRef>,
    },
    /// `#pragma omp target map(...)` — map, run the kernel, unwind.
    /// Referenced-but-unmapped variables map implicitly `tofrom`.
    Target {
        /// Code pointer of the directive.
        site: u64,
        /// Target device.
        device: u32,
        /// Explicit map clauses.
        maps: Vec<MapClause>,
        /// The kernel.
        kernel: KernelSpec,
    },
    /// Host code overwrites a variable's host buffer.
    HostWrite {
        /// Written variable.
        var: VarRef,
        /// New content (deterministic fills only — host code with
        /// data-dependent output is modeled as a kernel).
        content: WriteContent,
    },
    /// A counted loop around `body`.
    Loop {
        /// Iteration structure.
        trip: TripCount,
        /// Loop body.
        body: Vec<Step>,
    },
}

/// A whole program: variables, step tree, site labels.
#[derive(Clone, Debug)]
pub struct MappingProgram {
    /// Program name (reports).
    pub name: String,
    /// Devices the program targets (device numbers `0..num_devices`).
    pub num_devices: u32,
    /// Variable declarations; [`VarRef`] indexes this.
    pub vars: Vec<VarDecl>,
    /// Top-level steps in program order.
    pub steps: Vec<Step>,
    /// Human-readable labels per site (pseudo source locations).
    pub site_labels: BTreeMap<u64, String>,
}

impl MappingProgram {
    /// Label for a site, falling back to hex.
    pub fn site_label(&self, site: u64) -> String {
        self.site_labels
            .get(&site)
            .cloned()
            .unwrap_or_else(|| format!("{site:#x}"))
    }

    /// Variable name for a reference.
    pub fn var_name(&self, v: VarRef) -> &str {
        &self.vars[v.0].name
    }

    /// Structural validation: references in range, devices in range,
    /// trip counts ≥ 1, `OnAllButLastIteration` only under a
    /// data-dependent loop, unique directive sites.
    pub fn validate(&self) -> Result<(), String> {
        fn walk(
            p: &MappingProgram,
            steps: &[Step],
            in_data_dependent: bool,
            seen_sites: &mut BTreeMap<u64, u32>,
        ) -> Result<(), String> {
            let check_var = |v: VarRef| -> Result<(), String> {
                if v.0 >= p.vars.len() {
                    return Err(format!("variable reference {} out of range", v.0));
                }
                Ok(())
            };
            let check_dev = |d: u32| -> Result<(), String> {
                if d >= p.num_devices {
                    return Err(format!(
                        "device {d} out of range (num_devices {})",
                        p.num_devices
                    ));
                }
                Ok(())
            };
            for step in steps {
                match step {
                    Step::DataRegion {
                        site,
                        device,
                        maps,
                        body,
                    } => {
                        check_dev(*device)?;
                        *seen_sites.entry(*site).or_insert(0) += 1;
                        for m in maps {
                            check_var(m.var)?;
                        }
                        walk(p, body, in_data_dependent, seen_sites)?;
                    }
                    Step::EnterData { site, device, maps }
                    | Step::ExitData { site, device, maps } => {
                        check_dev(*device)?;
                        *seen_sites.entry(*site).or_insert(0) += 1;
                        for m in maps {
                            check_var(m.var)?;
                        }
                    }
                    Step::UpdateTo { site, device, vars }
                    | Step::UpdateFrom { site, device, vars } => {
                        check_dev(*device)?;
                        *seen_sites.entry(*site).or_insert(0) += 1;
                        for &v in vars {
                            check_var(v)?;
                        }
                    }
                    Step::Target {
                        site,
                        device,
                        maps,
                        kernel,
                    } => {
                        check_dev(*device)?;
                        *seen_sites.entry(*site).or_insert(0) += 1;
                        for m in maps {
                            check_var(m.var)?;
                        }
                        for &v in &kernel.reads {
                            check_var(v)?;
                        }
                        for w in &kernel.writes {
                            check_var(w.var)?;
                            if w.fires == Fires::OnAllButLastIteration && !in_data_dependent {
                                return Err(format!(
                                    "kernel '{}': OnAllButLastIteration outside a data-dependent loop",
                                    kernel.name
                                ));
                            }
                        }
                    }
                    Step::HostWrite { var, .. } => check_var(*var)?,
                    Step::Loop { trip, body } => {
                        let dd = match trip {
                            TripCount::Static(n) => {
                                if *n == 0 {
                                    return Err("static loop with zero iterations".into());
                                }
                                in_data_dependent
                            }
                            TripCount::DataDependent { executed } => {
                                if *executed == 0 {
                                    return Err(
                                        "data-dependent loop must execute at least once".into()
                                    );
                                }
                                true
                            }
                        };
                        walk(p, body, dd, seen_sites)?;
                    }
                }
            }
            Ok(())
        }
        let mut seen = BTreeMap::new();
        walk(self, &self.steps, false, &mut seen)?;
        if let Some((site, n)) = seen.iter().find(|(_, &n)| n > 1) {
            return Err(format!(
                "site {site:#x} used by {n} directives; sites must be unique"
            ));
        }
        Ok(())
    }
}

/// Render a clause list the way it would appear in source:
/// `map(to: a) map(tofrom: b)`.
pub fn render_maps(p: &MappingProgram, maps: &[MapClause]) -> String {
    maps.iter()
        .map(|m| render_map(p, m))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render one clause: `map(always, tofrom: x)`.
pub fn render_map(p: &MappingProgram, m: &MapClause) -> String {
    if m.always {
        format!(
            "map(always, {}: {})",
            m.map_type.keyword(),
            p.var_name(m.var)
        )
    } else {
        format!("map({}: {})", m.map_type.keyword(), p.var_name(m.var))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_normalization_is_byte_exact() {
        // Each normalization pair must materialize identical bytes.
        let cases = [
            (Init::F64Bits(0), 32),
            (Init::MarkFirstByte(0), 16),
            (Init::U32FirstRest { first: 5, rest: 5 }, 16),
            (Init::U32Affine { base: 0, step: 0 }, 16),
        ];
        for (init, len) in cases {
            assert_eq!(
                init.materialize(len),
                init.normalize().materialize(len),
                "{init:?}"
            );
        }
        assert_eq!(Init::F64Bits(0).normalize(), Init::Byte(0));
        assert_eq!(Init::MarkFirstByte(0).normalize(), Init::Byte(0));
        assert_eq!(
            Init::U32Affine { base: 0, step: 0 }.normalize(),
            Init::Byte(0)
        );
        // 0x01010101 as u32 fill is a uniform byte fill.
        assert_eq!(
            Init::U32Affine {
                base: 0x0101_0101,
                step: 0
            }
            .normalize(),
            Init::Byte(1)
        );
        // Distinct normalized patterns materialize distinct bytes.
        assert_ne!(
            Init::MarkFirstByte(1).materialize(16),
            Init::Byte(1).materialize(16)
        );
    }

    #[test]
    fn materialize_shapes() {
        assert_eq!(Init::Byte(7).materialize(3), vec![7, 7, 7]);
        assert_eq!(Init::MarkFirstByte(1).materialize(4), vec![1, 0, 0, 0]);
        assert_eq!(
            Init::U32FirstRest {
                first: 0,
                rest: u32::MAX
            }
            .materialize(8),
            vec![0, 0, 0, 0, 255, 255, 255, 255]
        );
        assert_eq!(
            Init::U32Chain { limit: 2 }.materialize(8),
            vec![1, 0, 0, 0, 255, 255, 255, 255]
        );
        assert_eq!(
            Init::U32Affine { base: 3, step: 2 }.materialize(8),
            vec![3, 0, 0, 0, 5, 0, 0, 0]
        );
        assert_eq!(Init::f64(1.0).materialize(8), 1.0f64.to_le_bytes().to_vec());
    }

    #[test]
    fn validate_catches_structural_errors() {
        let mut p = MappingProgram {
            name: "t".into(),
            num_devices: 1,
            vars: vec![VarDecl {
                name: "x".into(),
                bytes: 8,
                init: Init::Byte(0),
            }],
            steps: vec![Step::Loop {
                trip: TripCount::Static(0),
                body: vec![],
            }],
            site_labels: BTreeMap::new(),
        };
        assert!(p.validate().is_err(), "zero-trip loop");
        p.steps = vec![Step::Target {
            site: 1,
            device: 0,
            maps: vec![],
            kernel: KernelSpec {
                name: "k".into(),
                reads: vec![],
                writes: vec![KernelWrite {
                    var: VarRef(0),
                    content: WriteContent::Byte(1),
                    fires: Fires::OnAllButLastIteration,
                }],
            },
        }];
        assert!(p.validate().is_err(), "AllButLast outside loop");
        p.steps = vec![Step::EnterData {
            site: 1,
            device: 3,
            maps: vec![MapClause::to(VarRef(0))],
        }];
        assert!(p.validate().is_err(), "device out of range");
        p.steps = vec![
            Step::EnterData {
                site: 1,
                device: 0,
                maps: vec![MapClause::to(VarRef(0))],
            },
            Step::ExitData {
                site: 1,
                device: 0,
                maps: vec![MapClause::release(VarRef(0))],
            },
        ];
        assert!(p.validate().is_err(), "duplicate sites");
        p.steps = vec![
            Step::EnterData {
                site: 1,
                device: 0,
                maps: vec![MapClause::to(VarRef(0))],
            },
            Step::ExitData {
                site: 2,
                device: 0,
                maps: vec![MapClause::release(VarRef(0))],
            },
        ];
        assert!(p.validate().is_ok());
    }
}
