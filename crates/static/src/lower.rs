//! Lowering: execute a [`MappingProgram`] on the real simulated
//! runtime under the OMPDataPerf tool, and run the fused dynamic
//! engine over the captured trace.
//!
//! This is the other half of the cross-check: the same IR description
//! that the static analyzer reasons about symbolically is executed for
//! real — present-table reference counting, simulated clock, content
//! hashing — producing the dynamic `(codeptr, device, kind)` findings
//! the static predictions are scored against.
//!
//! Content fidelity: deterministic initializers are materialized
//! byte-exactly ([`crate::ir::Init::materialize`]), and
//! [`crate::ir::WriteContent::Unique`] kernel writes fill the device
//! buffer with splitmix64-derived blocks keyed by a global write
//! serial, so every unique write produces an image distinct from every
//! other buffer image in the program — mirroring the abstract
//! executor's token inequalities in the dynamic content hashes.

use crate::ir::{Fires, MapClause, MappingProgram, Step, TripCount, WriteContent};
use odp_model::{CodePtr, MapModifier};
use odp_sim::{Kernel, KernelCost, Map, Runtime, RuntimeConfig, VarId};
use ompdataperf::detect::{EventView, Findings, IssueCounts};
use ompdataperf::fleet::{site_findings, SiteFinding};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

/// The dynamic half of a cross-check: one lowered execution's findings.
#[derive(Clone, Debug)]
pub struct LoweredRun {
    /// Findings keyed `(codeptr, device, kind)`, ascending.
    pub sites: Vec<SiteFinding>,
    /// Table 1-style totals.
    pub counts: IssueCounts,
    /// Runtime warnings the execution hit, rendered.
    pub warnings: Vec<String>,
    /// Data-op events the run produced (sanity statistic).
    pub data_ops: usize,
}

impl LoweredRun {
    /// The dynamic finding at a `(codeptr, device, kind)` key, if any.
    pub fn at(
        &self,
        codeptr: u64,
        device: i32,
        kind: ompdataperf::fleet::FindingKind,
    ) -> Option<&SiteFinding> {
        self.sites
            .iter()
            .find(|s| s.codeptr == codeptr && s.device == device && s.kind == kind)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A globally-distinct buffer image for unique-content write `serial`.
fn unique_image(serial: u64, bytes: usize) -> Vec<u8> {
    let seed = splitmix64(serial);
    let mut out = vec![0u8; bytes];
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let block = splitmix64(seed ^ (i as u64)).to_le_bytes();
        chunk.copy_from_slice(&block[..chunk.len()]);
    }
    out
}

struct Lowerer<'p> {
    p: &'p MappingProgram,
    rt: Runtime,
    vars: Vec<VarId>,
    /// Global unique-write serial (one sequence for the whole run, so
    /// every unique image differs from every other).
    uniq: u64,
    /// Innermost data-dependent loop "is last iteration" flags.
    dd_last: Vec<bool>,
}

impl Lowerer<'_> {
    fn lower_maps(&self, maps: &[MapClause]) -> Vec<Map> {
        maps.iter()
            .map(|m| Map {
                var: self.vars[m.var.0],
                map_type: m.map_type,
                modifier: if m.always {
                    MapModifier::ALWAYS
                } else {
                    MapModifier::NONE
                },
            })
            .collect()
    }

    fn content_image(&mut self, content: WriteContent, bytes: usize) -> Vec<u8> {
        match content {
            WriteContent::Unique => {
                self.uniq += 1;
                unique_image(self.uniq, bytes)
            }
            WriteContent::Byte(v) => vec![v; bytes],
            WriteContent::U32(v) => {
                let mut out = vec![0u8; bytes];
                for chunk in out.chunks_exact_mut(4) {
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
                out
            }
        }
    }

    fn steps(&mut self, steps: &[Step]) {
        for s in steps {
            self.step(s);
        }
    }

    fn step(&mut self, s: &Step) {
        match s {
            Step::DataRegion {
                site,
                device,
                maps,
                body,
            } => {
                let lowered = self.lower_maps(maps);
                let handle = self.rt.target_data_begin(*device, CodePtr(*site), &lowered);
                self.steps(body);
                self.rt.target_data_end(handle);
            }
            Step::EnterData { site, device, maps } => {
                let lowered = self.lower_maps(maps);
                self.rt.target_enter_data(*device, CodePtr(*site), &lowered);
            }
            Step::ExitData { site, device, maps } => {
                let lowered = self.lower_maps(maps);
                self.rt.target_exit_data(*device, CodePtr(*site), &lowered);
            }
            Step::UpdateTo { site, device, vars } => {
                let ids: Vec<VarId> = vars.iter().map(|v| self.vars[v.0]).collect();
                self.rt.target_update_to(*device, CodePtr(*site), &ids);
            }
            Step::UpdateFrom { site, device, vars } => {
                let ids: Vec<VarId> = vars.iter().map(|v| self.vars[v.0]).collect();
                self.rt.target_update_from(*device, CodePtr(*site), &ids);
            }
            Step::Target {
                site,
                device,
                maps,
                kernel,
            } => {
                let lowered = self.lower_maps(maps);
                let reads: Vec<VarId> = kernel.reads.iter().map(|v| self.vars[v.0]).collect();
                let writes: Vec<VarId> = kernel.writes.iter().map(|w| self.vars[w.var.0]).collect();
                let is_last = self.dd_last.last().copied().unwrap_or(false);
                let fills: Vec<(VarId, Vec<u8>)> = kernel
                    .writes
                    .iter()
                    .filter(|w| w.fires == Fires::Always || !is_last)
                    .map(|w| {
                        let bytes = self.p.vars[w.var.0].bytes;
                        (self.vars[w.var.0], self.content_image(w.content, bytes))
                    })
                    .collect();
                let mut body = |view: &mut odp_sim::DeviceView<'_>| {
                    for (var, img) in &fills {
                        let buf = view.bytes_mut(*var);
                        let n = buf.len().min(img.len());
                        buf[..n].copy_from_slice(&img[..n]);
                    }
                };
                self.rt.target(
                    *device,
                    CodePtr(*site),
                    &lowered,
                    Kernel::new(&kernel.name, KernelCost::fixed(1000))
                        .reads(&reads)
                        .writes(&writes)
                        .body(&mut body),
                );
            }
            Step::HostWrite { var, content } => {
                let bytes = self.p.vars[var.0].bytes;
                let img = self.content_image(*content, bytes);
                self.rt
                    .host_bytes_mut(self.vars[var.0])
                    .copy_from_slice(&img);
            }
            Step::Loop { trip, body } => {
                let (iters, dd) = match trip {
                    TripCount::Static(n) => (*n, false),
                    TripCount::DataDependent { executed } => (*executed, true),
                };
                for i in 0..iters {
                    if dd {
                        self.dd_last.push(i + 1 == iters);
                    }
                    self.steps(body);
                    if dd {
                        self.dd_last.pop();
                    }
                }
            }
        }
    }
}

/// Lower `p` onto the simulated runtime, execute it under the
/// OMPDataPerf tool, and run the fused dynamic engine over the trace.
pub fn lower_and_run(p: &MappingProgram) -> LoweredRun {
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    let mut rt = Runtime::new(RuntimeConfig::default().with_devices(p.num_devices));
    rt.attach_tool(Box::new(tool));

    let vars = p
        .vars
        .iter()
        .map(|v| {
            let id = rt.host_alloc(&v.name, v.bytes);
            rt.host_bytes_mut(id)
                .copy_from_slice(&v.init.materialize(v.bytes));
            id
        })
        .collect();

    let mut lowerer = Lowerer {
        p,
        rt,
        vars,
        uniq: 0,
        dd_last: Vec::new(),
    };
    lowerer.steps(&p.steps);
    lowerer.rt.finish();
    let warnings = lowerer
        .rt
        .warnings()
        .iter()
        .map(|w| format!("{w:?}"))
        .collect();

    let trace = handle.take_trace();
    let view = EventView::from_log(&trace);
    let findings = Findings::detect_fused(&view);
    LoweredRun {
        sites: site_findings(&findings),
        counts: findings.counts(),
        warnings,
        data_ops: view.op_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Init, KernelSpec, KernelWrite, VarDecl, VarRef};
    use ompdataperf::fleet::FindingKind;
    use std::collections::BTreeMap;

    #[test]
    fn unique_images_are_distinct() {
        let a = unique_image(1, 64);
        let b = unique_image(2, 64);
        let c = unique_image(1, 64);
        assert_ne!(a, b);
        assert_eq!(a, c, "same serial reproduces the same image");
    }

    #[test]
    fn lowered_loop_produces_dynamic_dd_and_ra() {
        // The same shape analysis.rs pins statically: 3 iterations of
        // target map(tofrom: a) with a read-only kernel.
        let p = MappingProgram {
            name: "t".into(),
            num_devices: 1,
            vars: vec![VarDecl {
                name: "a".into(),
                bytes: 64,
                init: Init::f64(1.5),
            }],
            steps: vec![Step::Loop {
                trip: TripCount::Static(3),
                body: vec![Step::Target {
                    site: 0x10,
                    device: 0,
                    maps: vec![MapClause::tofrom(VarRef(0))],
                    kernel: KernelSpec {
                        name: "k".into(),
                        reads: vec![VarRef(0)],
                        writes: vec![],
                    },
                }],
            }],
            site_labels: BTreeMap::new(),
        };
        p.validate().expect("valid");
        let run = lower_and_run(&p);
        assert!(run.warnings.is_empty(), "{:?}", run.warnings);
        let dd = run.at(0x10, 0, FindingKind::DuplicateTransfer).expect("DD");
        assert_eq!(dd.count, 2);
        let ra = run.at(0x10, 0, FindingKind::RepeatedAlloc).expect("RA");
        assert_eq!(ra.count, 2);
    }

    #[test]
    fn kernel_unique_write_defeats_round_trip() {
        let p = MappingProgram {
            name: "t".into(),
            num_devices: 1,
            vars: vec![VarDecl {
                name: "a".into(),
                bytes: 64,
                init: Init::f64(1.5),
            }],
            steps: vec![Step::Target {
                site: 0x10,
                device: 0,
                maps: vec![MapClause::tofrom(VarRef(0))],
                kernel: KernelSpec {
                    name: "k".into(),
                    reads: vec![VarRef(0)],
                    writes: vec![KernelWrite::unique(VarRef(0))],
                },
            }],
            site_labels: BTreeMap::new(),
        };
        let run = lower_and_run(&p);
        assert!(run.at(0x10, 0, FindingKind::RoundTrip).is_none());
        assert_eq!(run.counts.rt, 0);
    }
}
