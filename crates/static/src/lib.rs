//! `odp_static` — static analysis of OpenMP data-mapping patterns over
//! a declarative mapping IR.
//!
//! The dynamic pipeline (`odp_sim` → `ompdataperf`) observes one
//! execution; this crate predicts the same five inefficiency classes —
//! round trips, duplicate transfers, unused allocations, unused
//! transfers, repeated allocations — *without running the program*, by
//! abstract interpretation of a [`ir::MappingProgram`]:
//!
//! 1. [`ir`] — the declarative IR: variables with deterministic
//!    initializers, map clauses, kernels with read/write sets, loop
//!    structure. One description drives both sides.
//! 2. [`exec`] — the abstract executor: symbolic content tokens stand
//!    in for buffer hashes, data-dependent loops are unrolled and
//!    probed, and every abstract event carries a certainty bit.
//! 3. [`analysis`] — the five detector analogues over the abstract
//!    stream, each prediction tagged [`analysis::Certainty::Certain`]
//!    (holds in every execution) or
//!    [`analysis::Certainty::MayDependOnData`].
//! 4. [`lower`] — lowers the same IR onto the real simulated runtime
//!    and runs the fused dynamic engine over the captured trace.
//! 5. [`mod@crosscheck`] — joins both sides by `(codeptr, device, kind)`
//!    and scores certain precision / may coverage / recall misses.
//! 6. [`plan`] — turns `Certain` predictions into machine-readable
//!    directive rewrites, applies them to the IR, and validates the
//!    rewrite by re-lowering and re-running.
//! 7. [`programs`] — declarative descriptions of the three reference
//!    workloads (babelstream, bfs, xsbench).
//!
//! The soundness contract — every `Certain` prediction is confirmed by
//! the dynamic engine on the lowered program — is pinned by unit tests,
//! a property suite, and golden fixtures.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod crosscheck;
pub mod exec;
pub mod ir;
pub mod lower;
pub mod plan;
pub mod programs;

pub use analysis::{analyze, Certainty, StaticPrediction, StaticReport};
pub use crosscheck::{crosscheck, CrossCheck, CrossRow, CrossSummary, RowStatus};
pub use exec::{abstract_run, AbsEvent, AbsKernel, AbsOp, AbsOpKind, AbsTrace};
pub use ir::{
    Init, KernelSpec, KernelWrite, MapClause, MappingProgram, Step, TripCount, VarDecl, VarRef,
};
pub use lower::{lower_and_run, LoweredRun};
pub use plan::{
    apply_plan, emit_plan, validate_plan, PatchEdit, PatchPlan, PlanOutcome, RewriteAction,
};
pub use programs::{by_name, Size, NAMES};
