//! Patch-plan emitter: turn `Certain` static predictions into
//! machine-readable directive rewrites, apply them to the IR, and
//! validate the rewrite by re-running the dynamic engine.
//!
//! Every edit is conservative: it fires only when the analyzer proved
//! the finding occurs in every execution *and* the IR shows the rewrite
//! cannot change what the host observes (host images of the affected
//! variables are loop-invariant, kernels never write the downgraded
//! variable, …). `Certain` rows no rule covers are reported as
//! unremediable rather than guessed at — bfs's cross-variable duplicate
//! (two different variables whose first deliveries carry identical
//! bytes) is the canonical case.
//!
//! The edit shapes mirror the source-level remediations of §7.5 and
//! SNIPPETS.md's Mem5 split:
//!
//! - [`RewriteAction::HoistRegionOutOfLoop`] — a `target data` region
//!   re-opened every iteration becomes `enter data` before the loop +
//!   `exit data` after it.
//! - [`RewriteAction::SplitMapToEnterExit`] — a per-iteration
//!   `map(from: x)` on a `target` becomes `enter data map(alloc: x)` +
//!   deferred `exit data map(from: x)`.
//! - [`RewriteAction::DowngradeToFromToTo`] — `map(tofrom: x)` on data
//!   kernels never modify becomes `map(to: x)` (kills the round trip).
//! - [`RewriteAction::DowngradeToToAlloc`] — `map(to: x)` on data
//!   kernels never read becomes `map(alloc: x)` (kills the unused
//!   transfer).
//! - [`RewriteAction::DropClause`] — a mapping no kernel can use is
//!   removed outright.

use crate::analysis::{Certainty, StaticPrediction, StaticReport};
use crate::ir::{render_map, MapClause, MappingProgram, Step, VarRef};
use crate::lower::lower_and_run;
use odp_model::MapType;
use ompdataperf::fleet::FindingKind;
use serde::Serialize;
use std::collections::BTreeSet;

/// The rewrite shapes the emitter can propose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RewriteAction {
    /// Replace a per-iteration `target data` region with `enter data`
    /// before the enclosing loop and `exit data` after it.
    HoistRegionOutOfLoop,
    /// Replace a per-iteration map clause on a `target` with
    /// `enter data map(alloc:)` before the loop, `map(alloc:)` on the
    /// target, and a deferred `exit data` after the loop.
    SplitMapToEnterExit,
    /// `map(tofrom: x)` → `map(to: x)`.
    DowngradeToFromToTo,
    /// `map(to: x)` → `map(alloc: x)` (or `tofrom` → `from`).
    DowngradeToToAlloc,
    /// Remove the clause.
    DropClause,
}

/// One machine-readable directive rewrite.
#[derive(Clone, Debug, Serialize)]
pub struct PatchEdit {
    /// The rewrite shape.
    pub action: RewriteAction,
    /// Site of the directive being rewritten.
    pub site: u64,
    /// Its human-readable label.
    pub site_label: String,
    /// Variables the edit touches, by name.
    pub vars: Vec<String>,
    /// The clause list (or clause) as it reads today.
    pub directive_before: String,
    /// What it becomes.
    pub directive_after: String,
    /// Why the edit is sound, citing the evidence.
    pub reason: String,
}

/// A full plan: ordered edits plus the `Certain` rows no rule covers.
#[derive(Clone, Debug, Serialize)]
pub struct PatchPlan {
    /// Program name.
    pub program: String,
    /// Edits in application order.
    pub edits: Vec<PatchEdit>,
    /// `Certain` findings with no safe rewrite, explained.
    pub unremediable: Vec<String>,
}

impl PatchPlan {
    /// Deterministic pretty-JSON rendering.
    pub fn to_json(&self) -> String {
        // Plain serializable data; cannot fail.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("plan serialization cannot fail")
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "patch plan: {}", self.program);
        if self.edits.is_empty() {
            let _ = writeln!(out, "  no edits proposed");
        }
        for (i, e) in self.edits.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {}. [{:?}] at {} ({})",
                i + 1,
                e.action,
                e.site_label,
                e.vars.join(", ")
            );
            let _ = writeln!(out, "     before: {}", e.directive_before);
            let _ = writeln!(out, "     after:  {}", e.directive_after);
            let _ = writeln!(out, "     why:    {}", e.reason);
        }
        for u in &self.unremediable {
            let _ = writeln!(out, "  unremediable: {u}");
        }
        out
    }
}

// ---------------------------------------------------------------------
// IR queries the rules need
// ---------------------------------------------------------------------

/// Variables whose *host* image can change inside `steps` (host writes
/// and device→host updates; `from`/`tofrom` exits write the host too).
///
/// `enclosed` holds variables mapped by enclosing `target data` regions:
/// those are present with a live reference, so a nested directive's
/// non-`always` `from`/`tofrom` exit (explicit or implicit) only drops a
/// refcount and copies nothing back.
fn host_mutated_vars(steps: &[Step], enclosed: &BTreeSet<usize>, out: &mut BTreeSet<usize>) {
    for s in steps {
        match s {
            Step::HostWrite { var, .. } => {
                out.insert(var.0);
            }
            Step::UpdateFrom { vars, .. } => {
                out.extend(vars.iter().map(|v| v.0));
            }
            Step::DataRegion { maps, body, .. } => {
                out.extend(
                    maps.iter()
                        .filter(|m| {
                            m.map_type.copies_from_device()
                                && (m.always || !enclosed.contains(&m.var.0))
                        })
                        .map(|m| m.var.0),
                );
                let mut inner = enclosed.clone();
                inner.extend(maps.iter().map(|m| m.var.0));
                host_mutated_vars(body, &inner, out);
            }
            Step::ExitData { maps, .. } => {
                // An exit data can drop the last reference regardless of
                // enclosing regions; stay conservative.
                out.extend(
                    maps.iter()
                        .filter(|m| m.map_type.copies_from_device())
                        .map(|m| m.var.0),
                );
            }
            Step::Target { maps, kernel, .. } => {
                // Implicit tofrom exits write the host for referenced-
                // but-unmapped variables; explicit from/tofrom too —
                // unless an enclosing region keeps the data present.
                out.extend(
                    maps.iter()
                        .filter(|m| {
                            m.map_type.copies_from_device()
                                && (m.always || !enclosed.contains(&m.var.0))
                        })
                        .map(|m| m.var.0),
                );
                for v in kernel.referenced() {
                    if !maps.iter().any(|m| m.var == v) && !enclosed.contains(&v.0) {
                        out.insert(v.0);
                    }
                }
            }
            Step::Loop { body, .. } => host_mutated_vars(body, enclosed, out),
            Step::EnterData { .. } | Step::UpdateTo { .. } => {}
        }
    }
}

/// Variables any kernel in `steps` writes.
fn kernel_written_vars(steps: &[Step], out: &mut BTreeSet<usize>) {
    for s in steps {
        match s {
            Step::Target { kernel, .. } => out.extend(kernel.writes.iter().map(|w| w.var.0)),
            Step::DataRegion { body, .. } | Step::Loop { body, .. } => {
                kernel_written_vars(body, out)
            }
            _ => {}
        }
    }
}

/// Variables any kernel in `steps` reads.
fn kernel_read_vars(steps: &[Step], out: &mut BTreeSet<usize>) {
    for s in steps {
        match s {
            Step::Target { kernel, .. } => out.extend(kernel.reads.iter().map(|v| v.0)),
            Step::DataRegion { body, .. } | Step::Loop { body, .. } => kernel_read_vars(body, out),
            _ => {}
        }
    }
}

/// Does any directive in `steps` other than site `except` map or update
/// variable `v`?
fn mapped_elsewhere(steps: &[Step], v: usize, except: u64) -> bool {
    steps.iter().any(|s| match s {
        Step::DataRegion {
            site, maps, body, ..
        } => {
            (*site != except && maps.iter().any(|m| m.var.0 == v))
                || mapped_elsewhere(body, v, except)
        }
        Step::EnterData { site, maps, .. } | Step::ExitData { site, maps, .. } => {
            *site != except && maps.iter().any(|m| m.var.0 == v)
        }
        Step::UpdateTo { site, vars, .. } | Step::UpdateFrom { site, vars, .. } => {
            *site != except && vars.iter().any(|x| x.0 == v)
        }
        Step::Target {
            site, maps, kernel, ..
        } => {
            *site != except
                && (maps.iter().any(|m| m.var.0 == v)
                    || kernel.referenced().iter().any(|x| x.0 == v))
        }
        Step::HostWrite { .. } => false,
        Step::Loop { body, .. } => mapped_elsewhere(body, v, except),
    })
}

fn certain_at(report: &StaticReport, site: u64, kind: FindingKind) -> Option<&StaticPrediction> {
    report
        .rows
        .iter()
        .find(|r| r.codeptr == site && r.kind == kind && r.certainty == Certainty::Certain)
}

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

/// Emit a patch plan from `Certain` predictions over `p`.
pub fn emit_plan(p: &MappingProgram, report: &StaticReport) -> PatchPlan {
    let mut edits: Vec<PatchEdit> = Vec::new();
    let mut covered: BTreeSet<u64> = BTreeSet::new();

    emit_loop_rules(
        p,
        &p.steps,
        &BTreeSet::new(),
        report,
        &mut edits,
        &mut covered,
    );
    emit_clause_rules(p, &p.steps, report, &mut edits, &mut covered);

    edits.sort_by_key(|a| (a.site, a.vars.clone()));
    let unremediable = report
        .certain_rows()
        .filter(|r| !covered.contains(&r.codeptr))
        .map(|r| {
            format!(
                "{} at {} dev{} ({}): no safe rewrite — e.g. byte-identical first deliveries \
                 of distinct variables, or a pattern outside the rule set",
                r.kind.code(),
                p.site_label(r.codeptr),
                r.device,
                r.vars.join(", "),
            )
        })
        .collect();
    PatchPlan {
        program: p.name.clone(),
        edits,
        unremediable,
    }
}

/// Rules that need an enclosing loop: hoist and split.
fn emit_loop_rules(
    p: &MappingProgram,
    steps: &[Step],
    enclosed: &BTreeSet<usize>,
    report: &StaticReport,
    edits: &mut Vec<PatchEdit>,
    covered: &mut BTreeSet<u64>,
) {
    for s in steps {
        match s {
            Step::Loop { body, .. } => {
                let mut loop_host_mut = BTreeSet::new();
                host_mutated_vars(body, enclosed, &mut loop_host_mut);
                for inner in body.iter() {
                    if let Step::DataRegion { site, maps, .. } = inner {
                        try_hoist(p, *site, maps, &loop_host_mut, report, edits, covered);
                    }
                }
                // Split applies to targets anywhere under the loop.
                try_splits(p, body, enclosed, body, report, edits, covered);
                // Nested loops inside this one still get their own shot.
                emit_loop_rules(p, body, enclosed, report, edits, covered);
            }
            Step::DataRegion { maps, body, .. } => {
                let mut inner = enclosed.clone();
                inner.extend(maps.iter().map(|m| m.var.0));
                emit_loop_rules(p, body, &inner, report, edits, covered);
            }
            _ => {}
        }
    }
}

fn try_hoist(
    p: &MappingProgram,
    site: u64,
    maps: &[MapClause],
    loop_host_mut: &BTreeSet<usize>,
    report: &StaticReport,
    edits: &mut Vec<PatchEdit>,
    covered: &mut BTreeSet<u64>,
) {
    let dd = certain_at(report, site, FindingKind::DuplicateTransfer);
    let ra = certain_at(report, site, FindingKind::RepeatedAlloc);
    if dd.is_none() && ra.is_none() {
        return;
    }
    // Only enter-only clause lists hoist cleanly (no `from` side to
    // defer), and the host images must be loop-invariant so later
    // iterations would have re-sent the same bytes anyway.
    let enter_only = maps
        .iter()
        .all(|m| matches!(m.map_type, MapType::To | MapType::Alloc) && !m.always);
    let host_stable = maps.iter().all(|m| !loop_host_mut.contains(&m.var.0));
    if !enter_only || !host_stable {
        return;
    }
    let before = crate::ir::render_maps(p, maps);
    let release: Vec<String> = maps
        .iter()
        .map(|m| format!("map(release: {})", p.var_name(m.var)))
        .collect();
    let mut evidence = Vec::new();
    if let Some(r) = dd {
        evidence.push(format!("{} certain duplicate transfers", r.certain_count));
    }
    if let Some(r) = ra {
        evidence.push(format!("{} certain repeated allocations", r.certain_count));
    }
    edits.push(PatchEdit {
        action: RewriteAction::HoistRegionOutOfLoop,
        site,
        site_label: p.site_label(site),
        vars: maps.iter().map(|m| p.var_name(m.var).to_string()).collect(),
        directive_before: format!("per-iteration target data {before}"),
        directive_after: format!(
            "enter data {before} before the loop; {} after it",
            release.join(" ")
        ),
        reason: format!(
            "{}; host images are loop-invariant, so every re-mapping re-sent identical bytes \
             (device copies persist across iterations after the rewrite)",
            evidence.join(", ")
        ),
    });
    covered.insert(site);
}

fn try_splits(
    p: &MappingProgram,
    loop_body: &[Step],
    enclosed: &BTreeSet<usize>,
    steps: &[Step],
    report: &StaticReport,
    edits: &mut Vec<PatchEdit>,
    covered: &mut BTreeSet<u64>,
) {
    let mut loop_host_mut = BTreeSet::new();
    host_mutated_vars(loop_body, enclosed, &mut loop_host_mut);
    for s in steps {
        match s {
            Step::Target { site, maps, .. } => {
                let Some(ra) = certain_at(report, *site, FindingKind::RepeatedAlloc) else {
                    continue;
                };
                for m in maps {
                    let vname = p.var_name(m.var);
                    if !ra.vars.iter().any(|x| x == vname) {
                        continue;
                    }
                    // Sound when nothing else maps the variable and no
                    // host code inside the loop needs the per-iteration
                    // copy-back.
                    if mapped_elsewhere(&p.steps, m.var.0, *site)
                        || loop_host_mut.contains(&m.var.0) && m.map_type.copies_to_device()
                    {
                        continue;
                    }
                    let enter = if m.map_type.copies_to_device() {
                        "to"
                    } else {
                        "alloc"
                    };
                    let exit = if m.map_type.copies_from_device() {
                        "from"
                    } else {
                        "release"
                    };
                    edits.push(PatchEdit {
                        action: RewriteAction::SplitMapToEnterExit,
                        site: *site,
                        site_label: p.site_label(*site),
                        vars: vec![vname.to_string()],
                        directive_before: format!("per-iteration {}", render_map(p, m)),
                        directive_after: format!(
                            "enter data map({enter}: {vname}) before the loop; \
                             map(alloc: {vname}) on the target; \
                             exit data map({exit}: {vname}) after the loop"
                        ),
                        reason: format!(
                            "{} certain repeated allocations of {vname}; no other directive \
                             maps it, so allocation and copy-back defer to the loop boundary \
                             (Mem5 split)",
                            ra.certain_count
                        ),
                    });
                    covered.insert(*site);
                }
            }
            Step::DataRegion { body, .. } => {
                try_splits(p, loop_body, enclosed, body, report, edits, covered)
            }
            // Nested loops are handled by their own emit_loop_rules pass.
            _ => {}
        }
    }
}

/// Clause-local rules: round-trip and unused-transfer downgrades, dead
/// clause removal.
fn emit_clause_rules(
    p: &MappingProgram,
    steps: &[Step],
    report: &StaticReport,
    edits: &mut Vec<PatchEdit>,
    covered: &mut BTreeSet<u64>,
) {
    let mut written = BTreeSet::new();
    kernel_written_vars(&p.steps, &mut written);
    let mut read = BTreeSet::new();
    kernel_read_vars(&p.steps, &mut read);
    for s in steps {
        let (site, maps, body): (u64, &[MapClause], &[Step]) = match s {
            Step::Target { site, maps, .. } => (*site, maps, &[]),
            Step::DataRegion {
                site, maps, body, ..
            } => (*site, maps, body),
            Step::Loop { body, .. } => {
                emit_clause_rules(p, body, report, edits, covered);
                continue;
            }
            _ => continue,
        };
        for m in maps {
            let vname = p.var_name(m.var).to_string();
            // RT: tofrom on data no kernel modifies → to.
            if m.map_type == MapType::ToFrom && !written.contains(&m.var.0) {
                if let Some(rt) = certain_at(report, site, FindingKind::RoundTrip) {
                    if rt.vars.contains(&vname) {
                        edits.push(PatchEdit {
                            action: RewriteAction::DowngradeToFromToTo,
                            site,
                            site_label: p.site_label(site),
                            vars: vec![vname.clone()],
                            directive_before: render_map(p, m),
                            directive_after: format!("map(to: {vname})"),
                            reason: format!(
                                "{} certain round trips: no kernel ever writes {vname}, so \
                                 the copy-back returns the bytes the host already holds",
                                rt.certain_count
                            ),
                        });
                        covered.insert(site);
                        continue;
                    }
                }
            }
            // UT: to/tofrom on data no kernel reads → alloc/from.
            if m.map_type.copies_to_device() && !read.contains(&m.var.0) {
                if let Some(ut) = certain_at(report, site, FindingKind::UnusedTransfer) {
                    if ut.vars.contains(&vname) {
                        let after = if m.map_type == MapType::ToFrom {
                            format!("map(from: {vname})")
                        } else {
                            format!("map(alloc: {vname})")
                        };
                        edits.push(PatchEdit {
                            action: RewriteAction::DowngradeToToAlloc,
                            site,
                            site_label: p.site_label(site),
                            vars: vec![vname.clone()],
                            directive_before: render_map(p, m),
                            directive_after: after,
                            reason: format!(
                                "{} certain unused transfers: no kernel ever reads {vname}",
                                ut.certain_count
                            ),
                        });
                        covered.insert(site);
                        continue;
                    }
                }
            }
            // UA: a mapping no kernel references at all → drop it.
            if !read.contains(&m.var.0) && !written.contains(&m.var.0) {
                if let Some(ua) = certain_at(report, site, FindingKind::UnusedAlloc) {
                    if ua.vars.contains(&vname) {
                        edits.push(PatchEdit {
                            action: RewriteAction::DropClause,
                            site,
                            site_label: p.site_label(site),
                            vars: vec![vname.clone()],
                            directive_before: render_map(p, m),
                            directive_after: "(clause removed)".into(),
                            reason: format!(
                                "{} certain unused allocations: no kernel references {vname}",
                                ua.certain_count
                            ),
                        });
                        covered.insert(site);
                    }
                }
            }
        }
        emit_clause_rules(p, body, report, edits, covered);
    }
}

// ---------------------------------------------------------------------
// Application
// ---------------------------------------------------------------------

/// Apply `plan` to `p`, producing the rewritten program. The result is
/// re-validated structurally; fails if an edit no longer matches the
/// IR (stale plan).
pub fn apply_plan(p: &MappingProgram, plan: &PatchPlan) -> Result<MappingProgram, String> {
    let mut out = p.clone();
    let mut next_site = max_site(&out.steps).wrapping_add(1);
    for e in &plan.edits {
        apply_edit(&mut out, e, &mut next_site)?;
    }
    out.validate()?;
    Ok(out)
}

fn max_site(steps: &[Step]) -> u64 {
    let mut max = 0;
    for s in steps {
        match s {
            Step::DataRegion { site, body, .. } => {
                max = max.max(*site).max(max_site(body));
            }
            Step::EnterData { site, .. }
            | Step::ExitData { site, .. }
            | Step::UpdateTo { site, .. }
            | Step::UpdateFrom { site, .. }
            | Step::Target { site, .. } => max = max.max(*site),
            Step::HostWrite { .. } => {}
            Step::Loop { body, .. } => max = max.max(max_site(body)),
        }
    }
    max
}

fn var_by_name(p: &MappingProgram, name: &str) -> Result<VarRef, String> {
    p.vars
        .iter()
        .position(|v| v.name == name)
        .map(VarRef)
        .ok_or_else(|| format!("plan names unknown variable '{name}'"))
}

fn apply_edit(p: &mut MappingProgram, e: &PatchEdit, next_site: &mut u64) -> Result<(), String> {
    match e.action {
        RewriteAction::HoistRegionOutOfLoop => hoist(p, e, next_site),
        RewriteAction::SplitMapToEnterExit => split(p, e, next_site),
        RewriteAction::DowngradeToFromToTo => retype(p, e, |t| match t {
            MapType::ToFrom => Some(MapType::To),
            _ => None,
        }),
        RewriteAction::DowngradeToToAlloc => retype(p, e, |t| match t {
            MapType::To => Some(MapType::Alloc),
            MapType::ToFrom => Some(MapType::From),
            _ => None,
        }),
        RewriteAction::DropClause => {
            let var = var_by_name(p, e.vars.first().map(String::as_str).unwrap_or_default())?;
            let mut dropped = false;
            edit_maps_at(&mut p.steps, e.site, &mut |maps| {
                let before = maps.len();
                maps.retain(|m| m.var != var);
                dropped = maps.len() != before;
            });
            if dropped {
                Ok(())
            } else {
                Err(format!("no clause for {:?} at site {:#x}", e.vars, e.site))
            }
        }
    }
}

fn retype(
    p: &mut MappingProgram,
    e: &PatchEdit,
    f: impl Fn(MapType) -> Option<MapType>,
) -> Result<(), String> {
    let var = var_by_name(p, e.vars.first().map(String::as_str).unwrap_or_default())?;
    let mut changed = false;
    edit_maps_at(&mut p.steps, e.site, &mut |maps| {
        for m in maps.iter_mut() {
            if m.var == var {
                if let Some(t) = f(m.map_type) {
                    m.map_type = t;
                    changed = true;
                }
            }
        }
    });
    if changed {
        Ok(())
    } else {
        Err(format!(
            "no retypeable clause for {:?} at site {:#x}",
            e.vars, e.site
        ))
    }
}

/// Run `f` on the clause list of the directive at `site`, wherever it
/// sits in the tree.
fn edit_maps_at(steps: &mut [Step], site: u64, f: &mut impl FnMut(&mut Vec<MapClause>)) {
    for s in steps {
        match s {
            Step::DataRegion {
                site: st,
                maps,
                body,
                ..
            } => {
                if *st == site {
                    f(maps);
                }
                edit_maps_at(body, site, f);
            }
            Step::EnterData { site: st, maps, .. }
            | Step::ExitData { site: st, maps, .. }
            | Step::Target { site: st, maps, .. }
                if *st == site =>
            {
                f(maps);
            }
            Step::Loop { body, .. } => edit_maps_at(body, site, f),
            _ => {}
        }
    }
}

/// Does the subtree contain a directive at `site`?
fn contains_site(steps: &[Step], site: u64) -> bool {
    steps.iter().any(|s| match s {
        Step::DataRegion { site: st, body, .. } => *st == site || contains_site(body, site),
        Step::EnterData { site: st, .. }
        | Step::ExitData { site: st, .. }
        | Step::UpdateTo { site: st, .. }
        | Step::UpdateFrom { site: st, .. }
        | Step::Target { site: st, .. } => *st == site,
        Step::HostWrite { .. } => false,
        Step::Loop { body, .. } => contains_site(body, site),
    })
}

fn hoist(p: &mut MappingProgram, e: &PatchEdit, next_site: &mut u64) -> Result<(), String> {
    let label = p.site_label(e.site);
    let (steps, done) = hoist_in(std::mem::take(&mut p.steps), e.site, next_site, &label, p);
    p.steps = steps;
    if done {
        Ok(())
    } else {
        Err(format!(
            "no loop-nested region at site {:#x} to hoist",
            e.site
        ))
    }
}

fn hoist_in(
    steps: Vec<Step>,
    site: u64,
    next_site: &mut u64,
    label: &str,
    p: &mut MappingProgram,
) -> (Vec<Step>, bool) {
    let mut out = Vec::with_capacity(steps.len());
    let mut done = false;
    for s in steps {
        if done {
            out.push(s);
            continue;
        }
        match s {
            Step::Loop { trip, body } if contains_site(&body, site) => {
                // The region must sit directly in this loop's body.
                let direct = body
                    .iter()
                    .any(|x| matches!(x, Step::DataRegion { site: st, .. } if *st == site));
                if !direct {
                    let (nb, d) = hoist_in(body, site, next_site, label, p);
                    done = d;
                    out.push(Step::Loop { trip, body: nb });
                    continue;
                }
                let mut region_maps = Vec::new();
                let mut region_device = 0;
                let new_body: Vec<Step> = body
                    .into_iter()
                    .flat_map(|x| match x {
                        Step::DataRegion {
                            site: st,
                            device,
                            maps,
                            body: inner,
                        } if st == site => {
                            region_maps = maps;
                            region_device = device;
                            inner
                        }
                        other => vec![other],
                    })
                    .collect();
                let enter_site = *next_site;
                let exit_site = *next_site + 1;
                *next_site += 2;
                p.site_labels
                    .insert(enter_site, format!("hoisted_enter({label})"));
                p.site_labels
                    .insert(exit_site, format!("hoisted_exit({label})"));
                out.push(Step::EnterData {
                    site: enter_site,
                    device: region_device,
                    maps: region_maps.clone(),
                });
                out.push(Step::Loop {
                    trip,
                    body: new_body,
                });
                out.push(Step::ExitData {
                    site: exit_site,
                    device: region_device,
                    maps: region_maps
                        .iter()
                        .map(|m| MapClause::release(m.var))
                        .collect(),
                });
                done = true;
            }
            Step::Loop { trip, body } => out.push(Step::Loop { trip, body }),
            Step::DataRegion {
                site: st,
                device,
                maps,
                body,
            } => {
                let (nb, d) = hoist_in(body, site, next_site, label, p);
                done = d;
                out.push(Step::DataRegion {
                    site: st,
                    device,
                    maps,
                    body: nb,
                });
            }
            other => out.push(other),
        }
    }
    (out, done)
}

fn split(p: &mut MappingProgram, e: &PatchEdit, next_site: &mut u64) -> Result<(), String> {
    let var = var_by_name(p, e.vars.first().map(String::as_str).unwrap_or_default())?;
    // Find the clause's map type, then retype it to alloc on the target.
    let mut entry_type = None;
    edit_maps_at(&mut p.steps, e.site, &mut |maps| {
        for m in maps.iter_mut() {
            if m.var == var {
                entry_type = Some(m.map_type);
                m.map_type = MapType::Alloc;
            }
        }
    });
    let Some(orig) = entry_type else {
        return Err(format!("no clause for {:?} at site {:#x}", e.vars, e.site));
    };
    let enter_type = if orig.copies_to_device() {
        MapType::To
    } else {
        MapType::Alloc
    };
    let exit_type = if orig.copies_from_device() {
        MapType::From
    } else {
        MapType::Release
    };
    let label = p.site_label(e.site);
    let enter_site = *next_site;
    let exit_site = *next_site + 1;
    *next_site += 2;
    p.site_labels
        .insert(enter_site, format!("split_enter({label})"));
    p.site_labels
        .insert(exit_site, format!("split_exit({label})"));
    let device = device_of_site(&p.steps, e.site).unwrap_or(0);
    let (steps, done) = wrap_outermost_loop(
        std::mem::take(&mut p.steps),
        e.site,
        Step::EnterData {
            site: enter_site,
            device,
            maps: vec![MapClause {
                var,
                map_type: enter_type,
                always: false,
            }],
        },
        Step::ExitData {
            site: exit_site,
            device,
            maps: vec![MapClause {
                var,
                map_type: exit_type,
                always: false,
            }],
        },
    );
    p.steps = steps;
    if done {
        Ok(())
    } else {
        Err(format!(
            "site {:#x} is not inside a loop; cannot split",
            e.site
        ))
    }
}

fn device_of_site(steps: &[Step], site: u64) -> Option<u32> {
    for s in steps {
        match s {
            Step::DataRegion {
                site: st,
                device,
                body,
                ..
            } => {
                if *st == site {
                    return Some(*device);
                }
                if let Some(d) = device_of_site(body, site) {
                    return Some(d);
                }
            }
            Step::EnterData {
                site: st, device, ..
            }
            | Step::ExitData {
                site: st, device, ..
            }
            | Step::UpdateTo {
                site: st, device, ..
            }
            | Step::UpdateFrom {
                site: st, device, ..
            }
            | Step::Target {
                site: st, device, ..
            } => {
                if *st == site {
                    return Some(*device);
                }
            }
            Step::Loop { body, .. } => {
                if let Some(d) = device_of_site(body, site) {
                    return Some(d);
                }
            }
            Step::HostWrite { .. } => {}
        }
    }
    None
}

/// Insert `before`/`after` around the outermost loop containing `site`.
fn wrap_outermost_loop(
    steps: Vec<Step>,
    site: u64,
    before: Step,
    after: Step,
) -> (Vec<Step>, bool) {
    let mut out = Vec::with_capacity(steps.len());
    let mut done = false;
    for s in steps {
        if done {
            out.push(s);
            continue;
        }
        match s {
            Step::Loop { trip, body } if contains_site(&body, site) => {
                out.push(before.clone());
                out.push(Step::Loop { trip, body });
                out.push(after.clone());
                done = true;
            }
            Step::DataRegion {
                site: st,
                device,
                maps,
                body,
            } => {
                let (nb, d) = wrap_outermost_loop(body, site, before.clone(), after.clone());
                done = d;
                out.push(Step::DataRegion {
                    site: st,
                    device,
                    maps,
                    body: nb,
                });
            }
            other => out.push(other),
        }
    }
    (out, done)
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// The before/after dynamic totals of an applied plan.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PlanOutcome {
    /// Dynamic finding instances before the rewrite.
    pub before_total: u64,
    /// After it.
    pub after_total: u64,
}

impl PlanOutcome {
    /// Did the rewrite eliminate every finding?
    pub fn zero_after(&self) -> bool {
        self.after_total == 0
    }

    /// Did it at least not regress?
    pub fn non_increasing(&self) -> bool {
        self.after_total <= self.before_total
    }
}

/// Apply `plan` to `p`, lower and run both versions, and compare the
/// dynamic totals. Returns the outcome and the rewritten program.
pub fn validate_plan(
    p: &MappingProgram,
    plan: &PatchPlan,
) -> Result<(PlanOutcome, MappingProgram), String> {
    let rewritten = apply_plan(p, plan)?;
    let before = lower_and_run(p);
    let after = lower_and_run(&rewritten);
    Ok((
        PlanOutcome {
            before_total: before.counts.total() as u64,
            after_total: after.counts.total() as u64,
        },
        rewritten,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::ir::{Init, KernelSpec, MappingProgram, Step, TripCount, VarDecl};
    use crate::programs::{babelstream, bfs, xsbench};
    use std::collections::BTreeMap;

    #[test]
    fn babelstream_plan_drops_findings_to_zero() {
        let p = babelstream(4, 32);
        let report = analyze(&p);
        let plan = emit_plan(&p, &report);
        assert!(
            plan.edits
                .iter()
                .any(|e| e.action == RewriteAction::HoistRegionOutOfLoop),
            "{}",
            plan.render()
        );
        assert!(
            plan.edits
                .iter()
                .any(|e| e.action == RewriteAction::SplitMapToEnterExit),
            "{}",
            plan.render()
        );
        let (outcome, rewritten) = validate_plan(&p, &plan).expect("plan applies");
        assert!(outcome.before_total > 0);
        assert!(outcome.zero_after(), "{outcome:?}\n{}", plan.render());
        // The rewritten program is also statically clean.
        let after = analyze(&rewritten);
        assert!(after.rows.is_empty(), "{after:?}");
    }

    #[test]
    fn xsbench_plan_downgrades_tofrom_and_zeroes() {
        let p = xsbench(64);
        let report = analyze(&p);
        let plan = emit_plan(&p, &report);
        let downgrades: Vec<_> = plan
            .edits
            .iter()
            .filter(|e| e.action == RewriteAction::DowngradeToFromToTo)
            .collect();
        assert_eq!(downgrades.len(), 2, "{}", plan.render());
        let (outcome, _) = validate_plan(&p, &plan).expect("plan applies");
        assert!(outcome.zero_after(), "{outcome:?}");
    }

    #[test]
    fn bfs_certain_cross_var_duplicate_is_unremediable_and_plan_non_increasing() {
        let p = bfs(16, 3);
        let report = analyze(&p);
        let plan = emit_plan(&p, &report);
        assert!(!plan.unremediable.is_empty(), "{}", plan.render());
        let (outcome, _) = validate_plan(&p, &plan).expect("plan applies");
        assert!(outcome.non_increasing(), "{outcome:?}");
    }

    #[test]
    fn dead_alloc_clause_is_dropped() {
        let p = MappingProgram {
            name: "dead".into(),
            num_devices: 1,
            vars: vec![
                VarDecl {
                    name: "x".into(),
                    bytes: 16,
                    init: Init::Byte(1),
                },
                VarDecl {
                    name: "y".into(),
                    bytes: 16,
                    init: Init::Byte(2),
                },
            ],
            steps: vec![
                Step::DataRegion {
                    site: 1,
                    device: 0,
                    maps: vec![MapClause::alloc(VarRef(1))],
                    body: vec![],
                },
                Step::Target {
                    site: 2,
                    device: 0,
                    maps: vec![],
                    kernel: KernelSpec {
                        name: "k".into(),
                        reads: vec![VarRef(0)],
                        writes: vec![crate::ir::KernelWrite::unique(VarRef(0))],
                    },
                },
            ],
            site_labels: BTreeMap::new(),
        };
        let report = analyze(&p);
        let plan = emit_plan(&p, &report);
        assert!(
            plan.edits
                .iter()
                .any(|e| e.action == RewriteAction::DropClause),
            "{}",
            plan.render()
        );
        let (outcome, _) = validate_plan(&p, &plan).expect("plan applies");
        assert_eq!(outcome.before_total, 1, "{outcome:?}");
        assert!(outcome.zero_after(), "{outcome:?}");
    }

    #[test]
    fn stale_plan_fails_to_apply() {
        let p = xsbench(64);
        let report = analyze(&p);
        let plan = emit_plan(&p, &report);
        let other = bfs(16, 3);
        assert!(apply_plan(&other, &plan).is_err());
    }

    #[test]
    fn unused_loop_trip_is_static_shape() {
        // Loop-free program: no loop rules fire, plan may be empty but
        // must not error.
        let p = MappingProgram {
            name: "flat".into(),
            num_devices: 1,
            vars: vec![VarDecl {
                name: "x".into(),
                bytes: 16,
                init: Init::Byte(1),
            }],
            steps: vec![Step::Loop {
                trip: TripCount::Static(1),
                body: vec![Step::Target {
                    site: 7,
                    device: 0,
                    maps: vec![],
                    kernel: KernelSpec {
                        name: "k".into(),
                        reads: vec![VarRef(0)],
                        writes: vec![],
                    },
                }],
            }],
            site_labels: BTreeMap::new(),
        };
        let report = analyze(&p);
        let plan = emit_plan(&p, &report);
        let (outcome, _) = validate_plan(&p, &plan).expect("plan applies");
        assert!(outcome.non_increasing());
    }
}
