//! The static analyses: five exact analogues of the §5 dynamic
//! detectors, run over the abstract event stream instead of a trace.
//!
//! Each analogue reproduces its dynamic counterpart's structure —
//! grouping keys, FIFO pairing, candidate clearing — with content
//! *tokens* standing in for payload hashes and stream position standing
//! in for timestamps (the simulated clock strictly advances between the
//! synchronous directives the IR models, so interval logic degenerates
//! to position comparisons). On top of the dynamic logic, every flagged
//! instance carries a certainty bit derived from the abstract events'
//! taint tracking; a whole row is [`Certainty::Certain`] only when at
//! least one of its instances provably occurs in *every* execution.

use crate::exec::{abstract_run, AbsEvent, AbsOp, AbsOpKind, AbsTrace, Ep, Tok};
use crate::ir::MappingProgram;
use ompdataperf::fleet::FindingKind;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How sure the analyzer is that a predicted finding occurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Certainty {
    /// Occurs in every execution of the program: safe to rewrite on.
    Certain,
    /// Predicted from the symbolic unrolling of data-dependent control
    /// flow; the count (or the finding itself) may vary with input.
    MayDependOnData,
}

/// One predicted finding row, keyed like the dynamic engine's
/// `SiteFinding`: `(codeptr, device, kind)`.
#[derive(Clone, Debug, Serialize)]
pub struct StaticPrediction {
    /// Source site (directive code pointer).
    pub codeptr: u64,
    /// Raw device number the waste lands on (-1 = host).
    pub device: i32,
    /// Inefficiency class.
    pub kind: FindingKind,
    /// Row certainty: `Certain` iff at least one instance is certain.
    pub certainty: Certainty,
    /// Predicted instances at this site (for `MayDependOnData` rows this
    /// reflects the symbolic unrolling, not any concrete input).
    pub count: u64,
    /// Instances that provably occur in every execution.
    pub certain_count: u64,
    /// Predicted wasted bytes across all instances.
    pub bytes: u64,
    /// Variables involved, by name, sorted.
    pub vars: Vec<String>,
}

/// The static analyzer's output for one program.
#[derive(Clone, Debug, Serialize)]
pub struct StaticReport {
    /// Program name.
    pub program: String,
    /// Predictions ascending by `(codeptr, device, kind)`.
    pub rows: Vec<StaticPrediction>,
    /// Mirrored runtime warnings the symbolic execution hit
    /// (release/delete/update of absent data).
    pub warnings: u32,
}

impl StaticReport {
    /// Rows tagged [`Certainty::Certain`].
    pub fn certain_rows(&self) -> impl Iterator<Item = &StaticPrediction> {
        self.rows
            .iter()
            .filter(|r| r.certainty == Certainty::Certain)
    }

    /// Deterministic pretty-JSON rendering (counts only, byte-stable).
    pub fn to_json(&self) -> String {
        // Plain serializable counts; cannot fail.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// One flagged instance, before row aggregation.
struct Flag {
    codeptr: u64,
    device: i32,
    kind: FindingKind,
    bytes: u64,
    certain: bool,
    var: usize,
}

/// Run the full static analysis: symbolic execution, then the five
/// detector analogues, aggregated into `(codeptr, device, kind)` rows.
pub fn analyze(p: &MappingProgram) -> StaticReport {
    let trace = abstract_run(p);
    let mut flags = Vec::new();
    duplicate_transfers(&trace, &mut flags);
    round_trips(&trace, &mut flags);
    repeated_allocs(&trace, &mut flags);
    unused_allocs(p, &trace, &mut flags);
    unused_transfers(p, &trace, &mut flags);

    // (codeptr, device, kind) → (count, certain_count, bytes, var names).
    type RowAgg = BTreeMap<(u64, i32, FindingKind), (u64, u64, u64, BTreeSet<String>)>;
    let mut rows: RowAgg = BTreeMap::new();
    for f in flags {
        let e = rows
            .entry((f.codeptr, f.device, f.kind))
            .or_insert((0, 0, 0, BTreeSet::new()));
        e.0 += 1;
        if f.certain {
            e.1 += 1;
        }
        e.2 += f.bytes;
        e.3.insert(p.vars[f.var].name.clone());
    }
    StaticReport {
        program: p.name.clone(),
        rows: rows
            .into_iter()
            .map(
                |((codeptr, device, kind), (count, certain_count, bytes, vars))| StaticPrediction {
                    codeptr,
                    device,
                    kind,
                    certainty: if certain_count > 0 {
                        Certainty::Certain
                    } else {
                        Certainty::MayDependOnData
                    },
                    count,
                    certain_count,
                    bytes,
                    vars: vars.into_iter().collect(),
                },
            )
            .collect(),
        warnings: trace.warnings,
    }
}

fn transfers(trace: &AbsTrace) -> impl Iterator<Item = &AbsOp> {
    trace.events.iter().filter_map(|e| match e {
        AbsEvent::Op(op) if op.is_transfer() => Some(op),
        _ => None,
    })
}

/// Tokens carried only by certain transfers. A round trip may be tagged
/// `Certain` only for such tokens: if any `May` transfer shares the
/// token, the dynamic FIFO pairing could resolve differently across
/// inputs.
fn stable_tokens(trace: &AbsTrace) -> BTreeMap<Tok, bool> {
    let mut stable: BTreeMap<Tok, bool> = BTreeMap::new();
    for op in transfers(trace) {
        if let Some(tok) = op.tok {
            let e = stable.entry(tok).or_insert(true);
            *e &= op.certain;
        }
    }
    stable
}

/// Algorithm 1 analogue: group transfers by `(token, dest)`; every
/// event after a group's first is a duplicate.
fn duplicate_transfers(trace: &AbsTrace, flags: &mut Vec<Flag>) {
    let mut groups: BTreeMap<(Tok, Ep), Vec<&AbsOp>> = BTreeMap::new();
    for op in transfers(trace) {
        if let Some(tok) = op.tok {
            groups.entry((tok, op.dest())).or_default().push(op);
        }
    }
    for ((_, dest), events) in groups {
        if events.len() < 2 {
            continue;
        }
        for (i, e) in events.iter().enumerate().skip(1) {
            // A certain duplicate needs a certain *earlier* delivery:
            // the necessary first transfer must exist in every run.
            let earlier_certain = events[..i].iter().any(|p| p.certain);
            flags.push(Flag {
                codeptr: e.codeptr,
                device: dest.raw(),
                kind: FindingKind::DuplicateTransfer,
                bytes: e.bytes,
                certain: e.certain && earlier_certain,
                var: e.var,
            });
        }
    }
}

/// Algorithm 2 analogue: the exact two-pass reception-queue pairing,
/// with tokens for hashes and endpoints for device ids.
fn round_trips(trace: &AbsTrace, flags: &mut Vec<Flag>) {
    let stable = stable_tokens(trace);
    let mut received: BTreeMap<(Tok, Ep), VecDeque<&AbsOp>> = BTreeMap::new();
    for op in transfers(trace) {
        if let Some(tok) = op.tok {
            received.entry((tok, op.dest())).or_default().push_back(op);
        }
    }
    for tx in transfers(trace) {
        let Some(tok) = tx.tok else { continue };
        let Some(rx) = received
            .get(&(tok, tx.src()))
            .and_then(|q| q.front().copied())
        else {
            continue;
        };
        // The trip is attributed to the reception leg, wasting both
        // legs' bytes on the outbound destination.
        flags.push(Flag {
            codeptr: rx.codeptr,
            device: tx.dest().raw(),
            kind: FindingKind::RoundTrip,
            bytes: tx.bytes + rx.bytes,
            certain: tx.certain && rx.certain && stable.get(&tok).copied().unwrap_or(false),
            var: rx.var,
        });
        if let Some(q) = received.get_mut(&(tok, tx.dest())) {
            q.pop_front();
        }
    }
}

/// An alloc/delete pair of the abstract stream, by event index.
struct AbsPair<'a> {
    alloc: &'a AbsOp,
    alloc_pos: usize,
    delete: Option<&'a AbsOp>,
    delete_pos: usize,
}

impl AbsPair<'_> {
    fn certain(&self) -> bool {
        self.alloc.certain && self.delete.is_none_or(|d| d.certain)
    }
}

/// Pair allocs with their deletes per `(device, var)`. In the abstract
/// stream these strictly alternate (present-table reference counting),
/// mirroring the dynamic pairing by `(dest_device, dest_addr)`. Leaked
/// allocations get an open lifetime to stream end.
fn alloc_pairs(trace: &AbsTrace) -> Vec<AbsPair<'_>> {
    let mut open: BTreeMap<(u32, usize), usize> = BTreeMap::new();
    let mut pairs: Vec<AbsPair<'_>> = Vec::new();
    for (pos, e) in trace.events.iter().enumerate() {
        let AbsEvent::Op(op) = e else { continue };
        match op.kind {
            AbsOpKind::Alloc => {
                open.insert((op.device, op.var), pairs.len());
                pairs.push(AbsPair {
                    alloc: op,
                    alloc_pos: pos,
                    delete: None,
                    delete_pos: usize::MAX,
                });
            }
            AbsOpKind::Delete => {
                if let Some(ix) = open.remove(&(op.device, op.var)) {
                    pairs[ix].delete = Some(op);
                    pairs[ix].delete_pos = pos;
                }
            }
            _ => {}
        }
    }
    pairs
}

/// Algorithm 3 analogue: alloc/delete pairs grouped by
/// `(var, device, bytes)` (the var stands in for the host address);
/// every pair after a group's first is a repeat.
fn repeated_allocs(trace: &AbsTrace, flags: &mut Vec<Flag>) {
    let pairs = alloc_pairs(trace);
    let mut groups: BTreeMap<(usize, u32, u64), Vec<&AbsPair<'_>>> = BTreeMap::new();
    for p in &pairs {
        groups
            .entry((p.alloc.var, p.alloc.device, p.alloc.bytes))
            .or_default()
            .push(p);
    }
    for (_, group) in groups {
        if group.len() < 2 {
            continue;
        }
        for (i, p) in group.iter().enumerate().skip(1) {
            let earlier_certain = group[..i].iter().any(|q| q.certain());
            flags.push(Flag {
                codeptr: p.alloc.codeptr,
                device: p.alloc.device as i32,
                kind: FindingKind::RepeatedAlloc,
                bytes: p.alloc.bytes,
                certain: p.certain() && earlier_certain,
                var: p.alloc.var,
            });
        }
    }
}

/// Positions of kernel executions per device.
fn kernel_positions(p: &MappingProgram, trace: &AbsTrace) -> Vec<Vec<usize>> {
    let mut per_dev: Vec<Vec<usize>> = vec![Vec::new(); p.num_devices as usize];
    for (pos, e) in trace.events.iter().enumerate() {
        if let AbsEvent::Kernel(k) = e {
            per_dev[k.device as usize].push(pos);
        }
    }
    per_dev
}

/// Algorithm 4 analogue: an allocation is unused when no kernel on its
/// device executes inside its lifetime (position interval).
fn unused_allocs(p: &MappingProgram, trace: &AbsTrace, flags: &mut Vec<Flag>) {
    let kernels = kernel_positions(p, trace);
    for pair in alloc_pairs(trace) {
        let dev = pair.alloc.device as usize;
        let used = kernels[dev]
            .iter()
            .any(|&k| k > pair.alloc_pos && k < pair.delete_pos);
        if !used {
            flags.push(Flag {
                codeptr: pair.alloc.codeptr,
                device: pair.alloc.device as i32,
                kind: FindingKind::UnusedAlloc,
                bytes: pair.alloc.bytes,
                certain: pair.certain(),
                var: pair.alloc.var,
            });
        }
    }
}

/// Algorithm 5 analogue: per device, walk device-bound transfers in
/// order; kernels clear the candidate map; a transfer re-sending a
/// variable with no intervening kernel proves the candidate unused, and
/// transfers after the device's last kernel are unused outright.
fn unused_transfers(p: &MappingProgram, trace: &AbsTrace, flags: &mut Vec<Flag>) {
    let kernels = kernel_positions(p, trace);
    for (dev, tgt) in kernels.iter().enumerate() {
        let tx_events: Vec<(usize, &AbsOp)> = trace
            .events
            .iter()
            .enumerate()
            .filter_map(|(pos, e)| match e {
                AbsEvent::Op(op) if op.kind == AbsOpKind::H2D && op.device as usize == dev => {
                    Some((pos, op))
                }
                _ => None,
            })
            .collect();
        let mut tgt_idx = 0usize;
        // candidates: var → the last transfer writing it to the device.
        let mut candidates: BTreeMap<usize, &AbsOp> = BTreeMap::new();
        for (pos, tx) in tx_events {
            while tgt_idx < tgt.len() && tgt[tgt_idx] < pos {
                tgt_idx += 1;
                candidates.clear();
            }
            if tgt_idx == tgt.len() {
                flags.push(Flag {
                    codeptr: tx.codeptr,
                    device: dev as i32,
                    kind: FindingKind::UnusedTransfer,
                    bytes: tx.bytes,
                    certain: tx.certain,
                    var: tx.var,
                });
            } else {
                if let Some(cand) = candidates.get(&tx.var) {
                    flags.push(Flag {
                        codeptr: cand.codeptr,
                        device: dev as i32,
                        kind: FindingKind::UnusedTransfer,
                        bytes: cand.bytes,
                        certain: cand.certain && tx.certain,
                        var: cand.var,
                    });
                }
                candidates.insert(tx.var, tx);
            }
        }
    }
}

/// Render a report as aligned text with site labels.
pub fn render_report(p: &MappingProgram, report: &StaticReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "static analysis: {}", report.program);
    if report.rows.is_empty() {
        let _ = writeln!(out, "  no predicted findings");
        return out;
    }
    for r in &report.rows {
        let tag = match r.certainty {
            Certainty::Certain => "certain",
            Certainty::MayDependOnData => "may    ",
        };
        let _ = writeln!(
            out,
            "  [{}] {} dev{:>2} @ {:<24} count {} (certain {}) bytes {}  vars: {}",
            tag,
            r.kind.code(),
            r.device,
            p.site_label(r.codeptr),
            r.count,
            r.certain_count,
            r.bytes,
            r.vars.join(", "),
        );
    }
    if report.warnings > 0 {
        let _ = writeln!(out, "  warnings: {}", report.warnings);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Init, KernelSpec, KernelWrite, MapClause, Step, TripCount, VarDecl, VarRef};

    fn two_var_prog(steps: Vec<Step>) -> MappingProgram {
        MappingProgram {
            name: "t".into(),
            num_devices: 1,
            vars: vec![
                VarDecl {
                    name: "a".into(),
                    bytes: 32,
                    init: Init::f64(1.5),
                },
                VarDecl {
                    name: "b".into(),
                    bytes: 32,
                    init: Init::f64(2.5),
                },
            ],
            steps,
            site_labels: std::collections::BTreeMap::new(),
        }
    }

    fn kernel_reading(v: VarRef) -> KernelSpec {
        KernelSpec {
            name: "k".into(),
            reads: vec![v],
            writes: vec![],
        }
    }

    #[test]
    fn static_loop_realloc_is_certain_dd_and_ra() {
        // for (3x) { target map(tofrom: a) read(a) } — re-sends identical
        // content and re-allocates each iteration.
        let p = two_var_prog(vec![Step::Loop {
            trip: TripCount::Static(3),
            body: vec![Step::Target {
                site: 0x10,
                device: 0,
                maps: vec![MapClause::tofrom(VarRef(0))],
                kernel: kernel_reading(VarRef(0)),
            }],
        }]);
        let r = analyze(&p);
        let dd = r
            .rows
            .iter()
            .find(|x| x.kind == FindingKind::DuplicateTransfer && x.device == 0)
            .expect("DD row");
        assert_eq!(dd.certainty, Certainty::Certain);
        assert_eq!(dd.count, 2);
        assert_eq!(dd.certain_count, 2);
        let ra = r
            .rows
            .iter()
            .find(|x| x.kind == FindingKind::RepeatedAlloc)
            .expect("RA row");
        assert_eq!(ra.count, 2);
        assert_eq!(ra.certainty, Certainty::Certain);
        // The unmodified data also round-trips: D2H returns what H2D sent.
        assert!(r.rows.iter().any(|x| x.kind == FindingKind::RoundTrip));
    }

    #[test]
    fn kernel_modified_data_does_not_round_trip() {
        let p = two_var_prog(vec![Step::Target {
            site: 0x10,
            device: 0,
            maps: vec![MapClause::tofrom(VarRef(0))],
            kernel: KernelSpec {
                name: "k".into(),
                reads: vec![VarRef(0)],
                writes: vec![KernelWrite::unique(VarRef(0))],
            },
        }]);
        let r = analyze(&p);
        assert!(!r.rows.iter().any(|x| x.kind == FindingKind::RoundTrip));
    }

    #[test]
    fn alloc_without_kernel_is_unused() {
        let p = two_var_prog(vec![Step::DataRegion {
            site: 0x10,
            device: 0,
            maps: vec![MapClause::alloc(VarRef(0))],
            body: vec![],
        }]);
        let r = analyze(&p);
        let ua = r
            .rows
            .iter()
            .find(|x| x.kind == FindingKind::UnusedAlloc)
            .expect("UA row");
        assert_eq!(ua.certainty, Certainty::Certain);
        assert_eq!(ua.count, 1);
    }

    #[test]
    fn update_after_last_kernel_is_unused_transfer() {
        let p = two_var_prog(vec![Step::DataRegion {
            site: 0x10,
            device: 0,
            maps: vec![MapClause::to(VarRef(0))],
            body: vec![
                Step::Target {
                    site: 0x20,
                    device: 0,
                    maps: vec![],
                    kernel: kernel_reading(VarRef(0)),
                },
                Step::HostWrite {
                    var: VarRef(0),
                    content: crate::ir::WriteContent::Byte(3),
                },
                Step::UpdateTo {
                    site: 0x30,
                    device: 0,
                    vars: vec![VarRef(0)],
                },
            ],
        }]);
        let r = analyze(&p);
        let ut = r
            .rows
            .iter()
            .find(|x| x.kind == FindingKind::UnusedTransfer)
            .expect("UT row");
        assert_eq!(ut.codeptr, 0x30);
        assert_eq!(ut.certainty, Certainty::Certain);
    }

    #[test]
    fn data_dependent_loop_rows_are_may() {
        // bfs-shaped: transfers inside a data-dependent loop produce
        // findings, but none may claim certainty.
        let p = two_var_prog(vec![Step::Loop {
            trip: TripCount::DataDependent { executed: 2 },
            body: vec![Step::Target {
                site: 0x10,
                device: 0,
                maps: vec![MapClause::tofrom(VarRef(0))],
                kernel: kernel_reading(VarRef(0)),
            }],
        }]);
        let r = analyze(&p);
        assert!(!r.rows.is_empty());
        assert!(r.certain_rows().next().is_none(), "{:?}", r.rows);
    }
}
