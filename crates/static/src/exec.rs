//! Abstract execution of a [`MappingProgram`]: the static mirror of
//! `odp_sim::Runtime`'s present-table semantics.
//!
//! The executor walks the step tree exactly the way the runtime
//! executes the lowered program — reference-counted present tables per
//! device, enter/exit clause ordering, implicit `tofrom` maps — but
//! with *content tokens* in place of byte buffers: a token names a
//! provably-known byte pattern ([`Pat::Init`]) or a unique kernel
//! result ([`Pat::Uniq`]). Token equality implies byte equality in any
//! concrete execution, which is what keeps `Certain` predictions sound.
//!
//! Data-dependent loops are unrolled a fixed number of times with every
//! emitted event tagged uncertain, then *probed*: the loop body is
//! re-run from the pre-loop state for 1 and for 4 iterations, and any
//! variable or present-table entry on which the three final states
//! disagree is tainted — its post-loop value depends on the iteration
//! count, so nothing downstream may claim certainty from it.

use crate::ir::{Fires, Init, MapClause, MappingProgram, Step, TripCount, VarRef, WriteContent};
use odp_model::MapType;
use std::collections::{BTreeMap, BTreeSet};

/// How many iterations a data-dependent loop is symbolically unrolled.
/// Three is the smallest count that exhibits "repeats every iteration"
/// patterns (two duplicates, not one coincidence).
pub const DATA_DEPENDENT_UNROLL: u32 = 3;

/// A content pattern: the analyzer's stand-in for a buffer image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pat {
    /// A deterministic initial-image pattern (normalized).
    Init(Init),
    /// The result of one specific kernel (or host) write — unequal to
    /// every other token by construction.
    Uniq(u64),
}

/// A content token: pattern plus buffer length. Equal tokens are
/// provably byte-identical buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Tok {
    /// The byte pattern.
    pub pat: Pat,
    /// Buffer length in bytes.
    pub len: u64,
}

/// One endpoint of a transfer, mirroring `odp_model::DeviceId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ep {
    /// The host.
    Host,
    /// Target device by index.
    Dev(u32),
}

impl Ep {
    /// Raw device number as findings report it (-1 = host).
    pub fn raw(self) -> i32 {
        match self {
            Ep::Host => -1,
            Ep::Dev(d) => d as i32,
        }
    }
}

/// Kind of an abstract data operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsOpKind {
    /// Host-to-device transfer.
    H2D,
    /// Device-to-host transfer.
    D2H,
    /// Device allocation.
    Alloc,
    /// Device deallocation.
    Delete,
}

/// An abstract data-op event.
#[derive(Clone, Debug)]
pub struct AbsOp {
    /// Operation kind.
    pub kind: AbsOpKind,
    /// The variable moved/allocated.
    pub var: usize,
    /// The target device involved.
    pub device: u32,
    /// Attribution site.
    pub codeptr: u64,
    /// Payload/allocation size.
    pub bytes: u64,
    /// Content carried (transfers only).
    pub tok: Option<Tok>,
    /// True when the event provably occurs with exactly this content in
    /// every execution of the program.
    pub certain: bool,
}

impl AbsOp {
    /// Transfer source endpoint.
    pub fn src(&self) -> Ep {
        match self.kind {
            AbsOpKind::H2D => Ep::Host,
            AbsOpKind::D2H => Ep::Dev(self.device),
            AbsOpKind::Alloc | AbsOpKind::Delete => Ep::Dev(self.device),
        }
    }

    /// Transfer destination endpoint.
    pub fn dest(&self) -> Ep {
        match self.kind {
            AbsOpKind::H2D => Ep::Dev(self.device),
            AbsOpKind::D2H => Ep::Host,
            AbsOpKind::Alloc | AbsOpKind::Delete => Ep::Dev(self.device),
        }
    }

    /// Is this a transfer (vs alloc/delete)?
    pub fn is_transfer(&self) -> bool {
        matches!(self.kind, AbsOpKind::H2D | AbsOpKind::D2H)
    }
}

/// An abstract kernel execution.
#[derive(Clone, Debug)]
pub struct AbsKernel {
    /// Executing device.
    pub device: u32,
    /// Attribution site.
    pub codeptr: u64,
    /// True when the execution occurs in every run (not inside a
    /// data-dependent loop).
    pub certain: bool,
}

/// One event of the abstract stream, in program (= chronological)
/// order. The simulated clock strictly advances between directives, so
/// for the synchronous directives the IR models, stream order *is*
/// timestamp order — Algorithms 4/5's interval logic reduces to
/// position comparisons.
#[derive(Clone, Debug)]
pub enum AbsEvent {
    /// A data operation.
    Op(AbsOp),
    /// A kernel execution.
    Kernel(AbsKernel),
}

/// The abstract event stream of one symbolic execution.
#[derive(Clone, Debug, Default)]
pub struct AbsTrace {
    /// Events in program order.
    pub events: Vec<AbsEvent>,
    /// Mirrored runtime warnings (release/delete/update of absent
    /// data) encountered during symbolic execution.
    pub warnings: u32,
}

#[derive(Clone, PartialEq, Eq)]
struct VarContent {
    tok: Tok,
    /// Content depends on a data-dependent iteration count.
    tainted: bool,
}

#[derive(Clone, PartialEq, Eq)]
struct Entry {
    refcount: u32,
    tok: Tok,
    tainted: bool,
}

#[derive(Clone)]
struct State {
    host: Vec<VarContent>,
    dev: Vec<BTreeMap<usize, Entry>>,
    /// (device, var) pairs whose *residency* (presence/refcount) is
    /// iteration-count-dependent: every occurrence decision that reads
    /// the present table for them is uncertain. Monotone.
    res_taint: BTreeSet<(u32, usize)>,
    uniq: u64,
}

#[derive(Clone, Copy)]
struct LoopFrame {
    data_dependent: bool,
    is_last: bool,
}

struct Exec<'p> {
    p: &'p MappingProgram,
    st: State,
    events: Vec<AbsEvent>,
    emit: bool,
    may_depth: u32,
    loop_stack: Vec<LoopFrame>,
    warnings: u32,
}

/// Symbolically execute `p`, producing the abstract event stream the
/// detector analogues run over. `p` must have passed
/// [`MappingProgram::validate`].
pub fn abstract_run(p: &MappingProgram) -> AbsTrace {
    let host = p
        .vars
        .iter()
        .map(|v| VarContent {
            tok: Tok {
                pat: Pat::Init(v.init.normalize()),
                len: v.bytes as u64,
            },
            tainted: false,
        })
        .collect();
    let mut e = Exec {
        p,
        st: State {
            host,
            dev: vec![BTreeMap::new(); p.num_devices as usize],
            res_taint: BTreeSet::new(),
            uniq: 0,
        },
        events: Vec::new(),
        emit: true,
        may_depth: 0,
        loop_stack: Vec::new(),
        warnings: 0,
    };
    e.steps(&p.steps);
    AbsTrace {
        events: e.events,
        warnings: e.warnings,
    }
}

impl<'p> Exec<'p> {
    fn steps(&mut self, steps: &[Step]) {
        for s in steps {
            self.step(s);
        }
    }

    fn step(&mut self, s: &Step) {
        match s {
            Step::DataRegion {
                site,
                device,
                maps,
                body,
            } => {
                for m in maps {
                    self.map_enter(*device, *m, *site);
                }
                self.steps(body);
                for m in maps.iter().rev() {
                    self.map_exit(*device, *m, *site);
                }
            }
            Step::EnterData { site, device, maps } => {
                for m in maps {
                    self.map_enter(*device, *m, *site);
                }
            }
            Step::ExitData { site, device, maps } => {
                // `target exit data` applies clauses in source order
                // (only structured regions unwind in reverse).
                for m in maps {
                    self.map_exit(*device, *m, *site);
                }
            }
            Step::UpdateTo { site, device, vars } => {
                for &v in vars {
                    if self.st.dev[*device as usize].contains_key(&v.0) {
                        self.transfer(AbsOpKind::H2D, *device, v, *site);
                    } else {
                        self.warnings += 1;
                    }
                }
            }
            Step::UpdateFrom { site, device, vars } => {
                for &v in vars {
                    if self.st.dev[*device as usize].contains_key(&v.0) {
                        self.transfer(AbsOpKind::D2H, *device, v, *site);
                    } else {
                        self.warnings += 1;
                    }
                }
            }
            Step::Target {
                site,
                device,
                maps,
                kernel,
            } => {
                let mut effective: Vec<MapClause> = maps.clone();
                for v in kernel.referenced() {
                    if !effective.iter().any(|m| m.var == v) {
                        effective.push(MapClause::tofrom(v));
                    }
                }
                for m in &effective {
                    self.map_enter(*device, *m, *site);
                }
                if self.emit {
                    self.events.push(AbsEvent::Kernel(AbsKernel {
                        device: *device,
                        codeptr: *site,
                        certain: self.may_depth == 0,
                    }));
                }
                let is_last = self.innermost_dd_is_last();
                for w in &kernel.writes {
                    if w.fires == Fires::OnAllButLastIteration && is_last {
                        continue;
                    }
                    let len = self.p.vars[w.var.0].bytes as u64;
                    let tok = self.content_tok(w.content, len);
                    // The effective map guarantees presence; content is
                    // now exactly the written token.
                    if let Some(e) = self.st.dev[*device as usize].get_mut(&w.var.0) {
                        e.tok = tok;
                        e.tainted = false;
                    }
                }
                for m in effective.iter().rev() {
                    self.map_exit(*device, *m, *site);
                }
            }
            Step::HostWrite { var, content } => {
                let len = self.p.vars[var.0].bytes as u64;
                let tok = self.content_tok(*content, len);
                self.st.host[var.0] = VarContent {
                    tok,
                    tainted: false,
                };
            }
            Step::Loop {
                trip: TripCount::Static(n),
                body,
            } => {
                for _ in 0..*n {
                    self.loop_stack.push(LoopFrame {
                        data_dependent: false,
                        is_last: false,
                    });
                    self.steps(body);
                    self.loop_stack.pop();
                }
            }
            Step::Loop {
                trip: TripCount::DataDependent { .. },
                body,
            } => {
                self.data_dependent(body);
            }
        }
    }

    fn data_dependent(&mut self, body: &[Step]) {
        let pre = self.st.clone();
        self.may_depth += 1;
        for i in 0..DATA_DEPENDENT_UNROLL {
            self.loop_stack.push(LoopFrame {
                data_dependent: true,
                is_last: i + 1 == DATA_DEPENDENT_UNROLL,
            });
            self.steps(body);
            self.loop_stack.pop();
        }
        self.may_depth -= 1;
        // Probe: the same loop run for 1 and 4 iterations from the same
        // pre-state. State the three runs agree on is iteration-count
        // independent and keeps its certainty; the rest is tainted.
        let one = self.probe(&pre, body, 1);
        let four = self.probe(&pre, body, 4);
        self.taint_divergent(&one, &four);
    }

    fn probe(&self, pre: &State, body: &[Step], iters: u32) -> State {
        let mut sub = Exec {
            p: self.p,
            st: pre.clone(),
            events: Vec::new(),
            emit: false,
            may_depth: self.may_depth + 1,
            loop_stack: self.loop_stack.clone(),
            warnings: 0,
        };
        for i in 0..iters {
            sub.loop_stack.push(LoopFrame {
                data_dependent: true,
                is_last: i + 1 == iters,
            });
            sub.steps(body);
            sub.loop_stack.pop();
        }
        sub.st
    }

    fn taint_divergent(&mut self, one: &State, four: &State) {
        for v in 0..self.p.vars.len() {
            if one.host[v] != self.st.host[v] || four.host[v] != self.st.host[v] {
                self.st.host[v].tainted = true;
            }
        }
        for d in 0..self.p.num_devices {
            for v in 0..self.p.vars.len() {
                let b = self.st.dev[d as usize].get(&v);
                if one.dev[d as usize].get(&v) != b || four.dev[d as usize].get(&v) != b {
                    self.st.res_taint.insert((d, v));
                    if let Some(e) = self.st.dev[d as usize].get_mut(&v) {
                        e.tainted = true;
                    }
                }
            }
        }
        // Taints discovered by the probes themselves (nested loops)
        // propagate too.
        let extra: Vec<_> = one
            .res_taint
            .iter()
            .chain(four.res_taint.iter())
            .copied()
            .collect();
        self.st.res_taint.extend(extra);
    }

    fn innermost_dd_is_last(&self) -> bool {
        self.loop_stack
            .iter()
            .rev()
            .find(|f| f.data_dependent)
            .map(|f| f.is_last)
            .unwrap_or(false)
    }

    fn content_tok(&mut self, content: WriteContent, len: u64) -> Tok {
        let pat = match content {
            WriteContent::Unique => {
                self.st.uniq += 1;
                Pat::Uniq(self.st.uniq)
            }
            WriteContent::Byte(v) => Pat::Init(Init::Byte(v)),
            WriteContent::U32(v) => Pat::Init(Init::U32Affine { base: v, step: 0 }.normalize()),
        };
        Tok { pat, len }
    }

    // -- mirrored runtime primitives --------------------------------

    fn base_certain(&self, device: u32, var: VarRef) -> bool {
        self.may_depth == 0 && !self.st.res_taint.contains(&(device, var.0))
    }

    fn transfer(&mut self, kind: AbsOpKind, device: u32, var: VarRef, codeptr: u64) {
        let len = self.p.vars[var.0].bytes as u64;
        match kind {
            AbsOpKind::H2D => {
                let host = self.st.host[var.0].clone();
                let certain = self.base_certain(device, var) && !host.tainted;
                if let Some(e) = self.st.dev[device as usize].get_mut(&var.0) {
                    e.tok = host.tok;
                    e.tainted = host.tainted;
                }
                self.push_op(kind, var, device, codeptr, len, Some(host.tok), certain);
            }
            AbsOpKind::D2H => {
                let (tok, tainted) = match self.st.dev[device as usize].get(&var.0) {
                    Some(e) => (e.tok, e.tainted),
                    None => return,
                };
                let res = self.st.res_taint.contains(&(device, var.0));
                let certain = self.may_depth == 0 && !res && !tainted;
                self.st.host[var.0] = VarContent {
                    tok,
                    tainted: tainted || res,
                };
                self.push_op(kind, var, device, codeptr, len, Some(tok), certain);
            }
            AbsOpKind::Alloc | AbsOpKind::Delete => {
                let certain = self.base_certain(device, var);
                self.push_op(kind, var, device, codeptr, len, None, certain);
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // one field per AbsOp column
    fn push_op(
        &mut self,
        kind: AbsOpKind,
        var: VarRef,
        device: u32,
        codeptr: u64,
        bytes: u64,
        tok: Option<Tok>,
        certain: bool,
    ) {
        if self.emit {
            self.events.push(AbsEvent::Op(AbsOp {
                kind,
                var: var.0,
                device,
                codeptr,
                bytes,
                tok,
                certain,
            }));
        }
    }

    fn map_enter(&mut self, device: u32, m: MapClause, codeptr: u64) {
        let var = m.var;
        let present = self.st.dev[device as usize].contains_key(&var.0);
        if present {
            if let Some(e) = self.st.dev[device as usize].get_mut(&var.0) {
                e.refcount += 1;
            }
            if m.always && m.map_type.copies_to_device() {
                self.transfer(AbsOpKind::H2D, device, var, codeptr);
            }
        } else {
            if !m.map_type.allocates() {
                // release/delete of absent data on an enter path.
                self.warnings += 1;
                return;
            }
            self.transfer(AbsOpKind::Alloc, device, var, codeptr);
            let len = self.p.vars[var.0].bytes as u64;
            // Device allocations are zero-filled.
            self.st.dev[device as usize].insert(
                var.0,
                Entry {
                    refcount: 1,
                    tok: Tok {
                        pat: Pat::Init(Init::Byte(0)),
                        len,
                    },
                    tainted: false,
                },
            );
            if m.map_type.copies_to_device() {
                self.transfer(AbsOpKind::H2D, device, var, codeptr);
            }
        }
    }

    fn map_exit(&mut self, device: u32, m: MapClause, codeptr: u64) {
        let var = m.var;
        if m.map_type == MapType::Delete {
            if self.st.dev[device as usize].contains_key(&var.0) {
                self.transfer(AbsOpKind::Delete, device, var, codeptr);
                self.st.dev[device as usize].remove(&var.0);
            } else {
                self.warnings += 1;
            }
            return;
        }
        if !self.st.dev[device as usize].contains_key(&var.0) {
            self.warnings += 1;
            return;
        }
        if m.always && m.map_type.copies_from_device() {
            self.transfer(AbsOpKind::D2H, device, var, codeptr);
        }
        let freed = match self.st.dev[device as usize].get_mut(&var.0) {
            Some(e) => {
                e.refcount -= 1;
                e.refcount == 0
            }
            None => return,
        };
        if freed {
            if m.map_type.copies_from_device() && !m.always {
                self.transfer(AbsOpKind::D2H, device, var, codeptr);
            }
            self.transfer(AbsOpKind::Delete, device, var, codeptr);
            self.st.dev[device as usize].remove(&var.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{KernelSpec, KernelWrite, VarDecl};

    fn prog(steps: Vec<Step>) -> MappingProgram {
        MappingProgram {
            name: "t".into(),
            num_devices: 1,
            vars: vec![
                VarDecl {
                    name: "x".into(),
                    bytes: 16,
                    init: Init::Byte(1),
                },
                VarDecl {
                    name: "y".into(),
                    bytes: 16,
                    init: Init::Byte(2),
                },
            ],
            steps,
            site_labels: BTreeMap::new(),
        }
    }

    fn ops(t: &AbsTrace) -> Vec<&AbsOp> {
        t.events
            .iter()
            .filter_map(|e| match e {
                AbsEvent::Op(o) => Some(o),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn region_alloc_copy_unwind() {
        let p = prog(vec![Step::DataRegion {
            site: 1,
            device: 0,
            maps: vec![MapClause::tofrom(VarRef(0))],
            body: vec![],
        }]);
        p.validate().expect("valid");
        let t = abstract_run(&p);
        let o = ops(&t);
        let kinds: Vec<_> = o.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AbsOpKind::Alloc,
                AbsOpKind::H2D,
                AbsOpKind::D2H,
                AbsOpKind::Delete
            ]
        );
        assert!(o.iter().all(|e| e.certain));
        // Content unchanged on device: D2H carries the same token H2D sent.
        assert_eq!(o[1].tok, o[2].tok);
    }

    #[test]
    fn nested_region_retains_without_transfers() {
        let p = prog(vec![Step::DataRegion {
            site: 1,
            device: 0,
            maps: vec![MapClause::to(VarRef(0))],
            body: vec![Step::DataRegion {
                site: 2,
                device: 0,
                maps: vec![MapClause::tofrom(VarRef(0))],
                body: vec![],
            }],
        }]);
        let t = abstract_run(&p);
        let o = ops(&t);
        // Outer: alloc+H2D ... inner: nothing (retain/release) ... outer: delete.
        assert_eq!(o.len(), 3);
        assert_eq!(o[2].kind, AbsOpKind::Delete);
    }

    #[test]
    fn kernel_write_changes_token() {
        let p = prog(vec![Step::Target {
            site: 1,
            device: 0,
            maps: vec![],
            kernel: KernelSpec {
                name: "k".into(),
                reads: vec![VarRef(0)],
                writes: vec![KernelWrite::unique(VarRef(0))],
            },
        }]);
        let t = abstract_run(&p);
        let o = ops(&t);
        // implicit tofrom: alloc, H2D, (kernel), D2H, delete.
        assert_eq!(o.len(), 4);
        assert_ne!(o[1].tok, o[2].tok, "kernel result is a fresh token");
        assert!(matches!(o[2].tok.unwrap().pat, Pat::Uniq(_)));
    }

    #[test]
    fn data_dependent_loop_events_are_uncertain() {
        let p = prog(vec![Step::Loop {
            trip: TripCount::DataDependent { executed: 2 },
            body: vec![Step::Target {
                site: 1,
                device: 0,
                maps: vec![MapClause::tofrom(VarRef(0))],
                kernel: KernelSpec {
                    name: "k".into(),
                    reads: vec![VarRef(0)],
                    writes: vec![],
                },
            }],
        }]);
        let t = abstract_run(&p);
        assert!(!ops(&t).is_empty());
        assert!(ops(&t).iter().all(|e| !e.certain));
    }

    #[test]
    fn loop_stable_state_stays_certain_after_loop() {
        // The loop only reads x; the post-loop D2H of x is still certain.
        let p = prog(vec![Step::DataRegion {
            site: 1,
            device: 0,
            maps: vec![MapClause::tofrom(VarRef(0))],
            body: vec![Step::Loop {
                trip: TripCount::DataDependent { executed: 2 },
                body: vec![Step::Target {
                    site: 2,
                    device: 0,
                    maps: vec![],
                    kernel: KernelSpec {
                        name: "k".into(),
                        reads: vec![VarRef(0)],
                        writes: vec![KernelWrite::unique(VarRef(1))],
                    },
                }],
            }],
        }]);
        let t = abstract_run(&p);
        let o = ops(&t);
        let d2h_x: Vec<_> = o
            .iter()
            .filter(|e| e.kind == AbsOpKind::D2H && e.var == 0)
            .collect();
        assert_eq!(d2h_x.len(), 1);
        assert!(d2h_x[0].certain, "x untouched by the loop stays certain");
    }

    #[test]
    fn loop_written_state_is_tainted_after_loop() {
        // The loop kernel-writes x with unique content; the post-loop
        // D2H of x depends on the iteration count.
        let p = prog(vec![Step::DataRegion {
            site: 1,
            device: 0,
            maps: vec![MapClause::tofrom(VarRef(0))],
            body: vec![Step::Loop {
                trip: TripCount::DataDependent { executed: 2 },
                body: vec![Step::Target {
                    site: 2,
                    device: 0,
                    maps: vec![],
                    kernel: KernelSpec {
                        name: "k".into(),
                        reads: vec![],
                        writes: vec![KernelWrite::unique(VarRef(0))],
                    },
                }],
            }],
        }]);
        let t = abstract_run(&p);
        let o = ops(&t);
        let d2h_x: Vec<_> = o
            .iter()
            .filter(|e| e.kind == AbsOpKind::D2H && e.var == 0 && e.codeptr == 1)
            .collect();
        assert_eq!(d2h_x.len(), 1);
        assert!(!d2h_x[0].certain, "loop-written content is tainted");
    }

    #[test]
    fn all_but_last_write_leaves_pre_loop_content_possible() {
        // x is written Byte(9) on all but the last iteration; with one
        // iteration the write never fires, so post-loop content is
        // iteration-count dependent → tainted.
        let p = prog(vec![
            Step::Loop {
                trip: TripCount::DataDependent { executed: 3 },
                body: vec![Step::Target {
                    site: 2,
                    device: 0,
                    maps: vec![MapClause::tofrom(VarRef(0))],
                    kernel: KernelSpec {
                        name: "k".into(),
                        reads: vec![],
                        writes: vec![KernelWrite {
                            var: VarRef(0),
                            content: WriteContent::Byte(9),
                            fires: Fires::OnAllButLastIteration,
                        }],
                    },
                }],
            },
            Step::UpdateTo {
                site: 3,
                device: 0,
                vars: vec![VarRef(0)],
            },
        ]);
        let t = abstract_run(&p);
        // The UpdateTo targets absent data (region closed) → warning,
        // but host content must be tainted either way.
        let o = ops(&t);
        let last_h2d = o.iter().rfind(|e| e.kind == AbsOpKind::H2D).unwrap();
        assert!(!last_h2d.certain);
    }

    #[test]
    fn release_of_absent_data_warns_and_emits_nothing() {
        let p = prog(vec![Step::ExitData {
            site: 1,
            device: 0,
            maps: vec![MapClause::release(VarRef(0))],
        }]);
        let t = abstract_run(&p);
        assert_eq!(t.warnings, 1);
        assert!(ops(&t).is_empty());
    }
}
