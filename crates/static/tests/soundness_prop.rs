//! Property suite for the static analyzer's soundness contract: on
//! randomly generated mapping programs, every prediction the analyzer
//! tags `Certain` must be confirmed by the fused dynamic engine on the
//! lowered execution — at the same `(codeptr, device, kind)` key, with
//! at least the proven instance count.
//!
//! The generator deliberately restricts variable initializers and
//! kernel write contents to byte-fill patterns and unique images: for
//! those, abstract token equality coincides exactly with concrete byte
//! equality, which is the precondition the certainty bits rely on.
//! Structure is unrestricted within the IR's validity rules — nested
//! data regions, static and data-dependent loops, enter/exit pairs
//! (including deliberately unmatched ones that provoke runtime
//! warnings), updates, host writes, and multi-device programs.

use odp_model::MapType;
use odp_static::crosscheck::join;
use odp_static::ir::{
    Fires, Init, KernelSpec, KernelWrite, MapClause, MappingProgram, Step, TripCount, VarDecl,
    VarRef, WriteContent,
};
use odp_static::{analyze, lower_and_run};
use proptest::prelude::*;
use std::collections::BTreeMap;

struct Gen {
    rng: TestRng,
    nvars: usize,
    ndev: u32,
    next_site: u64,
}

impl Gen {
    fn below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }

    fn var(&mut self) -> VarRef {
        VarRef(self.below(self.nvars as u64) as usize)
    }

    fn device(&mut self) -> u32 {
        self.below(self.ndev as u64) as u32
    }

    fn site(&mut self) -> u64 {
        self.next_site += 1;
        self.next_site
    }

    fn clause(&mut self) -> MapClause {
        let var = self.var();
        let map_type = match self.below(7) {
            0..=2 => MapType::To,
            3 | 4 => MapType::ToFrom,
            5 => MapType::From,
            _ => MapType::Alloc,
        };
        MapClause {
            var,
            map_type,
            always: self.below(10) == 0,
        }
    }

    fn exit_clause(&mut self) -> MapClause {
        let var = self.var();
        let map_type = match self.below(5) {
            0 | 1 => MapType::From,
            2 | 3 => MapType::Release,
            _ => MapType::Delete,
        };
        MapClause {
            var,
            map_type,
            always: false,
        }
    }

    fn clauses(&mut self, min: u64, max: u64, exit: bool) -> Vec<MapClause> {
        let n = min + self.below(max - min + 1);
        (0..n)
            .map(|_| {
                if exit {
                    self.exit_clause()
                } else {
                    self.clause()
                }
            })
            .collect()
    }

    fn write(&mut self) -> KernelWrite {
        let var = self.var();
        let content = if self.below(3) < 2 {
            WriteContent::Unique
        } else {
            WriteContent::Byte(self.below(4) as u8)
        };
        KernelWrite {
            var,
            content,
            fires: Fires::Always,
        }
    }

    fn kernel(&mut self) -> KernelSpec {
        let reads = (0..self.below(3)).map(|_| self.var()).collect();
        let writes = (0..self.below(3)).map(|_| self.write()).collect();
        KernelSpec {
            name: "k".into(),
            reads,
            writes,
        }
    }

    fn vars_list(&mut self) -> Vec<VarRef> {
        (0..1 + self.below(2)).map(|_| self.var()).collect()
    }

    fn step(&mut self, depth: u32) -> Step {
        let branch = if depth == 0 { 6 } else { 8 };
        match self.below(branch) {
            0 | 1 => Step::Target {
                site: self.site(),
                device: self.device(),
                maps: self.clauses(0, 2, false),
                kernel: self.kernel(),
            },
            2 => Step::EnterData {
                site: self.site(),
                device: self.device(),
                maps: self.clauses(1, 2, false),
            },
            3 => Step::ExitData {
                site: self.site(),
                device: self.device(),
                maps: self.clauses(1, 2, true),
            },
            4 => {
                if self.below(2) == 0 {
                    Step::UpdateTo {
                        site: self.site(),
                        device: self.device(),
                        vars: self.vars_list(),
                    }
                } else {
                    Step::UpdateFrom {
                        site: self.site(),
                        device: self.device(),
                        vars: self.vars_list(),
                    }
                }
            }
            5 => Step::HostWrite {
                var: self.var(),
                content: WriteContent::Byte(self.below(4) as u8),
            },
            6 => Step::DataRegion {
                site: self.site(),
                device: self.device(),
                maps: self.clauses(1, 3, false),
                body: self.steps(depth - 1, 1, 3),
            },
            _ => {
                let trip = if self.below(3) < 2 {
                    TripCount::Static(1 + self.below(4) as u32)
                } else {
                    TripCount::DataDependent {
                        executed: 1 + self.below(5) as u32,
                    }
                };
                Step::Loop {
                    trip,
                    body: self.steps(depth - 1, 1, 3),
                }
            }
        }
    }

    fn steps(&mut self, depth: u32, min: u64, max: u64) -> Vec<Step> {
        let n = min + self.below(max - min + 1);
        (0..n).map(|_| self.step(depth)).collect()
    }
}

fn gen_program(seed: u64) -> MappingProgram {
    let mut rng = TestRng::seeded(seed);
    let nvars = 1 + rng.below(3) as usize;
    let ndev = 1 + rng.below(2) as u32;
    let mut g = Gen {
        rng,
        nvars,
        ndev,
        next_site: 0,
    };
    let vars = (0..nvars)
        .map(|i| VarDecl {
            name: format!("v{i}"),
            bytes: 8 + g.below(57) as usize,
            init: Init::Byte(g.below(4) as u8),
        })
        .collect();
    let steps = g.steps(2, 1, 5);
    MappingProgram {
        name: format!("prop(seed={seed})"),
        num_devices: ndev,
        vars,
        steps,
        site_labels: BTreeMap::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The soundness contract: no `Certain` prediction is refuted by
    /// the dynamic engine on the lowered program.
    #[test]
    fn certain_predictions_are_dynamically_confirmed(seed in 0u64..u64::MAX) {
        let p = gen_program(seed);
        p.validate().expect("generated programs are valid by construction");
        let report = analyze(&p);
        let run = lower_and_run(&p);
        let check = join(&p, &report, &run);
        prop_assert!(
            check.summary.certain_precision_is_total(),
            "seed {}: refuted Certain prediction(s):\n{}\nstatic: {:#?}",
            seed,
            check.render(&p),
            report,
        );
    }

    /// The analyzer and the abstract executor never panic, and a
    /// statically-warning-free program lowers onto the runtime without
    /// warnings either (the symbolic present-table mirrors the real one).
    #[test]
    fn warning_free_static_means_warning_free_dynamic(seed in 0u64..u64::MAX) {
        let p = gen_program(seed);
        let report = analyze(&p);
        let run = lower_and_run(&p);
        if report.warnings == 0 {
            prop_assert!(
                run.warnings.is_empty(),
                "seed {seed}: static saw no warnings but runtime reported {:?}",
                run.warnings,
            );
        }
    }
}
