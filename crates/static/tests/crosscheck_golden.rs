//! Golden cross-check fixtures for the three declarative workloads.
//!
//! The checked-in JSON under `tests/fixtures/` pins, byte for byte,
//! both halves of the static pipeline at small size:
//!
//! - `crosscheck_<workload>.json` — the joined static-vs-dynamic rows
//!   and summary tallies. Counts only, no ratios, so the rendering is
//!   byte-stable across platforms.
//! - `plan_<workload>.json` — the emitted patch plan (edits plus
//!   unremediable notes).
//!
//! A mismatch means the analyzer's predictions, the lowered dynamic
//! findings, or the rewrite rules drifted. After an intentional change,
//! regenerate with:
//!
//! ```text
//! ODP_STATIC_BLESS=1 cargo test -p odp-static --test crosscheck_golden
//! ```
//!
//! The suite also re-asserts the acceptance bar directly from the live
//! values (not the fixtures): babelstream reports 100% precision for
//! `Certain` predictions, and its validated patch plan drops every
//! dynamic finding to zero.

use odp_static::{by_name, crosscheck, emit_plan, validate_plan, Size};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compare `actual` against the checked-in fixture, or rewrite the
/// fixture when `ODP_STATIC_BLESS=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("ODP_STATIC_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {name}: {e}\nregenerate with ODP_STATIC_BLESS=1")
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the checked-in fixture; if intentional, \
         regenerate with ODP_STATIC_BLESS=1"
    );
}

fn check_workload(name: &str) {
    let p = by_name(name, Size::S).expect("known workload");
    let (check, report, _run) = crosscheck(&p);
    assert_golden(&format!("crosscheck_{name}.json"), &check.to_json());
    let plan = emit_plan(&p, &report);
    assert_golden(&format!("plan_{name}.json"), &plan.to_json());
}

#[test]
fn babelstream_crosscheck_and_plan_are_pinned() {
    check_workload("babelstream");
}

#[test]
fn bfs_crosscheck_and_plan_are_pinned() {
    check_workload("bfs");
}

#[test]
fn xsbench_crosscheck_and_plan_are_pinned() {
    check_workload("xsbench");
}

/// The acceptance bar, asserted from live values rather than fixtures.
#[test]
fn babelstream_certain_precision_total_and_plan_zeroes_findings() {
    let p = by_name("babelstream", Size::S).expect("known workload");
    let (check, report, run) = crosscheck(&p);
    assert!(check.summary.certain_rows > 0);
    assert!(
        check.summary.certain_precision_is_total(),
        "{}",
        check.render(&p)
    );
    assert!(
        run.counts.total() > 0,
        "the unfixed workload must misbehave"
    );

    let plan = emit_plan(&p, &report);
    let (outcome, _rewritten) = validate_plan(&p, &plan).expect("plan applies");
    assert_eq!(outcome.before_total, run.counts.total() as u64);
    assert!(
        outcome.zero_after(),
        "applied plan must remove every remediable finding: {outcome:?}\n{}",
        plan.render()
    );
}

#[test]
fn xsbench_plan_zeroes_findings() {
    let p = by_name("xsbench", Size::S).expect("known workload");
    let (_check, report, _run) = crosscheck(&p);
    let plan = emit_plan(&p, &report);
    let (outcome, _) = validate_plan(&p, &plan).expect("plan applies");
    assert!(outcome.zero_after(), "{outcome:?}");
}

#[test]
fn bfs_plan_is_non_increasing() {
    let p = by_name("bfs", Size::S).expect("known workload");
    let (_check, report, _run) = crosscheck(&p);
    let plan = emit_plan(&p, &report);
    assert!(!plan.unremediable.is_empty(), "{}", plan.render());
    let (outcome, _) = validate_plan(&p, &plan).expect("plan applies");
    assert!(outcome.non_increasing(), "{outcome:?}");
}
