//! Anchor package for the workspace-level integration tests in
//! `/tests` and the examples in `/examples` (the workspace root is
//! virtual, so those targets need a member package to belong to; the
//! manifest's explicit `[[test]]`/`[[example]]` paths point at them).
