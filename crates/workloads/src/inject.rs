//! Synthetic-issue injectors (§7.5: "For the benchmarks that were already
//! well optimized, we injected artificial issues meant to mimic common
//! inefficiencies ... that a programmer may stumble into around key
//! kernels").
//!
//! Each injector produces *exactly* `n` issues of its category and — by
//! construction — zero issues of the other four, so Table 1's "(syn)"
//! rows compose additively. Passing `fixed = true` runs the same kernel
//! scaffolding with efficient mappings (zero issues): that is the
//! "after" side of the Figure 4 speedup measurement for synthetic
//! programs, where fixing an issue removes the redundant data management
//! but keeps the computation.

use odp_model::MapType;
use odp_sim::{map, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::SourceFile;

/// Tiny kernel cost for injection scaffolding.
fn tick() -> KernelCost {
    KernelCost::fixed(2_000)
}

/// Inject exactly `n` duplicate data transfers (DD), or the repaired
/// equivalent when `fixed`.
pub fn duplicates(
    rt: &mut Runtime,
    sf: &mut SourceFile<'_>,
    dev: u32,
    n: usize,
    salt: u8,
    fixed: bool,
) {
    let v = rt.host_alloc("syn_dup", 512);
    rt.host_bytes_mut(v).fill(salt ^ 0x5D);
    let cp_region = sf.line(900, "inject_duplicates");
    let cp_kernel = sf.line(901, "inject_duplicates");
    let region = rt.target_data_begin(dev, cp_region, &[map(MapType::To, v)]);
    // Head kernel consumes the region-entry transfer (else Algorithm 5
    // would see it overwritten by the first `always` copy → spurious UT).
    rt.target(
        dev,
        cp_kernel,
        &[map(MapType::To, v)],
        Kernel::new("syn_dup_head", tick()).reads(&[v]),
    );
    for _ in 0..n {
        // `map(always, to: v)` re-transfers unchanged content; the fixed
        // program drops the modifier and reuses the present copy.
        let m = if fixed {
            map(MapType::To, v)
        } else {
            odp_sim::map_always(MapType::To, v)
        };
        rt.target(
            dev,
            cp_kernel,
            &[m],
            Kernel::new("syn_dup_kernel", tick()).reads(&[v]),
        );
    }
    rt.target_data_end(region);
}

/// Inject exactly `n` round-trip transfers (RT), or the repaired
/// equivalent when `fixed`.
pub fn round_trips(
    rt: &mut Runtime,
    sf: &mut SourceFile<'_>,
    dev: u32,
    n: usize,
    salt: u8,
    fixed: bool,
) {
    let v = rt.host_alloc("syn_rt", 256);
    rt.host_bytes_mut(v).fill(salt ^ 0xA7);
    let cp_region = sf.line(910, "inject_round_trips");
    let cp_kernel = sf.line(911, "inject_round_trips");
    let cp_from = sf.line(912, "inject_round_trips");
    let cp_to = sf.line(913, "inject_round_trips");
    // `to:` only — a `tofrom` region-end copy would re-deliver the last
    // `update from` content to the host and register as a duplicate.
    let region = rt.target_data_begin(dev, cp_region, &[map(MapType::To, v)]);
    for _ in 0..n {
        // Kernel mutates v on the device → fresh content this iteration.
        rt.target(
            dev,
            cp_kernel,
            &[map(MapType::To, v)],
            Kernel::new("syn_rt_kernel", tick())
                .reads(&[v])
                .writes(&[v]),
        );
        if !fixed {
            rt.target_update_from(dev, cp_from, &[v]); // D2H of content h_i
            rt.target_update_to(dev, cp_to, &[v]); // H2D of identical h_i → RT
        }
    }
    // Final kernel so the trailing `update to` is consumed (no UT).
    rt.target(
        dev,
        cp_kernel,
        &[map(MapType::To, v)],
        Kernel::new("syn_rt_tail", tick()).reads(&[v]),
    );
    rt.target_data_end(region);
}

/// Inject exactly `n` repeated device memory allocations (RA), or the
/// repaired equivalent when `fixed`.
pub fn reallocs(rt: &mut Runtime, sf: &mut SourceFile<'_>, dev: u32, n: usize, fixed: bool) {
    let v = rt.host_alloc("syn_ra", 1024);
    let cp_enter = sf.line(920, "inject_reallocs");
    let cp_kernel = sf.line(921, "inject_reallocs");
    let cp_exit = sf.line(922, "inject_reallocs");
    if fixed {
        rt.target_enter_data(dev, cp_enter, &[map(MapType::Alloc, v)]);
    }
    for _ in 0..n + 1 {
        if !fixed {
            rt.target_enter_data(dev, cp_enter, &[map(MapType::Alloc, v)]);
        }
        rt.target(
            dev,
            cp_kernel,
            &[map(MapType::To, v)],
            Kernel::new("syn_ra_kernel", tick()).writes(&[v]),
        );
        if !fixed {
            rt.target_exit_data(dev, cp_exit, &[map(MapType::Delete, v)]);
        }
    }
    if fixed {
        rt.target_exit_data(dev, cp_exit, &[map(MapType::Delete, v)]);
    }
}

/// Inject exactly `n` unused device memory allocations (UA), or nothing
/// but the anchor kernels when `fixed`.
pub fn unused_allocs(rt: &mut Runtime, sf: &mut SourceFile<'_>, dev: u32, n: usize, fixed: bool) {
    let cp_kernel = sf.line(930, "inject_unused_allocs");
    let cp_enter = sf.line(931, "inject_unused_allocs");
    let cp_exit = sf.line(932, "inject_unused_allocs");
    // Two distinct anchors with distinct content: a shared anchor would
    // be reallocated (RA) and identical contents would hash equal (DD).
    let head = rt.host_alloc("syn_ua_head_anchor", 64);
    rt.host_bytes_mut(head).fill(0x11);
    let tail = rt.host_alloc("syn_ua_tail_anchor", 64);
    rt.host_bytes_mut(tail).fill(0x22);
    // Leading kernel so the allocations sit strictly between kernels.
    rt.target(
        dev,
        cp_kernel,
        &[map(MapType::To, head)],
        Kernel::new("syn_ua_head", tick()).reads(&[head]),
    );
    if !fixed {
        for i in 0..n {
            let v = rt.host_alloc(&format!("syn_ua_{i}"), 128);
            rt.target_enter_data(dev, cp_enter, &[map(MapType::Alloc, v)]);
            rt.target_exit_data(dev, cp_exit, &[map(MapType::Delete, v)]);
        }
    }
    rt.target(
        dev,
        cp_kernel,
        &[map(MapType::To, tail)],
        Kernel::new("syn_ua_tail", tick()).reads(&[tail]),
    );
}

/// Inject exactly `n` unused data transfers (UT), or the repaired
/// single-transfer equivalent when `fixed`.
pub fn unused_transfers(
    rt: &mut Runtime,
    sf: &mut SourceFile<'_>,
    dev: u32,
    n: usize,
    salt: u8,
    fixed: bool,
) {
    let v = rt.host_alloc("syn_ut", 256);
    let cp_region = sf.line(940, "inject_unused_transfers");
    let cp_to = sf.line(941, "inject_unused_transfers");
    let cp_kernel = sf.line(942, "inject_unused_transfers");
    let region = rt.target_data_begin(dev, cp_region, &[map(MapType::Alloc, v)]);
    let mut stamp = salt as u32;
    for _ in 0..n {
        if !fixed {
            stamp = stamp.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            let s1 = stamp;
            rt.host_fill_u32(v, |i| s1.wrapping_add(i as u32));
            rt.target_update_to(dev, cp_to, &[v]); // overwritten before use → UT
        }
        stamp = stamp.wrapping_mul(0x85EB_CA6B).wrapping_add(3);
        let s2 = stamp;
        rt.host_fill_u32(v, |i| s2.wrapping_add(i as u32) ^ 0xDEAD);
        rt.target_update_to(dev, cp_to, &[v]); // consumed by the kernel
        rt.target(
            dev,
            cp_kernel,
            &[map(MapType::To, v)],
            Kernel::new("syn_ut_kernel", tick()).reads(&[v]),
        );
    }
    rt.target_data_end(region);
}

/// A bundle of per-category injection counts (a Table 1 "(syn)" delta).
#[derive(Clone, Copy, Debug, Default)]
pub struct InjectionPlan {
    /// Duplicate transfers to inject.
    pub dd: usize,
    /// Round trips to inject.
    pub rt: usize,
    /// Repeated allocations to inject.
    pub ra: usize,
    /// Unused allocations to inject.
    pub ua: usize,
    /// Unused transfers to inject.
    pub ut: usize,
}

impl InjectionPlan {
    /// Scale the Medium-size plan to another problem size the way the
    /// paper's injections scale with the program's key-kernel count.
    pub fn scaled(self, factor_num: usize, factor_den: usize) -> InjectionPlan {
        let s = |v: usize| {
            (v * factor_num)
                .div_ceil(factor_den)
                .max(usize::from(v > 0))
        };
        InjectionPlan {
            dd: s(self.dd),
            rt: s(self.rt),
            ra: s(self.ra),
            ua: s(self.ua),
            ut: s(self.ut),
        }
    }

    /// Run every injector in a deterministic order.
    pub fn apply(self, rt: &mut Runtime, sf: &mut SourceFile<'_>, dev: u32, fixed: bool) {
        if self.dd > 0 {
            duplicates(rt, sf, dev, self.dd, 0x31, fixed);
        }
        if self.rt > 0 {
            round_trips(rt, sf, dev, self.rt, 0x47, fixed);
        }
        if self.ra > 0 {
            reallocs(rt, sf, dev, self.ra, fixed);
        }
        if self.ua > 0 {
            unused_allocs(rt, sf, dev, self.ua, fixed);
        }
        if self.ut > 0 {
            unused_transfers(rt, sf, dev, self.ut, 0x63, fixed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompdataperf::attrib::DebugInfo;
    use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

    fn counts_after(f: impl FnOnce(&mut Runtime, &mut SourceFile<'_>)) -> ompdataperf::IssueCounts {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        rt.attach_tool(Box::new(tool));
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "inject_test.c", 0x9000_0000);
        f(&mut rt, &mut sf);
        rt.finish();
        let trace = handle.take_trace();
        ompdataperf::analyze(&trace, None).counts
    }

    #[test]
    fn duplicates_are_pure() {
        let c = counts_after(|rt, sf| duplicates(rt, sf, 0, 7, 1, false));
        assert_eq!(
            c,
            ompdataperf::IssueCounts {
                dd: 7,
                ..Default::default()
            }
        );
    }

    #[test]
    fn round_trips_are_pure() {
        let c = counts_after(|rt, sf| round_trips(rt, sf, 0, 5, 2, false));
        assert_eq!(
            c,
            ompdataperf::IssueCounts {
                rt: 5,
                ..Default::default()
            }
        );
    }

    #[test]
    fn reallocs_are_pure() {
        let c = counts_after(|rt, sf| reallocs(rt, sf, 0, 9, false));
        assert_eq!(
            c,
            ompdataperf::IssueCounts {
                ra: 9,
                ..Default::default()
            }
        );
    }

    #[test]
    fn unused_allocs_are_pure() {
        let c = counts_after(|rt, sf| unused_allocs(rt, sf, 0, 4, false));
        assert_eq!(
            c,
            ompdataperf::IssueCounts {
                ua: 4,
                ..Default::default()
            }
        );
    }

    #[test]
    fn unused_transfers_are_pure() {
        let c = counts_after(|rt, sf| unused_transfers(rt, sf, 0, 6, 3, false));
        assert_eq!(
            c,
            ompdataperf::IssueCounts {
                ut: 6,
                ..Default::default()
            }
        );
    }

    #[test]
    fn injectors_compose_additively() {
        let plan = InjectionPlan {
            dd: 3,
            rt: 2,
            ra: 4,
            ua: 1,
            ut: 5,
        };
        let c = counts_after(|rt, sf| plan.apply(rt, sf, 0, false));
        assert_eq!(
            c,
            ompdataperf::IssueCounts {
                dd: 3,
                rt: 2,
                ra: 4,
                ua: 1,
                ut: 5,
            }
        );
    }

    #[test]
    fn fixed_mode_is_issue_free() {
        let plan = InjectionPlan {
            dd: 3,
            rt: 2,
            ra: 4,
            ua: 1,
            ut: 5,
        };
        let c = counts_after(|rt, sf| plan.apply(rt, sf, 0, true));
        assert!(c.is_clean(), "{c:?}");
    }

    #[test]
    fn plan_scaling() {
        let m = InjectionPlan {
            dd: 10,
            rt: 4,
            ra: 0,
            ua: 1,
            ut: 3,
        };
        let s = m.scaled(1, 2);
        assert_eq!(s.dd, 5);
        assert_eq!(s.rt, 2);
        assert_eq!(s.ra, 0, "zero stays zero");
        assert_eq!(s.ua, 1);
        assert_eq!(s.ut, 2);
        let l = m.scaled(2, 1);
        assert_eq!(l.dd, 20);
    }
}
