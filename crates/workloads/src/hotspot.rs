//! hotspot — Rodinia's thermal simulation (structured grid stencil).
//!
//! Table 1: DD = 2, all else 0. The two duplicate transfers come from
//! defensive `target update to(power)` refreshes between pyramid steps:
//! the power density grid never changes, so each refresh re-sends bytes
//! the device already holds. No reallocation is involved (the arrays
//! stay mapped), which is why DD appears without RA.
//!
//! The synthetic variant (Table 1 "(syn)": DD 12, RT 4, RA 10) adds the
//! paper's injected issues around the stencil kernels.

use crate::inject::InjectionPlan;
use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The hotspot workload.
pub struct Hotspot;

struct Params {
    grid: usize,
    outer_steps: usize,
    inner_iters: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        // Paper inputs share pyramid_height 2 / total 4 iterations; the
        // grid dimension grows.
        ProblemSize::Small => Params {
            grid: 64,
            outer_steps: 3,
            inner_iters: 2,
        },
        ProblemSize::Medium => Params {
            grid: 128,
            outer_steps: 3,
            inner_iters: 2,
        },
        ProblemSize::Large => Params {
            grid: 256,
            outer_steps: 3,
            inner_iters: 2,
        },
    }
}

fn syn_plan(size: ProblemSize) -> InjectionPlan {
    let medium = InjectionPlan {
        dd: 10,
        rt: 4,
        ra: 10,
        ua: 0,
        ut: 0,
    };
    match size {
        ProblemSize::Small => medium.scaled(1, 2),
        ProblemSize::Medium => medium,
        ProblemSize::Large => medium.scaled(2, 1),
    }
}

impl Workload for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn domain(&self) -> &'static str {
        "Thermal Simulation"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "64 64 2 4 temp_64 power_64",
            ProblemSize::Medium => "512 512 2 4 temp_512 power_512",
            ProblemSize::Large => "1024 1024 2 4 temp_1024 power_1024",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(
            variant,
            Variant::Original | Variant::Synthetic | Variant::SynFixed
        )
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Synthetic, Variant::SynFixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.grid * p.grid;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "rodinia/hotspot/hotspot_openmp.cpp", 0x42_0000);
        let cp_region = sf.line(255, "compute_tran_temp");
        let cp_update = sf.line(268, "compute_tran_temp");
        let cp_kernel = sf.line(285, "single_iteration");

        let temp = rt.host_alloc("MatrixTemp", n * 8);
        rt.host_fill_f64(temp, |i| 322.0 + (i % 64) as f64 * 0.01);
        let power = rt.host_alloc("MatrixPower", n * 8);
        rt.host_fill_f64(power, |i| 0.001 + (i % 32) as f64 * 1e-5);
        let result = rt.host_alloc("MatrixOut", n * 8);
        rt.host_fill_f64(result, |i| 1.0 + i as f64 * 1e-9);

        let region = rt.target_data_begin(
            0,
            cp_region,
            &[
                map(MapType::ToFrom, temp),
                map(MapType::To, power),
                map(MapType::To, result),
            ],
        );

        let grid = p.grid;
        let kcost = KernelCost::scaled((n * 5) as u64);
        let mut flip = false;
        for step in 0..p.outer_steps {
            if step > 0 {
                // Defensive refresh of an unchanged array before each
                // later pyramid step — one duplicate transfer each (the
                // next stencil kernel consumes it, so it is *only* a
                // DD). Present in every variant: these are hotspot's
                // inherent issues, not injected ones.
                rt.target_update_to(0, cp_update, &[power]);
            }
            for _ in 0..p.inner_iters {
                let (src, dst) = if flip { (result, temp) } else { (temp, result) };
                flip = !flip;
                let mut stencil = |view: &mut DeviceView<'_>| {
                    let t = view.read_f64(src);
                    let pw = view.read_f64(power);
                    let mut out = vec![0.0f64; n];
                    for r in 0..grid {
                        for c in 0..grid {
                            let ix = r * grid + c;
                            let up = if r > 0 { t[ix - grid] } else { t[ix] };
                            let down = if r + 1 < grid { t[ix + grid] } else { t[ix] };
                            let left = if c > 0 { t[ix - 1] } else { t[ix] };
                            let right = if c + 1 < grid { t[ix + 1] } else { t[ix] };
                            out[ix] = t[ix]
                                + 0.05 * (up + down + left + right - 4.0 * t[ix])
                                + 0.5 * pw[ix];
                        }
                    }
                    view.write_f64(dst, &out);
                };
                rt.target(
                    0,
                    cp_kernel,
                    &[
                        map(MapType::To, temp),
                        map(MapType::To, power),
                        map(MapType::To, result),
                    ],
                    Kernel::new("hotspot_stencil", kcost)
                        .reads(&[src, power])
                        .writes(&[dst])
                        .body(&mut stencil),
                );
            }
        }

        rt.target_data_end(region);

        if matches!(variant, Variant::Synthetic | Variant::SynFixed) {
            syn_plan(size).apply(rt, &mut sf, 0, variant == Variant::SynFixed);
        }
        dbg
    }
}
