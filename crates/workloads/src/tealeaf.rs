//! tealeaf — UK Mini-App Consortium's heat-conduction solver (implicit
//! sparse linear solve; included in SPEChpc 2021).
//!
//! §7.5: "The majority of the DDs and all of the RAs in tealeaf were
//! caused by copies for initialization \[of\] reduction variables.
//! Unfortunately, this is usually the fastest way to initialize
//! reduction variables with current OpenMP features ... We could not
//! determine a performant way to eliminate these issues."
//!
//! Structure per CG iteration: two scalar reduction variables (`rro`,
//! `pw`) are zeroed on the host and mapped `tofrom` around their
//! reduction kernels (alloc + H2D(0.0) + kernel + D2H + delete). At
//! Medium (`iters = 2354`):
//!
//! * RA = 2·(iters−1) = 4706;
//! * DD = (2·iters − 1) + 13 = 4720 — every H2D of the 8-byte zero image
//!   lands in one group (4707) plus the 14 identical zero-initialized
//!   field arrays mapped at start-up (13);
//! * RT = 11 — every 200th iteration a defensive `update from(sd)` /
//!   `update to(sd)` halo-check pair bounces unchanged bytes
//!   (⌊2354/200⌋ = 11).
//!
//! The synthetic variant (Table 1 "(syn)": DD 17408, RT 25614, RA 4706,
//! UT 1) piles injected duplicates and round trips on top.

use crate::inject::InjectionPlan;
use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The tealeaf workload.
pub struct TeaLeaf;

struct Params {
    cells: usize,
    iters: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            cells: 1024,
            iters: 589,
        },
        ProblemSize::Medium => Params {
            cells: 4096,
            iters: 2354,
        },
        ProblemSize::Large => Params {
            cells: 8192,
            iters: 4708,
        },
    }
}

fn syn_plan(size: ProblemSize) -> InjectionPlan {
    // (syn) deltas over the original counts: DD 17408-4720 = 12688,
    // RT 25614-11 = 25603, UT 1.
    let medium = InjectionPlan {
        dd: 12_688,
        rt: 25_603,
        ra: 0,
        ua: 0,
        ut: 1,
    };
    match size {
        ProblemSize::Small => medium.scaled(1, 4),
        ProblemSize::Medium => medium,
        ProblemSize::Large => medium.scaled(2, 1),
    }
}

impl Workload for TeaLeaf {
    fn name(&self) -> &'static str {
        "tealeaf"
    }

    fn domain(&self) -> &'static str {
        "High Energy Physics"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "--file tea_bm_1.in",
            ProblemSize::Medium => "--file tea_bm_2.in",
            ProblemSize::Large => "--file tea_bm_4.in",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(
            variant,
            Variant::Original | Variant::Synthetic | Variant::SynFixed
        )
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        // Synthetic → Original (not SynFixed): tealeaf's inherent
        // reduction-variable issues are unfixable (§7.5), so the
        // measured "after" still contains them while the prediction
        // assumes everything is eliminable. Together with the injected
        // round trips this reproduces the paper's Figure-4 outlier —
        // large actual speedup, substantially under-predicted (§7.6:
        // 16× vs 5.8× at Large).
        Some((Variant::Synthetic, Variant::Original))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.cells;
        let bytes = n * 8;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "tealeaf/c_kernels/cg.c", 0x47_0000);
        let cp_region = sf.line(34, "cg_driver");
        let cp_rro = sf.line(61, "cg_calc_rro");
        let cp_pw = sf.line(83, "cg_calc_pw");
        let cp_smooth = sf.line(105, "cg_calc_ur");
        let cp_halo = sf.line(130, "halo_update");

        // Two nonzero input fields...
        let density = rt.host_alloc("density", bytes);
        rt.host_fill_f64(density, |i| 1.0 + (i % 13) as f64 * 0.05);
        let energy = rt.host_alloc("energy", bytes);
        rt.host_fill_f64(energy, |i| 2.5 + (i % 29) as f64 * 0.01);
        // ...and fourteen identical zero-initialized work arrays → 13 DD.
        let names = [
            "u", "u0", "p_field", "r_field", "w_field", "z_field", "kx", "ky", "sd", "mi", "vec_r",
            "vec_w", "vec_z", "vec_sd",
        ];
        let fields: Vec<_> = names.iter().map(|nm| rt.host_alloc(nm, bytes)).collect();
        let sd = fields[8];

        let mut maps = vec![map(MapType::To, density), map(MapType::To, energy)];
        maps.extend(fields.iter().map(|&f| map(MapType::To, f)));
        // `u` comes home at the end.
        maps[2] = map(MapType::ToFrom, fields[0]);
        let region = rt.target_data_begin(0, cp_region, &maps);

        let rro = rt.host_alloc("rro", 8);
        let pw = rt.host_alloc("pw", 8);
        let kcost = KernelCost::scaled((n * 4) as u64);
        let redcost = KernelCost::scaled(n as u64);

        for iter in 0..p.iters {
            // Reduction 1: rro = Σ r·z — host zeroes, maps tofrom.
            rt.host_bytes_mut(rro).fill(0);
            let rro_val = 1.0e6 - iter as f64 * 0.5; // strictly decreasing
            let mut rro_body = |view: &mut DeviceView<'_>| {
                view.write_f64(rro, &[rro_val]);
            };
            rt.target(
                0,
                cp_rro,
                &[
                    map(MapType::ToFrom, rro),
                    map(MapType::To, fields[3]),
                    map(MapType::To, fields[5]),
                ],
                Kernel::new("cg_calc_rro", redcost)
                    .reads(&[fields[3], fields[5]])
                    .writes(&[rro])
                    .body(&mut rro_body),
            );
            rt.host_load(rro);

            // Reduction 2: pw = Σ p·w.
            rt.host_bytes_mut(pw).fill(0);
            let pw_val = 2.0e9 + iter as f64;
            let mut pw_body = |view: &mut DeviceView<'_>| {
                view.write_f64(pw, &[pw_val]);
            };
            rt.target(
                0,
                cp_pw,
                &[
                    map(MapType::ToFrom, pw),
                    map(MapType::To, fields[2]),
                    map(MapType::To, fields[4]),
                ],
                Kernel::new("cg_calc_pw", redcost)
                    .reads(&[fields[2], fields[4]])
                    .writes(&[pw])
                    .body(&mut pw_body),
            );
            rt.host_load(pw);

            // Main smoother: updates u, r and the halo direction sd.
            let step = iter as f64;
            let mut smooth = |view: &mut DeviceView<'_>| {
                let dens = view.read_f64(density);
                let mut u = view.read_f64(fields[0]);
                let mut r = view.read_f64(fields[3]);
                let mut sdv = view.read_f64(sd);
                for i in 0..n {
                    let coupling = dens[i] * 1e-4;
                    u[i] += coupling + step * 1e-9;
                    r[i] = r[i] * 0.999 + coupling;
                    sdv[i] = r[i] * 0.7 + step * 1e-6;
                }
                view.write_f64(fields[0], &u);
                view.write_f64(fields[3], &r);
                view.write_f64(sd, &sdv);
            };
            rt.target(
                0,
                cp_smooth,
                &[
                    map(MapType::To, density),
                    map(MapType::To, fields[0]),
                    map(MapType::To, fields[3]),
                    map(MapType::To, sd),
                ],
                Kernel::new("cg_calc_ur", kcost)
                    .reads(&[density, fields[0], fields[3]])
                    .writes(&[fields[0], fields[3], sd])
                    .body(&mut smooth),
            );

            if iter % 200 == 199 {
                // Defensive halo check: copy sd out and push the
                // identical bytes straight back — one round trip.
                rt.target_update_from(0, cp_halo, &[sd]);
                rt.host_load(sd);
                rt.target_update_to(0, cp_halo, &[sd]);
            }
        }

        rt.target_data_end(region);

        if matches!(variant, Variant::Synthetic | Variant::SynFixed) {
            syn_plan(size).apply(rt, &mut sf, 0, variant == Variant::SynFixed);
        }
        dbg
    }
}
