//! bfs — Rodinia's breadth-first search (graph algorithms).
//!
//! §7.5: "The bfs program from the Rodinia suite exhibits 3 issue types
//! as a result of reallocating \[and\] transferring back and forth a
//! boolean to indicate when to stop launching kernels. We eliminated
//! these issues by moving the loop check into the OpenMP target region,
//! which resulted in 2.1× speedup for the small problem size."
//!
//! Original structure per frontier level: the 4-byte `h_over` flag is
//! zeroed on the host, mapped `tofrom` around the second kernel
//! (alloc + H2D(0) + kernel + D2H + delete), and checked on the host.
//! With `k` levels this yields Table 1's counts (Medium, `k = 10`):
//! DD = (k-1) + (k-2) + 1 = 18 (flag zeros to the device, flag ones back
//! to the host, plus the identical `h_graph_mask`/`h_graph_visited`
//! initial images), RT = k = 10 (every H2D(0) pairs with the final
//! D2H(0) under Algorithm 2), RA = k-1 = 9.

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The bfs workload.
pub struct Bfs;

struct Params {
    nodes: usize,
    levels: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            nodes: 1024,
            levels: 6,
        },
        ProblemSize::Medium => Params {
            nodes: 8192,
            levels: 10,
        },
        ProblemSize::Large => Params {
            nodes: 16384,
            levels: 12,
        },
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn domain(&self) -> &'static str {
        "Graph Algorithms"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "graph4096.txt",
            ProblemSize::Medium => "graph65536.txt",
            ProblemSize::Large => "graph1MW_6.txt",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    /// bfs's per-iteration remapping storm is the flagship anti-pattern;
    /// running it from several host threads at once is the densest
    /// concurrency stress the collector sees.
    fn supports_threads(&self) -> bool {
        true
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.nodes;
        let k = p.levels;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "rodinia/bfs/bfs.cpp", 0x41_0000);
        let cp_region = sf.line(94, "BFSGraph");
        let cp_kernel1 = sf.line(121, "BFSGraph");
        let cp_kernel2 = sf.line(140, "BFSGraph");

        // Graph: a chain 0→1→…→(k-1) embedded in n nodes (the frontier
        // advances one level per iteration and dies after exactly k).
        let edges = rt.host_alloc("h_graph_edges", n * 4);
        rt.host_fill_u32(edges, |i| if i + 1 < k { (i + 1) as u32 } else { u32::MAX });
        // mask/visited start with only the source marked — identical
        // images, which is bfs's one inherent duplicate transfer.
        let mask = rt.host_alloc("h_graph_mask", n);
        rt.host_bytes_mut(mask)[0] = 1;
        let visited = rt.host_alloc("h_graph_visited", n);
        rt.host_bytes_mut(visited)[0] = 1;
        let updating = rt.host_alloc("h_updating_graph_mask", n);
        let cost = rt.host_alloc("h_cost", n * 4);
        rt.host_fill_u32(cost, |i| if i == 0 { 0 } else { u32::MAX });
        let over = rt.host_alloc("h_over", 4);

        let region = rt.target_data_begin(
            0,
            cp_region,
            &[
                map(MapType::To, edges),
                map(MapType::To, mask),
                map(MapType::To, visited),
                map(MapType::To, updating),
                map(MapType::ToFrom, cost),
            ],
        );

        let kcost = KernelCost::scaled(n as u64);
        for _level in 0..k {
            // Kernel 1: expand the frontier into `updating`.
            let mut expand = |view: &mut DeviceView<'_>| {
                let maskv = view.bytes(mask).to_vec();
                let edgev = view.read_u32(edges);
                let mut costv = view.read_u32(cost);
                let mut updatingv = view.bytes(updating).to_vec();
                for i in 0..n {
                    if maskv[i] == 1 {
                        let next = edgev[i];
                        if next != u32::MAX {
                            let next = next as usize;
                            costv[next] = costv[i].wrapping_add(1);
                            updatingv[next] = 1;
                        }
                    }
                }
                view.write_u32(cost, &costv);
                view.bytes_mut(updating).copy_from_slice(&updatingv);
                // The frontier has been consumed.
                view.bytes_mut(mask).fill(0);
            };
            rt.target(
                0,
                cp_kernel1,
                &[
                    map(MapType::To, edges),
                    map(MapType::To, mask),
                    map(MapType::To, updating),
                    map(MapType::To, cost),
                ],
                Kernel::new("bfs_kernel1", kcost)
                    .reads(&[edges, mask, cost])
                    .writes(&[cost, updating, mask])
                    .body(&mut expand),
            );

            if variant == Variant::Original {
                // The inefficiency: h_over bounced around every level.
                rt.host_store(over, 0, &0u32.to_le_bytes());
                let mut promote = make_promote(n, mask, visited, updating, over);
                rt.target(
                    0,
                    cp_kernel2,
                    &[
                        map(MapType::To, mask),
                        map(MapType::To, visited),
                        map(MapType::To, updating),
                        map(MapType::ToFrom, over),
                    ],
                    Kernel::new("bfs_kernel2", kcost)
                        .reads(&[updating])
                        .writes(&[mask, visited, updating, over])
                        .body(&mut promote),
                );
                rt.host_load(over); // while(h_over)
            } else {
                // Fixed: the stop flag lives on the device; no per-level
                // transfer or reallocation.
                let mut promote = make_promote_device_flag(n, mask, visited, updating);
                rt.target(
                    0,
                    cp_kernel2,
                    &[
                        map(MapType::To, mask),
                        map(MapType::To, visited),
                        map(MapType::To, updating),
                    ],
                    Kernel::new("bfs_kernel2_fused", kcost)
                        .reads(&[updating])
                        .writes(&[mask, visited, updating])
                        .body(&mut promote),
                );
            }
        }

        rt.target_data_end(region);
        dbg
    }
}

type PromoteBody<'a> = Box<dyn FnMut(&mut DeviceView<'_>) + 'a>;

fn make_promote(
    n: usize,
    mask: odp_sim::VarId,
    visited: odp_sim::VarId,
    updating: odp_sim::VarId,
    over: odp_sim::VarId,
) -> PromoteBody<'static> {
    Box::new(move |view: &mut DeviceView<'_>| {
        let mut any = 0u32;
        let updatingv = view.bytes(updating).to_vec();
        let mut maskv = view.bytes(mask).to_vec();
        let mut visitedv = view.bytes(visited).to_vec();
        for i in 0..n {
            if updatingv[i] == 1 {
                maskv[i] = 1;
                visitedv[i] = 1;
                any = 1;
            }
        }
        view.bytes_mut(mask).copy_from_slice(&maskv);
        view.bytes_mut(visited).copy_from_slice(&visitedv);
        view.bytes_mut(updating).fill(0);
        view.set_scalar_u32(over, 0, any);
    })
}

fn make_promote_device_flag(
    n: usize,
    mask: odp_sim::VarId,
    visited: odp_sim::VarId,
    updating: odp_sim::VarId,
) -> PromoteBody<'static> {
    Box::new(move |view: &mut DeviceView<'_>| {
        let updatingv = view.bytes(updating).to_vec();
        let mut maskv = view.bytes(mask).to_vec();
        let mut visitedv = view.bytes(visited).to_vec();
        for i in 0..n {
            if updatingv[i] == 1 {
                maskv[i] = 1;
                visitedv[i] = 1;
            }
        }
        view.bytes_mut(mask).copy_from_slice(&maskv);
        view.bytes_mut(visited).copy_from_slice(&visitedv);
        view.bytes_mut(updating).fill(0);
    })
}
