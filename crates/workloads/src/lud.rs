//! lud — Rodinia's LU decomposition (dense linear algebra).
//!
//! The shipped OpenMP offload version maps the matrix once around the
//! whole factorization, so Table 1 reports zero issues. The synthetic
//! variant injects the paper's artificial issues (Table 1 "(syn)":
//! DD 1737, RT 1243, RA 747, UA 250, UT 252 at Medium).

use crate::inject::InjectionPlan;
use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The lud workload.
pub struct Lud;

struct Params {
    dim: usize,
    block: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params { dim: 64, block: 16 },
        ProblemSize::Medium => Params { dim: 96, block: 16 },
        ProblemSize::Large => Params {
            dim: 128,
            block: 16,
        },
    }
}

fn syn_plan(size: ProblemSize) -> InjectionPlan {
    let medium = InjectionPlan {
        dd: 1737,
        rt: 1243,
        ra: 747,
        ua: 250,
        ut: 252,
    };
    match size {
        ProblemSize::Small => medium.scaled(1, 4),
        ProblemSize::Medium => medium,
        ProblemSize::Large => medium.scaled(2, 1),
    }
}

impl Workload for Lud {
    fn name(&self) -> &'static str {
        "lud"
    }

    fn domain(&self) -> &'static str {
        "Linear Algebra"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "-s 2000",
            ProblemSize::Medium => "-s 4000",
            ProblemSize::Large => "-s 8000",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(
            variant,
            Variant::Original | Variant::Synthetic | Variant::SynFixed
        )
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Synthetic, Variant::SynFixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let dim = p.dim;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "rodinia/lud/lud_omp.cpp", 0x43_0000);
        let cp_region = sf.line(52, "lud_omp");
        let cp_diag = sf.line(70, "lud_diagonal");
        let cp_perim = sf.line(95, "lud_perimeter");
        let cp_internal = sf.line(130, "lud_internal");

        // A diagonally dominant matrix so the factorization is stable.
        let m = rt.host_alloc("m", dim * dim * 8);
        rt.host_fill_f64(m, |i| {
            let (r, c) = (i / dim, i % dim);
            if r == c {
                dim as f64 * 2.0
            } else {
                ((r * 31 + c * 17) % 19) as f64 * 0.05
            }
        });

        let region = rt.target_data_begin(0, cp_region, &[map(MapType::ToFrom, m)]);

        let steps = dim / p.block;
        let block = p.block;
        for step in 0..steps {
            let offset = step * block;
            // Diagonal-block factorization.
            let mut diag = |view: &mut DeviceView<'_>| {
                let mut a = view.read_f64(m);
                for i in offset..offset + block {
                    for j in (i + 1)..(offset + block) {
                        let f = a[j * dim + i] / a[i * dim + i];
                        a[j * dim + i] = f;
                        for k in (i + 1)..(offset + block) {
                            a[j * dim + k] -= f * a[i * dim + k];
                        }
                    }
                }
                view.write_f64(m, &a);
            };
            rt.target(
                0,
                cp_diag,
                &[map(MapType::To, m)],
                Kernel::new(
                    "lud_diagonal",
                    KernelCost::scaled((block * block * block) as u64),
                )
                .reads(&[m])
                .writes(&[m])
                .body(&mut diag),
            );
            if step + 1 < steps {
                // Perimeter + internal updates for the trailing matrix.
                let mut trailing = |view: &mut DeviceView<'_>| {
                    let mut a = view.read_f64(m);
                    for i in offset..offset + block {
                        let pivot = a[i * dim + i];
                        for r in (offset + block)..dim {
                            let f = a[r * dim + i] / pivot;
                            a[r * dim + i] = f;
                            for c in (i + 1)..dim {
                                a[r * dim + c] -= f * a[i * dim + c];
                            }
                        }
                    }
                    view.write_f64(m, &a);
                };
                let work = (dim - offset) * (dim - offset) * block;
                rt.target(
                    0,
                    cp_perim,
                    &[map(MapType::To, m)],
                    Kernel::new("lud_perimeter", KernelCost::scaled(work as u64))
                        .reads(&[m])
                        .writes(&[m])
                        .body(&mut trailing),
                );
                rt.target(
                    0,
                    cp_internal,
                    &[map(MapType::To, m)],
                    Kernel::new("lud_internal", KernelCost::scaled(work as u64))
                        .reads(&[m])
                        .writes(&[m]),
                );
            }
        }

        rt.target_data_end(region);

        if matches!(variant, Variant::Synthetic | Variant::SynFixed) {
            syn_plan(size).apply(rt, &mut sf, 0, variant == Variant::SynFixed);
        }
        dbg
    }
}
