//! Capture a workload run as a persistable trace artifact.
//!
//! The bridge between the benchmark drivers and the persistence layer:
//! run one instrumented workload (optionally with live remediation,
//! exactly like `ompdataperf --remediate`), compose the run's full
//! health picture the way the CLI report does, and snapshot the trace
//! into an [`odp_trace::TraceArtifact`] ready for
//! `TraceArtifact::to_bytes` / fleet ingest. Shared by `odp trace save`
//! and the golden-corpus fixtures, so both produce identical corpora
//! for identical workloads.

use crate::{ProblemSize, Variant, Workload};
use odp_sim::{Runtime, RuntimeConfig};
use odp_trace::TraceArtifact;
use ompdataperf::detect::EventView;
use ompdataperf::remedy::LiveRemediator;
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

/// Run `w` once under the tool and snapshot the trace as a persistable
/// artifact carrying the run's merged health (collector quarantines,
/// streaming-engine degradation when remediating, merge-time duplicate
/// ids) and the workload's name as the program.
///
/// With `remediate` the streaming engine feeds a live policy during the
/// run — the captured trace is the *remediated* execution, which is
/// what makes baseline-vs-remediated corpus diffs meaningful.
pub fn capture_artifact(
    w: &dyn Workload,
    size: ProblemSize,
    variant: Variant,
    remediate: bool,
) -> TraceArtifact {
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: remediate,
        ..Default::default()
    });
    let mut rt = Runtime::new(RuntimeConfig::default());
    rt.attach_tool(Box::new(tool));
    if remediate {
        let (remediator, _policy) = LiveRemediator::new(handle.clone());
        rt.attach_advisor(Box::new(remediator));
    }
    let _dbg = w.run(&mut rt, size, variant);
    rt.finish();

    let trace = handle.take_trace();
    let mut health = handle.trace_health();
    if let Some(mut engine) = handle.take_stream_engine() {
        // Settle the engine against the merged trace (same as the CLI
        // report path) so its degradation counters are final.
        let view = EventView::from_log(&trace);
        let _findings = engine.finalize(&view);
        health.merge(&engine.health());
    }
    health.duplicate_ids += trace.duplicate_id_count();
    TraceArtifact::from_log(&trace, w.name(), health)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::babelstream::BabelStream;
    use odp_trace::persist::load_trace;

    #[test]
    fn captured_artifact_round_trips() {
        let w = BabelStream;
        let artifact = capture_artifact(&w, ProblemSize::Small, Variant::Original, false);
        assert!(artifact.data_op_count() > 0);
        assert_eq!(artifact.meta.program, w.name());
        let loaded = load_trace(&artifact.to_bytes()).unwrap();
        assert_eq!(loaded, artifact);
    }

    #[test]
    fn capture_is_deterministic() {
        let a = capture_artifact(&BabelStream, ProblemSize::Small, Variant::Original, true);
        let b = capture_artifact(&BabelStream, ProblemSize::Small, Variant::Original, true);
        assert_eq!(a.to_bytes(), b.to_bytes(), "simulated time is bit-stable");
    }
}
