//! rsbench — Argonne's multipole cross-section lookup proxy (the
//! reduced-data-movement companion to xsbench).
//!
//! Same §7.5 finding as xsbench: one round trip from the input struct's
//! missing map clause (Table 1: RT = 1; clean after the fix).

use crate::xsbench::run_xs_style;
use crate::{ProblemSize, Variant, Workload};
use odp_sim::Runtime;
use ompdataperf::attrib::DebugInfo;

/// The rsbench workload.
pub struct RsBench;

struct Params {
    lookups: usize,
    poles: usize,
}

fn params(size: ProblemSize) -> Params {
    // rsbench is the *reduced data movement* reformulation of xsbench:
    // its multipole data is orders of magnitude smaller than the
    // unionized grid, so its profiling overhead stays low in Figure 2.
    match size {
        ProblemSize::Small => Params {
            lookups: 15_000,
            poles: 16 * 1024,
        },
        ProblemSize::Medium => Params {
            lookups: 80_000,
            poles: 64 * 1024,
        },
        ProblemSize::Large => Params {
            lookups: 300_000,
            poles: 128 * 1024,
        },
    }
}

impl Workload for RsBench {
    fn name(&self) -> &'static str {
        "rsbench"
    }

    fn domain(&self) -> &'static str {
        "Neutron Transport"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "-m event -s small",
            ProblemSize::Medium => "-m event -s large -l 4250000",
            ProblemSize::Large => "-m event -s large",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        run_xs_style(
            rt,
            "rsbench/simulation.c",
            0x49_0000,
            p.poles,
            p.lookups,
            variant == Variant::Fixed,
        )
    }
}
