//! Adaptive-remediation drivers: run a workload with the detect→rewrite
//! loop closed.
//!
//! Three entry points, shared by the CLI's `--remediate`, the
//! integration tests, and `examples/adaptive_remediation.rs`:
//!
//! * [`run_baseline`] — the plain instrumented run (post-mortem
//!   analysis), the comparison point;
//! * [`run_adaptive`] — one live run: the streaming engine's findings
//!   feed a [`RemediationPolicy`] through a [`LiveRemediator`], so
//!   later iterations of the workload execute rewritten mappings;
//! * [`run_seeded`] — a re-run against a policy seeded from previous
//!   findings ([`RemediationPolicy::from_findings`]): the detectors
//!   then report zero issues of the remediated kinds.
//!
//! Every driver returns a [`RemediatedRun`] carrying the full analysis
//! report, the remediation accounting, and the raw runtime stats, so
//! callers can assert `bytes_transferred` strictly shrank and
//! `recovered_time() > 0`.

use crate::{ProblemSize, Variant, Workload};
use odp_ompt::{MapAdvisor, Tool};
use odp_sim::{Runtime, RuntimeConfig, RuntimeStats};
use ompdataperf::detect::EventView;
use ompdataperf::remedy::{
    LiveRemediator, RemediationPolicy, RemediationReport, SharedPolicyCell, SharedRemediator,
};
use ompdataperf::report::Report;
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig, ToolHandle};

/// The outcome of one (possibly remediated) instrumented run.
pub struct RemediatedRun {
    /// The full §A.6 analysis report (detection ran as usual).
    pub report: Report,
    /// Recovered-vs-baseline remediation accounting.
    pub remediation: RemediationReport,
    /// Raw runtime statistics (transfer bytes/time, total time).
    pub stats: RuntimeStats,
}

/// Plain instrumented run: no advisor, post-mortem analysis. The
/// detection output is byte-identical to the pre-remediation tool.
pub fn run_baseline(w: &dyn Workload, size: ProblemSize, variant: Variant) -> RemediatedRun {
    run_with(w, size, variant, Mode::Baseline)
}

/// One adaptive run: stream findings into a fresh policy *during* the
/// run and apply its rewrites to every subsequent region.
pub fn run_adaptive(w: &dyn Workload, size: ProblemSize, variant: Variant) -> RemediatedRun {
    run_with(w, size, variant, Mode::Adaptive)
}

/// Re-run with a pre-seeded policy (typically
/// [`RemediationPolicy::from_findings`] over a baseline run's report).
pub fn run_seeded(
    w: &dyn Workload,
    size: ProblemSize,
    variant: Variant,
    policy: RemediationPolicy,
) -> RemediatedRun {
    run_with(w, size, variant, Mode::Seeded(policy))
}

enum Mode {
    Baseline,
    Adaptive,
    Seeded(RemediationPolicy),
}

fn run_with(w: &dyn Workload, size: ProblemSize, variant: Variant, mode: Mode) -> RemediatedRun {
    let stream = matches!(mode, Mode::Adaptive);
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream,
        ..Default::default()
    });
    let mut rt = Runtime::new(RuntimeConfig::default());
    rt.attach_tool(Box::new(tool));

    let live_policy = match mode {
        Mode::Baseline => None,
        Mode::Adaptive => {
            let (remediator, policy) = LiveRemediator::new(handle.clone());
            rt.attach_advisor(Box::new(remediator));
            Some(policy)
        }
        Mode::Seeded(policy) => {
            let (remediator, shared) = SharedRemediator::seeded(policy);
            rt.attach_advisor(Box::new(remediator.fork_advisor()));
            Some(shared)
        }
    };

    let dbg = w.run(&mut rt, size, variant);
    let stats = rt.finish();
    let remedy_stats = rt.remediation_stats();

    let trace = handle.take_trace();
    let report = if let Some(mut engine) = handle.take_stream_engine() {
        // Adaptive mode ran the detectors online; finalize against the
        // trace (byte-identical to post-mortem) instead of re-detecting.
        let view = EventView::from_log(&trace);
        let findings = engine.finalize(&view);
        ompdataperf::analysis::analyze_with_findings(
            &trace,
            Some(&dbg),
            w.name(),
            handle.console_lines(),
            findings,
        )
    } else {
        ompdataperf::analysis::analyze_named(&trace, Some(&dbg), w.name(), handle.console_lines())
    };

    let remediation = match &live_policy {
        Some(policy) => RemediationReport::new(
            &policy.lock(),
            &remedy_stats,
            stats.bytes_transferred,
            stats.transfer_time,
        ),
        None => RemediationReport::new(
            &RemediationPolicy::new(),
            &remedy_stats,
            stats.bytes_transferred,
            stats.transfer_time,
        ),
    };

    RemediatedRun {
        report,
        remediation,
        stats,
    }
}

// ---------------------------------------------------------------------
// Threaded drivers: the same three modes over a SHARED device data
// environment (odp_sim::run_on_threads_shared) with one policy behind
// per-thread advisor handles (remedy::SharedRemediator).
// ---------------------------------------------------------------------

/// Threaded baseline: `threads` OS threads drive the workload against
/// one shared device set, no advisor — the comparison point for the
/// threaded adaptive/seeded runs.
pub fn run_baseline_threaded(
    w: &dyn Workload,
    threads: u32,
    size: ProblemSize,
    variant: Variant,
) -> RemediatedRun {
    run_with_threads(w, threads, size, variant, Mode::Baseline)
}

/// Threaded adaptive run: every thread's advisor handle shares one
/// live-fed policy, so a pattern one thread diagnoses rewrites every
/// thread's subsequent regions.
pub fn run_adaptive_threaded(
    w: &dyn Workload,
    threads: u32,
    size: ProblemSize,
    variant: Variant,
) -> RemediatedRun {
    run_with_threads(w, threads, size, variant, Mode::Adaptive)
}

/// Threaded re-run with a pre-seeded policy shared by all threads.
pub fn run_seeded_threaded(
    w: &dyn Workload,
    threads: u32,
    size: ProblemSize,
    variant: Variant,
    policy: RemediationPolicy,
) -> RemediatedRun {
    run_with_threads(w, threads, size, variant, Mode::Seeded(policy))
}

/// Build the advisor set (and the policy cell for reporting) for a
/// threaded run. Shared with the CLI's `--remediate --threads` path.
pub fn threaded_advisors(
    handle: &ToolHandle,
    threads: u32,
    mode_adaptive: bool,
    seeded: Option<RemediationPolicy>,
) -> (Vec<Option<Box<dyn MapAdvisor>>>, Option<SharedPolicyCell>) {
    let remediator = if mode_adaptive {
        Some(SharedRemediator::new(handle.clone()))
    } else {
        seeded.map(SharedRemediator::seeded)
    };
    match remediator {
        None => (Vec::new(), None),
        Some((remediator, policy)) => (
            (0..threads)
                .map(|_| Some(Box::new(remediator.fork_advisor()) as Box<dyn MapAdvisor>))
                .collect(),
            Some(policy),
        ),
    }
}

fn run_with_threads(
    w: &dyn Workload,
    threads: u32,
    size: ProblemSize,
    variant: Variant,
    mode: Mode,
) -> RemediatedRun {
    let stream = matches!(mode, Mode::Adaptive);
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream,
        ..Default::default()
    });
    let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
    for _ in 1..threads {
        tools.push(Box::new(handle.fork_tool()));
    }
    let (advisors, live_policy) = match mode {
        Mode::Baseline => (Vec::new(), None),
        Mode::Adaptive => threaded_advisors(&handle, threads, true, None),
        Mode::Seeded(policy) => threaded_advisors(&handle, threads, false, Some(policy)),
    };

    let run = crate::threaded::run_threaded_shared(
        w,
        threads,
        size,
        variant,
        &RuntimeConfig::default(),
        tools,
        advisors,
    );

    let trace = handle.take_trace();
    let report = if let Some(mut engine) = handle.take_stream_engine() {
        let view = EventView::from_log(&trace);
        let findings = engine.finalize(&view);
        ompdataperf::analysis::analyze_with_findings(
            &trace,
            Some(&run.dbg),
            w.name(),
            handle.console_lines(),
            findings,
        )
    } else {
        ompdataperf::analysis::analyze_named(
            &trace,
            Some(&run.dbg),
            w.name(),
            handle.console_lines(),
        )
    };

    let remediation = match &live_policy {
        Some(policy) => RemediationReport::new(
            &policy.lock(),
            &run.remediation,
            run.stats.bytes_transferred,
            run.stats.transfer_time,
        ),
        None => RemediationReport::new(
            &RemediationPolicy::new(),
            &run.remediation,
            run.stats.bytes_transferred,
            run.stats.transfer_time,
        ),
    };

    RemediatedRun {
        report,
        remediation,
        stats: run.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_babelstream_recovers_transfer_time_in_one_run() {
        let w = crate::babelstream::BabelStream;
        let baseline = run_baseline(&w, ProblemSize::Small, Variant::Original);
        let adaptive = run_adaptive(&w, ProblemSize::Small, Variant::Original);
        assert!(
            adaptive.remediation.recovered_time().as_nanos() > 0,
            "live findings must rewrite later iterations"
        );
        assert!(
            adaptive.stats.bytes_transferred < baseline.stats.bytes_transferred,
            "adaptive run must move strictly fewer bytes ({} vs {})",
            adaptive.stats.bytes_transferred,
            baseline.stats.bytes_transferred
        );
        // Detection stayed live: the adaptive run still reports the
        // issues it saw before the rewrites kicked in.
        assert!(adaptive.report.counts.total() > 0);
        assert!(adaptive.report.counts.dd < baseline.report.counts.dd);
    }

    #[test]
    fn baseline_runs_apply_no_rewrites() {
        let w = crate::babelstream::BabelStream;
        let baseline = run_baseline(&w, ProblemSize::Small, Variant::Original);
        assert!(baseline.remediation.rows.is_empty());
        assert_eq!(baseline.remediation.recovered_transfer_bytes, 0);
    }
}
