//! minife — Mantevo's finite-element proxy (conjugate-gradient solve).
//!
//! §7.5: "The issues detected in minife were fixable by extending the
//! lifetime of intermediate variables used on the target device and
//! result in a speedup of 1.07× for the large problem size."
//!
//! Original structure: the CG temporaries `p` and `Ap` are zeroed on the
//! host and re-mapped around *every* iteration (the short-lifetime
//! mapping the paper fixes). With `iters` iterations this yields, at
//! Medium (`iters = 200`):
//!
//! * RA = 2·(iters−1) = 398 (each temporary reallocated per iteration);
//! * DD = 402: the zero images of `x`, `x_old` and the 400 per-iteration
//!   zero images of `p`/`Ap` form one 402-reception group (401), plus
//!   `r`'s initial image duplicating `b`'s (r = b at CG start);
//! * RT = 4: every 50 iterations a defensive `update from(r)` /
//!   `update to(r)` convergence-check pair bounces unchanged bytes.
//!
//! Fixed: `p` mapped `to:` once, `Ap` mapped `alloc:` once, no update
//! pairs → DD = 3 (x/x_old/p zero group + b/r), RT = RA = 0 — exactly
//! Table 1's minife (fix) row.

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The minife workload.
pub struct MiniFe;

struct Params {
    n: usize,
    iters: usize,
    /// Degrees of freedom of the *paper's* problem (nx·ny·nz from
    /// Table 5). Kernel costs are modeled at paper scale so the
    /// compute/communication ratio — and hence the speedup from fixing
    /// the mapping (1.07× at Large, §7.5) — matches the real program,
    /// even though the in-memory arrays are scaled down.
    paper_n: u64,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            n: 2048,
            iters: 100,
            paper_n: 66 * 64 * 64,
        },
        ProblemSize::Medium => Params {
            n: 4096,
            iters: 200,
            paper_n: 132 * 128 * 128,
        },
        ProblemSize::Large => Params {
            n: 8192,
            iters: 400,
            paper_n: 264 * 256 * 256,
        },
    }
}

impl Workload for MiniFe {
    fn name(&self) -> &'static str {
        "minife"
    }

    fn domain(&self) -> &'static str {
        "Finite Element Analysis"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "-nx 66 -ny 64 -nz 64",
            ProblemSize::Medium => "-nx 132 -ny 128 -nz 128",
            ProblemSize::Large => "-nx 264 -ny 256 -nz 256",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.n;
        let bytes = n * 8;
        let fixed = variant == Variant::Fixed;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "minife/cg_solve.hpp", 0x45_0000);
        let cp_region = sf.line(88, "cg_solve");
        let cp_temp = sf.line(104, "cg_solve");
        let cp_initp = sf.line(112, "cg_solve");
        let cp_matvec = sf.line(120, "matvec");
        let cp_axpy = sf.line(131, "axpy");
        let cp_check = sf.line(142, "cg_solve");

        let b = rt.host_alloc("b", bytes);
        rt.host_fill_f64(b, |i| 1.0 + ((i * 37) % 101) as f64 * 0.01);
        let r = rt.host_alloc("r", bytes);
        let b_copy = rt.host_read_f64(b);
        {
            let dst = rt.host_bytes_mut(r);
            for (chunk, v) in dst.chunks_exact_mut(8).zip(&b_copy) {
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        }
        let x = rt.host_alloc("x", bytes);
        let x_old = rt.host_alloc("x_old", bytes);
        let pv = rt.host_alloc("p", bytes);
        let ap = rt.host_alloc("Ap", bytes);

        // Long-lived solver state.
        let mut maps = vec![
            map(MapType::To, b),
            map(MapType::To, r),
            map(MapType::To, x),
            map(MapType::To, x_old),
        ];
        if fixed {
            // The fix: temporaries live as long as the solve.
            maps.push(map(MapType::To, pv)); // one more zero image
            maps.push(map(MapType::Alloc, ap)); // no transfer at all
        }
        let region = rt.target_data_begin(0, cp_region, &maps);

        let kcost = KernelCost::scaled(p.paper_n);
        for iter in 0..p.iters {
            if !fixed {
                // The inefficiency: zeroed temporaries remapped per
                // iteration.
                rt.host_bytes_mut(pv).fill(0);
                rt.host_bytes_mut(ap).fill(0);
                rt.target_enter_data(0, cp_temp, &[map(MapType::To, pv), map(MapType::To, ap)]);
            }
            if !fixed && iter % 50 == 49 {
                // Defensive convergence check: copy the residual out and
                // push the identical bytes straight back.
                rt.target_update_from(0, cp_check, &[r]);
                rt.host_load(r);
                rt.target_update_to(0, cp_check, &[r]);
            }

            // p = r  (steepest-descent-style restart keeps the math
            // simple while the arrays still evolve every iteration).
            let mut init_p = |view: &mut DeviceView<'_>| {
                let rv = view.read_f64(r);
                view.write_f64(pv, &rv);
            };
            rt.target(
                0,
                cp_initp,
                &[map(MapType::To, r), map(MapType::To, pv)],
                Kernel::new("init_p", kcost)
                    .reads(&[r])
                    .writes(&[pv])
                    .body(&mut init_p),
            );

            // Ap = A·p for the 1-D Laplacian stencil.
            let mut matvec = |view: &mut DeviceView<'_>| {
                let pvv = view.read_f64(pv);
                let mut out = vec![0.0f64; n];
                for i in 0..n {
                    let left = if i > 0 { pvv[i - 1] } else { 0.0 };
                    let right = if i + 1 < n { pvv[i + 1] } else { 0.0 };
                    out[i] = 2.0 * pvv[i] - left - right;
                }
                view.write_f64(ap, &out);
            };
            rt.target(
                0,
                cp_matvec,
                &[map(MapType::To, pv), map(MapType::To, ap)],
                Kernel::new("matvec", kcost)
                    .reads(&[pv])
                    .writes(&[ap])
                    .body(&mut matvec),
            );

            // x += α p;  r -= α Ap.
            let alpha = 0.01;
            let mut axpy = |view: &mut DeviceView<'_>| {
                let pvv = view.read_f64(pv);
                let apv = view.read_f64(ap);
                let mut xv = view.read_f64(x);
                let mut rv = view.read_f64(r);
                for i in 0..n {
                    xv[i] += alpha * pvv[i];
                    rv[i] -= alpha * apv[i];
                }
                view.write_f64(x, &xv);
                view.write_f64(r, &rv);
            };
            rt.target(
                0,
                cp_axpy,
                &[
                    map(MapType::To, pv),
                    map(MapType::To, ap),
                    map(MapType::To, x),
                    map(MapType::To, r),
                ],
                Kernel::new("axpy", kcost)
                    .reads(&[pv, ap, x, r])
                    .writes(&[x, r])
                    .body(&mut axpy),
            );

            if !fixed {
                rt.target_exit_data(
                    0,
                    cp_temp,
                    &[map(MapType::Delete, pv), map(MapType::Delete, ap)],
                );
            }
        }

        // Bring the solution home.
        rt.target_update_from(0, cp_check, &[x]);
        rt.host_load(x);
        rt.target_data_end(region);
        dbg
    }
}
