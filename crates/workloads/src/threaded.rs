//! Multi-threaded workload execution.
//!
//! [`run_threaded`] drives one workload's offload pattern from N real
//! OS threads at once: every thread owns a simulated [`Runtime`] (its
//! own virtual clock and data environment — the rank-per-thread shape)
//! and an attached tool shard, so the attached collector observes
//! genuinely concurrent OMPT callbacks. Because each thread's virtual
//! timeline is deterministic and sharded traces merge by `(timestamp,
//! shard, per-shard order)`, the merged observation is identical across
//! runs regardless of OS scheduling — while the callback *interleaving*
//! (what the sharded fast path and the watermark merge must survive) is
//! real.

use crate::{ProblemSize, Variant, Workload};
use odp_ompt::{MapAdvisor, RemediationStats, Tool};
use odp_sim::{
    run_on_threads, run_on_threads_shared, Runtime, RuntimeConfig, RuntimeStats, SharedDevices,
};
use ompdataperf::attrib::DebugInfo;

/// Run `workload` on `threads` OS threads, each against its own runtime
/// with `tools[i]` attached (fork them from one
/// `ompdataperf::tool::ToolHandle`). Returns the workload's debug info
/// (identical on every thread; the first is returned) and the merged
/// run statistics.
///
/// # Panics
/// When the workload does not support threaded execution
/// ([`Workload::supports_threads`]) or `tools.len() != threads`.
pub fn run_threaded(
    workload: &dyn Workload,
    threads: u32,
    size: ProblemSize,
    variant: Variant,
    cfg: &RuntimeConfig,
    tools: Vec<Box<dyn Tool>>,
) -> (DebugInfo, RuntimeStats) {
    assert!(
        workload.supports_threads(),
        "{} does not support --threads",
        workload.name()
    );
    let results = run_on_threads(threads, cfg, tools, |_, rt: &mut Runtime| {
        workload.run(rt, size, variant)
    });
    let stats: Vec<RuntimeStats> = results.iter().map(|(_, s)| *s).collect();
    let dbg = results
        .into_iter()
        .map(|(d, _)| d)
        .next()
        .unwrap_or_else(|| panic!("no worker threads ran"));
    (dbg, odp_sim::merged_stats(&stats))
}

/// Outcome of a shared-device threaded workload run.
pub struct SharedThreadedRun {
    /// The workload's debug info (identical on every thread).
    pub dbg: DebugInfo,
    /// Merged run statistics across the threads.
    pub stats: RuntimeStats,
    /// Per-thread advisor rewrites, merged.
    pub remediation: RemediationStats,
    /// The device set the threads shared.
    pub devices: SharedDevices,
}

/// Run `workload` on `threads` OS threads that share **one** device
/// data environment (`odp_sim::run_on_threads_shared`) — the true
/// `libomptarget` shape, where cross-thread present-table reuse and
/// contention are real. Each thread gets `tools[i]` and, when
/// provided, `advisors[i]` (fork the advisors from one
/// `ompdataperf::remedy::SharedRemediator`).
///
/// # Panics
/// When the workload does not support threaded execution, or the tool
/// or advisor counts mismatch `threads`.
pub fn run_threaded_shared(
    workload: &dyn Workload,
    threads: u32,
    size: ProblemSize,
    variant: Variant,
    cfg: &RuntimeConfig,
    tools: Vec<Box<dyn Tool>>,
    advisors: Vec<Option<Box<dyn MapAdvisor>>>,
) -> SharedThreadedRun {
    assert!(
        workload.supports_threads(),
        "{} does not support --threads",
        workload.name()
    );
    let outcome = run_on_threads_shared(threads, cfg, tools, advisors, |_, rt: &mut Runtime| {
        workload.run(rt, size, variant)
    });
    let stats: Vec<RuntimeStats> = outcome.results.iter().map(|(_, s)| *s).collect();
    let dbg = outcome
        .results
        .into_iter()
        .map(|(d, _)| d)
        .next()
        .unwrap_or_else(|| panic!("no worker threads ran"));
    SharedThreadedRun {
        dbg,
        stats: odp_sim::merged_stats(&stats),
        remediation: outcome.remediation,
        devices: outcome.devices,
    }
}

/// The workloads with threaded variants.
pub fn threaded_workloads() -> Vec<Box<dyn Workload>> {
    crate::all()
        .into_iter()
        .filter(|w| w.supports_threads())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

    #[test]
    fn the_three_threaded_workloads_are_marked() {
        let names: Vec<&str> = threaded_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["babelstream", "bfs", "xsbench"]);
    }

    #[test]
    fn threaded_run_produces_a_deterministic_merged_trace() {
        fn run_once(threads: u32) -> String {
            let w = crate::by_name("babelstream").unwrap();
            let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
            let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
            for _ in 1..threads {
                tools.push(Box::new(handle.fork_tool()));
            }
            let (_dbg, stats) = run_threaded(
                &*w,
                threads,
                ProblemSize::Small,
                Variant::Original,
                &RuntimeConfig::default(),
                tools,
            );
            assert!(stats.kernels > 0);
            handle.take_trace().to_json()
        }
        let a = run_once(3);
        let b = run_once(3);
        assert_eq!(a, b, "merged trace must not depend on OS scheduling");
    }

    #[test]
    #[should_panic(expected = "does not support --threads")]
    fn unthreaded_workloads_are_rejected() {
        let w = crate::by_name("hotspot").unwrap();
        let (tool, _handle) = OmpDataPerfTool::new(ToolConfig::default());
        let _ = run_threaded(
            &*w,
            1,
            ProblemSize::Small,
            Variant::Original,
            &RuntimeConfig::default(),
            vec![Box::new(tool)],
        );
    }
}
