//! babelstream — synthetic GPU memory-bandwidth benchmark (STREAM).
//!
//! §7.5: "babelstream is a GPU memory benchmark and the DDs and RAs are
//! caused by reallocating and transferring data and results between
//! repeated test runs, which appears to be an intentional part of the
//! benchmark."
//!
//! Structure: `-n` test runs; each run re-maps the initialization array
//! (identical content every run → one DD per re-run) inside a fresh data
//! region (→ one RA per re-run), then executes the five STREAM kernels
//! (copy, mul, add, triad, dot) on persistently mapped `b`, `c`.
//! Table 1 (Medium, `-n 500`): DD = 499, RA = 499, everything else 0.

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The babelstream workload.
pub struct BabelStream;

struct Params {
    runs: usize,
    elems: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        // Paper: -n 100 -s 1048576 / -n 500 -s 33554432 / -n 2500 -s 33554432.
        // Element counts are scaled down; run counts are preserved (they
        // define the Table 1 issue counts).
        ProblemSize::Small => Params {
            runs: 100,
            elems: 4096,
        },
        ProblemSize::Medium => Params {
            runs: 500,
            elems: 16384,
        },
        ProblemSize::Large => Params {
            runs: 2500,
            elems: 16384,
        },
    }
}

const SCALAR: f64 = 0.4;

impl Workload for BabelStream {
    fn name(&self) -> &'static str {
        "babelstream"
    }

    fn domain(&self) -> &'static str {
        "Memory Bandwidth"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "-n 100 -s 1048576",
            ProblemSize::Medium => "-n 500 -s 33554432",
            ProblemSize::Large => "-n 2500 -s 33554432",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        // The paper's (syn) row for babelstream equals the original —
        // no extra issues were injected into an intentional pattern.
        // SynFixed persists the init array (for Figure 4's babelstream
        // points), though the paper deems the pattern intentional.
        matches!(
            variant,
            Variant::Original | Variant::Synthetic | Variant::SynFixed
        )
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::SynFixed))
    }

    /// BabelStream's kernel loop is embarrassingly parallel across host
    /// threads — each drives its own copy of the triad pattern.
    fn supports_threads(&self) -> bool {
        true
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.elems;
        let bytes = n * 8;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "babelstream/OMPStream.cpp", 0x40_0000);
        let cp_persist = sf.line(61, "OMPStream::OMPStream");
        let cp_run_region = sf.line(105, "run_all");
        let cp_copy = sf.line(121, "OMPStream::copy");
        let cp_mul = sf.line(133, "OMPStream::mul");
        let cp_add = sf.line(145, "OMPStream::add");
        let cp_triad = sf.line(157, "OMPStream::triad");
        let cp_dot = sf.line(169, "OMPStream::dot");

        let a_init = rt.host_alloc("a_init", bytes);
        rt.host_fill_f64(a_init, |_| 0.1);
        let b = rt.host_alloc("b", bytes);
        rt.host_fill_f64(b, |_| 0.2);
        let c = rt.host_alloc("c", bytes);
        rt.host_fill_f64(c, |_| 0.3);
        let sum = rt.host_alloc("sum", 8);

        // b, c and the dot-product result live on the device for the
        // whole benchmark (a per-run `tofrom` on `sum` would add its own
        // reallocation-and-bounce pattern, which real babelstream does
        // not have).
        let persist = rt.target_data_begin(
            0,
            cp_persist,
            &[
                map(MapType::ToFrom, b),
                map(MapType::ToFrom, c),
                map(MapType::ToFrom, sum),
            ],
        );

        // The repaired variant maps the init array once for the whole
        // benchmark instead of once per test run.
        let fixed = variant == Variant::SynFixed;
        let outer = if fixed {
            Some(rt.target_data_begin(0, cp_run_region, &[map(MapType::To, a_init)]))
        } else {
            None
        };

        let cost = KernelCost::scaled((n as u64) * 2);
        for run in 0..p.runs {
            // Each test run re-maps the (identical) initialization array:
            // the intentional DD + RA pattern.
            let region = if fixed {
                None
            } else {
                Some(rt.target_data_begin(0, cp_run_region, &[map(MapType::To, a_init)]))
            };

            let mut copy = |view: &mut DeviceView<'_>| {
                let av = view.read_f64(a_init);
                view.write_f64(c, &av);
            };
            rt.target(
                0,
                cp_copy,
                &[map(MapType::To, a_init), map(MapType::To, c)],
                Kernel::new("copy", cost)
                    .reads(&[a_init])
                    .writes(&[c])
                    .body(&mut copy),
            );

            let mut mul = |view: &mut DeviceView<'_>| {
                let cv = view.read_f64(c);
                let bv: Vec<f64> = cv.iter().map(|x| SCALAR * x).collect();
                view.write_f64(b, &bv);
            };
            rt.target(
                0,
                cp_mul,
                &[map(MapType::To, b), map(MapType::To, c)],
                Kernel::new("mul", cost)
                    .reads(&[c])
                    .writes(&[b])
                    .body(&mut mul),
            );

            let run_f = run as f64;
            let mut add = |view: &mut DeviceView<'_>| {
                let av = view.read_f64(a_init);
                let bv = view.read_f64(b);
                let cv: Vec<f64> = av
                    .iter()
                    .zip(&bv)
                    .map(|(x, y)| x + y + run_f * 1e-9)
                    .collect();
                view.write_f64(c, &cv);
            };
            rt.target(
                0,
                cp_add,
                &[
                    map(MapType::To, a_init),
                    map(MapType::To, b),
                    map(MapType::To, c),
                ],
                Kernel::new("add", cost)
                    .reads(&[a_init, b])
                    .writes(&[c])
                    .body(&mut add),
            );

            let mut triad = |view: &mut DeviceView<'_>| {
                let bv = view.read_f64(b);
                let cv = view.read_f64(c);
                let out: Vec<f64> = bv.iter().zip(&cv).map(|(y, z)| y + SCALAR * z).collect();
                view.write_f64(b, &out);
            };
            rt.target(
                0,
                cp_triad,
                &[map(MapType::To, b), map(MapType::To, c)],
                Kernel::new("triad", cost)
                    .reads(&[b, c])
                    .writes(&[b])
                    .body(&mut triad),
            );

            let mut dot = |view: &mut DeviceView<'_>| {
                let bv = view.read_f64(b);
                let cv = view.read_f64(c);
                let s: f64 = bv.iter().zip(&cv).map(|(y, z)| y * z).sum();
                view.write_f64(sum, &[s]);
            };
            rt.target(
                0,
                cp_dot,
                &[
                    map(MapType::To, b),
                    map(MapType::To, c),
                    map(MapType::To, sum),
                ],
                Kernel::new("dot", cost)
                    .reads(&[b, c])
                    .writes(&[sum])
                    .body(&mut dot),
            );

            if let Some(r) = region {
                rt.target_data_end(r);
            }
        }

        if let Some(r) = outer {
            rt.target_data_end(r);
        }
        rt.target_data_end(persist);
        dbg
    }
}
