//! # odp-workloads — the paper's evaluation programs
//!
//! Each benchmark from §7.2 is re-implemented against the simulated
//! OpenMP offload runtime with the *data-mapping structure* of the real
//! program — including every inefficiency the paper reports in Table 1 —
//! and real (scaled-down) numerics inside kernels so transfer payloads
//! evolve honestly.
//!
//! Three variants exist per program (where the paper evaluates them):
//!
//! * [`Variant::Original`] — the shipped mapping structure, with its
//!   inefficiencies;
//! * [`Variant::Fixed`] — the paper's §7.5 fixes applied;
//! * [`Variant::Synthetic`] — the paper's injected artificial issues
//!   (Table 1's "(syn)" rows).
//!
//! Table 5's input strings are preserved verbatim for reporting; the
//! internal problem scales are reduced so the whole suite runs in
//! seconds on a laptop (see EXPERIMENTS.md for the mapping).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adaptive;
pub mod babelstream;
pub mod bfs;
pub mod capture;
pub mod hecbench;
pub mod hotspot;
pub mod inject;
pub mod lud;
pub mod minife;
pub mod minifmm;
pub mod nw;
pub mod rsbench;
pub mod tealeaf;
pub mod threaded;
pub mod xsbench;

#[cfg(test)]
mod tests_variants;

use odp_sim::Runtime;
use ompdataperf::attrib::DebugInfo;

/// Problem size selector (Table 5 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProblemSize {
    /// The paper's Small input.
    Small,
    /// The paper's Medium input (Table 1 counts are for this size).
    Medium,
    /// The paper's Large input.
    Large,
}

impl ProblemSize {
    /// All sizes.
    pub const ALL: [ProblemSize; 3] = [ProblemSize::Small, ProblemSize::Medium, ProblemSize::Large];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProblemSize::Small => "Small",
            ProblemSize::Medium => "Medium",
            ProblemSize::Large => "Large",
        }
    }

    /// Index 0/1/2.
    pub fn index(self) -> usize {
        match self {
            ProblemSize::Small => 0,
            ProblemSize::Medium => 1,
            ProblemSize::Large => 2,
        }
    }
}

/// Program variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The shipped program.
    Original,
    /// With the paper's fixes applied (§7.5).
    Fixed,
    /// With the paper's synthetic issues injected (Table 1 "(syn)").
    Synthetic,
    /// The synthetic program with its injected issues repaired (same
    /// kernels, efficient mappings) — the "after" side of Figure 4 for
    /// programs whose only issues were injected.
    SynFixed,
}

impl Variant {
    /// Display suffix as used in Table 1.
    pub fn suffix(self) -> &'static str {
        match self {
            Variant::Original => "",
            Variant::Fixed => " (fix)",
            Variant::Synthetic => " (syn)",
            Variant::SynFixed => " (syn-fix)",
        }
    }
}

/// A benchmark program.
pub trait Workload: Send + Sync {
    /// Program name (Table 1/5 row).
    fn name(&self) -> &'static str;

    /// Application domain (Table 5).
    fn domain(&self) -> &'static str;

    /// The paper's input string for `size` (Table 5, verbatim).
    fn paper_input(&self, size: ProblemSize) -> &'static str;

    /// Does the paper evaluate this variant for this program?
    fn supports(&self, variant: Variant) -> bool {
        variant == Variant::Original
    }

    /// Can this program run its offload pattern from several host
    /// threads at once (`--threads N`)? Threaded workloads must be
    /// deterministic per thread: each host thread drives its own data
    /// environment with the same directive structure, which is how the
    /// multi-threaded collection path gets exercised end to end.
    fn supports_threads(&self) -> bool {
        false
    }

    /// The (before, after) variant pair this program contributes to the
    /// predicted-vs-actual speedup experiment (Figure 4), if any.
    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        None
    }

    /// Execute the program against `rt`, returning its debug info
    /// (the "-g" compilation) for source attribution.
    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo;
}

/// The ten benchmarks of §7.2, Table 1 order.
pub fn paper_benchmarks() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(babelstream::BabelStream),
        Box::new(bfs::Bfs),
        Box::new(hotspot::Hotspot),
        Box::new(lud::Lud),
        Box::new(minife::MiniFe),
        Box::new(minifmm::MiniFmm),
        Box::new(nw::Nw),
        Box::new(rsbench::RsBench),
        Box::new(tealeaf::TeaLeaf),
        Box::new(xsbench::XsBench),
    ]
}

/// The five HeCBench programs of §7.7, Table 2 order.
pub fn hecbench_programs() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(hecbench::resize::Resize),
        Box::new(hecbench::mandelbrot::Mandelbrot),
        Box::new(hecbench::accuracy::Accuracy),
        Box::new(hecbench::lif::Lif),
        Box::new(hecbench::bspline::BsplineVgh),
    ]
}

/// Every workload.
pub fn all() -> Vec<Box<dyn Workload>> {
    let mut v = paper_benchmarks();
    v.extend(hecbench_programs());
    v
}

/// Find a workload by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_paper_benchmarks_in_table_order() {
        let names: Vec<_> = paper_benchmarks().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "babelstream",
                "bfs",
                "hotspot",
                "lud",
                "minife",
                "minifmm",
                "nw",
                "rsbench",
                "tealeaf",
                "xsbench"
            ]
        );
    }

    #[test]
    fn five_hecbench_programs() {
        let names: Vec<_> = hecbench_programs().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "resize-omp",
                "mandelbrot-omp",
                "accuracy-omp",
                "lif-omp",
                "bspline-vgh-omp"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("bfs").is_some());
        assert!(by_name("BFS").is_some());
        assert!(by_name("bspline-vgh-omp").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn every_workload_has_three_paper_inputs() {
        for w in all() {
            for s in ProblemSize::ALL {
                assert!(!w.paper_input(s).is_empty(), "{} {:?}", w.name(), s);
            }
        }
    }

    #[test]
    fn variant_support_matches_table1() {
        let fixed: Vec<_> = all()
            .iter()
            .filter(|w| w.supports(Variant::Fixed))
            .map(|w| w.name().to_string())
            .collect();
        assert!(fixed.contains(&"bfs".to_string()));
        assert!(fixed.contains(&"minife".to_string()));
        assert!(fixed.contains(&"rsbench".to_string()));
        assert!(fixed.contains(&"xsbench".to_string()));
        let syn: Vec<_> = all()
            .iter()
            .filter(|w| w.supports(Variant::Synthetic))
            .map(|w| w.name().to_string())
            .collect();
        for expect in ["babelstream", "hotspot", "lud", "minifmm", "nw", "tealeaf"] {
            assert!(syn.contains(&expect.to_string()), "{expect} missing (syn)");
        }
    }
}
