//! Cross-variant invariants for the workload suite, checked at the
//! Small size so they stay cheap enough for every CI run.

use crate::{ProblemSize, Variant};
use odp_sim::Runtime;

/// Virtual runtime of one run.
fn sim_time(name: &str, variant: Variant) -> u64 {
    let w = crate::by_name(name).unwrap();
    let mut rt = Runtime::with_defaults();
    w.run(&mut rt, ProblemSize::Small, variant);
    rt.finish().total_time.as_nanos()
}

#[test]
fn fixes_always_speed_programs_up() {
    for name in ["bfs", "minife", "rsbench", "xsbench"] {
        let orig = sim_time(name, Variant::Original);
        let fixed = sim_time(name, Variant::Fixed);
        assert!(
            fixed < orig,
            "{name}: fixed ({fixed} ns) not faster than original ({orig} ns)"
        );
    }
}

#[test]
fn synthetic_issues_always_slow_programs_down() {
    for name in ["hotspot", "lud", "minifmm", "nw", "tealeaf"] {
        let orig = sim_time(name, Variant::Original);
        let syn = sim_time(name, Variant::Synthetic);
        assert!(
            syn > orig,
            "{name}: synthetic ({syn} ns) not slower than original ({orig} ns)"
        );
    }
}

#[test]
fn syn_fixed_sits_between_original_and_synthetic() {
    for name in ["lud", "nw", "minifmm"] {
        let orig = sim_time(name, Variant::Original);
        let syn = sim_time(name, Variant::Synthetic);
        let syn_fixed = sim_time(name, Variant::SynFixed);
        assert!(
            syn_fixed < syn,
            "{name}: repairing injections must help ({syn_fixed} vs {syn})"
        );
        assert!(
            syn_fixed >= orig,
            "{name}: the repaired synthetic program keeps its scaffolding \
             kernels, so it cannot beat the original ({syn_fixed} vs {orig})"
        );
    }
}

#[test]
fn runs_are_deterministic() {
    for name in ["bfs", "tealeaf", "bspline-vgh-omp"] {
        let a = sim_time(name, Variant::Original);
        let b = sim_time(name, Variant::Original);
        assert_eq!(a, b, "{name}: nondeterministic virtual time");
    }
}

#[test]
fn xsbench_moves_more_data_than_rsbench() {
    // The defining contrast between the two Argonne proxies (rsbench is
    // the "reduced data movement algorithm", its paper's title).
    let bytes = |name: &str| {
        let w = crate::by_name(name).unwrap();
        let mut rt = Runtime::with_defaults();
        w.run(&mut rt, ProblemSize::Medium, Variant::Original);
        rt.finish().bytes_transferred
    };
    assert!(bytes("xsbench") > 4 * bytes("rsbench"));
}
