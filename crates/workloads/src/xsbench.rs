//! xsbench — Argonne's Monte Carlo neutron-transport cross-section
//! lookup proxy (event-based mode).
//!
//! §7.5: "Both rsbench and xsbench had a single RT caused by a missing
//! map clause for the input struct, which unnecessarily copied the input
//! back from the GPU; we fixed these issues."
//!
//! The `SimulationData` aggregate is referenced by the lookup kernel
//! without an explicit map clause → implicit `tofrom` → its unmodified
//! bytes ride back to the host after the kernel: one round trip.
//! Table 1: RT = 1 (original), clean after the fix.

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The xsbench workload.
pub struct XsBench;

struct Params {
    lookups: usize,
    grid: usize,
}

fn params(size: ProblemSize) -> Params {
    // The cross-section grids are the defining trait of xsbench: the
    // unionized energy grid is gigabytes in the paper's "-s large"
    // configuration, which is why xsbench shows the worst profiling
    // overhead in Figure 2 (1.33×) — hashing a huge one-shot transfer.
    // We keep the grids big relative to the kernel so that character
    // survives the scale-down.
    match size {
        ProblemSize::Small => Params {
            lookups: 20_000,
            grid: 512 * 1024,
        },
        ProblemSize::Medium => Params {
            lookups: 100_000,
            grid: 2 * 1024 * 1024,
        },
        ProblemSize::Large => Params {
            lookups: 400_000,
            grid: 4 * 1024 * 1024,
        },
    }
}

impl Workload for XsBench {
    fn name(&self) -> &'static str {
        "xsbench"
    }

    fn domain(&self) -> &'static str {
        "Neutron Transport"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "-m event -s small",
            ProblemSize::Medium => "-m event -g 1413",
            ProblemSize::Large => "-m event -s large",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    /// XSBench's event-based lookups are independent per host thread
    /// (the real program is OpenMP-threaded on the host side).
    fn supports_threads(&self) -> bool {
        true
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        run_xs_style(
            rt,
            "xsbench/Simulation.c",
            0x48_0000,
            p.grid,
            p.lookups,
            variant == Variant::Fixed,
        )
    }
}

/// Shared shape of the two cross-section benchmarks: a large read-only
/// grid, a `SimulationData` aggregate with a missing map clause, and one
/// event-based lookup kernel writing a verification array.
pub(crate) fn run_xs_style(
    rt: &mut Runtime,
    file: &str,
    base: u64,
    grid_size: usize,
    lookups: usize,
    fixed: bool,
) -> DebugInfo {
    let mut dbg = DebugInfo::new();
    let mut sf = SourceFile::new(&mut dbg, file, base);
    let cp_kernel = sf.line(71, "run_event_based_simulation");

    let grid = rt.host_alloc("energy_grid", grid_size * 8);
    // Cheap deterministic pseudo-random fill (a sin() here would cost
    // more host time than the whole offload phase at Large sizes).
    rt.host_fill_f64(grid, |i| {
        let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        0.01 + x as f64 * 1e-6
    });
    // The input aggregate (problem description, pointers, sizes).
    let sim_data = rt.host_alloc("SD", 512);
    rt.host_fill_u32(sim_data, |i| {
        (grid_size as u32).wrapping_mul(31).wrapping_add(i as u32)
    });
    let verification = rt.host_alloc("verification", lookups.min(4096) * 8);

    let sd_map = if fixed {
        // The fix: an explicit map(to:) stops the copy-back.
        map(MapType::To, sim_data)
    } else {
        // Missing map clause → implicit tofrom (the round trip).
        map(MapType::ToFrom, sim_data)
    };

    let vlen = lookups.min(4096);
    let mut lookup = |view: &mut DeviceView<'_>| {
        let g = view.read_f64(grid);
        let mut verif = vec![0.0f64; vlen];
        let mut seed = 0x9E3779B97F4A7C15u64;
        for l in 0..lookups {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ix = (seed >> 33) as usize % g.len();
            // A toy macroscopic cross-section accumulation.
            let xs = g[ix] * 0.8 + g[(ix + 7) % g.len()] * 0.2;
            verif[l % vlen] += xs;
        }
        view.write_f64(verification, &verif);
    };
    rt.target(
        0,
        cp_kernel,
        &[
            map(MapType::To, grid),
            sd_map,
            map(MapType::From, verification),
        ],
        Kernel::new(
            "xs_lookup_kernel",
            KernelCost::scaled((lookups * 16) as u64),
        )
        .reads(&[grid, sim_data])
        .writes(&[verification])
        .body(&mut lookup),
    );
    rt.host_load(verification);
    dbg
}
