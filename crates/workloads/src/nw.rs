//! nw — Rodinia's Needleman-Wunsch sequence alignment (bioinformatics,
//! dynamic programming over anti-diagonals).
//!
//! The shipped mapping is clean (Table 1: all zeros); the synthetic
//! variant injects DD 8, RA 4, UA 1, UT 3 (Medium).

use crate::inject::InjectionPlan;
use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The nw workload.
pub struct Nw;

fn dim(size: ProblemSize) -> usize {
    match size {
        ProblemSize::Small => 64,
        ProblemSize::Medium => 128,
        ProblemSize::Large => 256,
    }
}

fn syn_plan(size: ProblemSize) -> InjectionPlan {
    let medium = InjectionPlan {
        dd: 8,
        rt: 0,
        ra: 4,
        ua: 1,
        ut: 3,
    };
    match size {
        ProblemSize::Small => medium.scaled(1, 2),
        ProblemSize::Medium => medium,
        ProblemSize::Large => medium.scaled(2, 1),
    }
}

impl Workload for Nw {
    fn name(&self) -> &'static str {
        "nw"
    }

    fn domain(&self) -> &'static str {
        "Bioinformatics"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "512 10 2",
            ProblemSize::Medium => "2048 10 2",
            ProblemSize::Large => "8192 10 2",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(
            variant,
            Variant::Original | Variant::Synthetic | Variant::SynFixed
        )
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Synthetic, Variant::SynFixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let n = dim(size);
        let penalty = 10i32;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "rodinia/nw/needle.cpp", 0x44_0000);
        let cp_region = sf.line(112, "runTest");
        let cp_kernel1 = sf.line(130, "runTest");
        let cp_kernel2 = sf.line(155, "runTest");

        let input = rt.host_alloc("input_itemsets", n * n * 4);
        rt.host_fill_u32(input, |i| {
            let (r, c) = (i / n, i % n);
            if r == 0 {
                (c as i32 * -penalty) as u32
            } else if c == 0 {
                (r as i32 * -penalty) as u32
            } else {
                0
            }
        });
        let reference = rt.host_alloc("reference", n * n * 4);
        rt.host_fill_u32(reference, |i| ((i * 2654435761) % 21) as u32);

        let region = rt.target_data_begin(
            0,
            cp_region,
            &[map(MapType::ToFrom, input), map(MapType::To, reference)],
        );

        // Forward pass over anti-diagonals (upper-left triangle), then
        // the lower-right triangle — the two kernels of Rodinia's nw.
        let mut forward = |view: &mut DeviceView<'_>| {
            let refm = view.read_u32(reference);
            let mut f: Vec<i32> = view.read_u32(input).iter().map(|&x| x as i32).collect();
            for d in 1..n {
                for r in 1..=d {
                    let c = d - r + 1;
                    if c >= n || r >= n {
                        continue;
                    }
                    let ix = r * n + c;
                    let m = (f[ix - n - 1] + refm[ix] as i32)
                        .max(f[ix - 1] - penalty)
                        .max(f[ix - n] - penalty);
                    f[ix] = m;
                }
            }
            let out: Vec<u32> = f.iter().map(|&x| x as u32).collect();
            view.write_u32(input, &out);
        };
        rt.target(
            0,
            cp_kernel1,
            &[map(MapType::To, input), map(MapType::To, reference)],
            Kernel::new("nw_forward", KernelCost::scaled((n * n) as u64))
                .reads(&[input, reference])
                .writes(&[input])
                .body(&mut forward),
        );

        let mut backward = |view: &mut DeviceView<'_>| {
            let refm = view.read_u32(reference);
            let mut f: Vec<i32> = view.read_u32(input).iter().map(|&x| x as i32).collect();
            for d in (1..n - 1).rev() {
                for r in (n - d)..n {
                    let c = n - 1 - (r - (n - d));
                    if r == 0 || c == 0 || c >= n {
                        continue;
                    }
                    let ix = r * n + c;
                    let m = (f[ix - n - 1] + refm[ix] as i32)
                        .max(f[ix - 1] - penalty)
                        .max(f[ix - n] - penalty);
                    f[ix] = m;
                }
            }
            let out: Vec<u32> = f.iter().map(|&x| x as u32).collect();
            view.write_u32(input, &out);
        };
        rt.target(
            0,
            cp_kernel2,
            &[map(MapType::To, input), map(MapType::To, reference)],
            Kernel::new("nw_backward", KernelCost::scaled((n * n) as u64))
                .reads(&[input, reference])
                .writes(&[input])
                .body(&mut backward),
        );

        rt.target_data_end(region);

        if matches!(variant, Variant::Synthetic | Variant::SynFixed) {
            syn_plan(size).apply(rt, &mut sf, 0, variant == Variant::SynFixed);
        }
        dbg
    }
}
