//! bspline-vgh-omp — HeCBench B-spline value/gradient/hessian evaluation
//! (quantum Monte Carlo walkers; the paper's §7.7 motivating example,
//! Listing 3).
//!
//! Table 2: OMPDataPerf reports **DD, UA, UT**; Arbalest-Vec reports
//! **UUM** on `walkers_vals[0]`, `walkers_grads[0]`, `walkers_hess[0]` —
//! all three "write-only inside the kernel" (masked vector stores), i.e.
//! false positives. Table 3: 6.736 s → 5.899 s after the OMPDataPerf fix
//! (≈14 % speedup, "99 % reduction in the number of calls to copy data
//! to the device", ≈169 KB extra device memory).
//!
//! Original (Listing 3 "before"): nine small coefficient arrays are
//! mapped `alloc:` over the walker loop and refreshed with `target
//! update to` every iteration; three of them (`a`, `b`, `c`) carry
//! identical bytes every time → duplicates. Fixed (Listing 3 "after"):
//! the arrays are enlarged `4 → 4·WSIZE` entries, initialized up front,
//! and copied once.

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime, VarId};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The bspline-vgh-omp workload.
pub struct BsplineVgh;

struct Params {
    wsize: usize,
    nknots: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            wsize: 150,
            nknots: 256,
        },
        // 9 arrays × 4 doubles × 600 walkers ≈ 169 KB of extra device
        // memory in the fixed version, matching §7.7.
        ProblemSize::Medium => Params {
            wsize: 600,
            nknots: 512,
        },
        ProblemSize::Large => Params {
            wsize: 1200,
            nknots: 1024,
        },
    }
}

const COEF_NAMES: [&str; 9] = ["a", "b", "c", "da", "db", "dc", "d2a", "d2b", "d2c"];

impl Workload for BsplineVgh {
    fn name(&self) -> &'static str {
        "bspline-vgh-omp"
    }

    fn domain(&self) -> &'static str {
        "Simulation"
    }

    fn paper_input(&self, _size: ProblemSize) -> &'static str {
        "(Makefile default)"
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let fixed = variant == Variant::Fixed;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "hecbench/bspline-vgh-omp/main.cpp", 0x54_0000);
        let cp_scratch = sf.line(35, "main");
        let cp_region = sf.line(52, "main");
        let cp_update = sf.line(63, "main");
        let cp_kernel = sf.line(88, "bspline_vgh_kernel");
        let cp_tail = sf.line(131, "main");

        // Walker outputs — written via masked vector stores (AV's FPs).
        let walkers_vals = rt.host_alloc("walkers_vals", p.wsize * 8);
        let walkers_grads = rt.host_alloc("walkers_grads", p.wsize * 8 * 3);
        let walkers_hess = rt.host_alloc("walkers_hess", p.wsize * 8 * 6);
        let knots = rt.host_alloc("spline_knots", p.nknots * 8);
        rt.host_fill_f64(knots, |i| (i as f64 * 0.11).cos());

        // Coefficient arrays: 4 doubles each in the original; 4·WSIZE in
        // the fixed version (the §7.7 "increase the size" fix).
        let coef_len = if fixed { 4 * p.wsize } else { 4 };
        let coefs: Vec<VarId> = COEF_NAMES
            .iter()
            .map(|nm| rt.host_alloc(nm, coef_len * 8))
            .collect();

        if !fixed {
            // An early staging buffer freed before any kernel → UA.
            let staging = rt.host_alloc("walker_staging", 1024);
            rt.target_enter_data(0, cp_scratch, &[map(MapType::Alloc, staging)]);
            rt.target_exit_data(0, cp_scratch, &[map(MapType::Delete, staging)]);
        }

        let mut maps = vec![
            map(MapType::From, walkers_vals),
            map(MapType::From, walkers_grads),
            map(MapType::From, walkers_hess),
            map(MapType::To, knots),
        ];
        if fixed {
            // Initialize every walker's coefficients up front, copy once.
            for (ci, &cv) in coefs.iter().enumerate() {
                rt.host_fill_f64(cv, |i| coef_value(ci, i / 4, i % 4));
                maps.push(map(MapType::To, cv));
            }
        } else {
            for &cv in &coefs {
                maps.push(map(MapType::Alloc, cv));
            }
        }
        let region = rt.target_data_begin(0, cp_region, &maps);

        let wsize = p.wsize;
        // Kernel cost at paper scale (the full spline evaluation per
        // walker): with the 9 per-walker `update to` calls costing
        // ~81 µs against a ~560 µs kernel, the fix lands at Table 3's
        // ≈1.14× — §7.7's "14 % speedup in execution time".
        let kcost = KernelCost::scaled(56_000_000);
        for w in 0..wsize {
            if !fixed {
                // Re-initialize the 4-entry arrays for this walker and
                // update them all to the device (Listing 3 "before").
                // `a`, `b`, `c` are walker-independent → identical bytes
                // every iteration → duplicates.
                for (ci, &cv) in coefs.iter().enumerate() {
                    rt.host_fill_f64(cv, |i| coef_value(ci, w, i));
                    rt.target_update_to(0, cp_update, &[cv]);
                }
            }

            let mut kernel = |view: &mut DeviceView<'_>| {
                let kv = view.read_f64(knots);
                let offset = if fixed { 4 * w } else { 0 };
                let a = view.read_f64(coefs[0]);
                let da = view.read_f64(coefs[3]);
                let d2a = view.read_f64(coefs[6]);
                let mut val = 0.0;
                let mut grad = 0.0;
                let mut hess = 0.0;
                for t in 0..4 {
                    let k = kv[(w * 7 + t * 13) % kv.len()];
                    val += a[offset + t] * k;
                    grad += da[offset + t] * k;
                    hess += d2a[offset + t] * k * k;
                }
                let mut vals = view.read_f64(walkers_vals);
                vals[w] = val;
                view.write_f64(walkers_vals, &vals);
                let mut grads = view.read_f64(walkers_grads);
                for d in 0..3 {
                    grads[w * 3 + d] = grad * (d + 1) as f64;
                }
                view.write_f64(walkers_grads, &grads);
                let mut hs = view.read_f64(walkers_hess);
                for d in 0..6 {
                    hs[w * 6 + d] = hess * (d + 1) as f64 * 0.5;
                }
                view.write_f64(walkers_hess, &hs);
            };
            let mut kmaps = vec![
                map(MapType::To, knots),
                map(MapType::To, walkers_vals),
                map(MapType::To, walkers_grads),
                map(MapType::To, walkers_hess),
            ];
            kmaps.extend(coefs.iter().map(|&c| map(MapType::To, c)));
            rt.target(
                0,
                cp_kernel,
                &kmaps,
                Kernel::new("bspline_vgh", kcost)
                    .reads(&[knots, coefs[0], coefs[3], coefs[6]])
                    .masked_writes(&[walkers_vals, walkers_grads, walkers_hess])
                    .body(&mut kernel),
            );
        }

        if !fixed {
            // A defensive refresh of `a` after the last kernel → UT.
            rt.target_update_to(0, cp_tail, &[coefs[0]]);
        }

        rt.target_data_end(region);
        rt.host_load(walkers_vals);
        dbg
    }
}

/// Deterministic per-walker coefficient initialization ("non-trivial
/// multiplications of non-constant data"). `a`, `b`, `c` (indices 0–2)
/// are walker-independent; the derivative arrays vary per walker.
fn coef_value(coef_ix: usize, walker: usize, entry: usize) -> f64 {
    let base = (coef_ix as f64 + 1.0) * 0.37 + (entry as f64 + 1.0) * 0.011;
    if coef_ix < 3 {
        base * 1.5
    } else {
        base * (1.0 + walker as f64 * 0.013)
    }
}
