//! The five HeCBench programs of §7.7 (Table 2/3).
//!
//! Chosen by the paper "because they contain kernels that are used in
//! Computer Vision, Machine Learning, and Simulation". Each module
//! documents which issues OMPDataPerf reports, which (false-positive)
//! anomalies Arbalest-Vec reports, and what the §7.7 fix changes.

pub mod accuracy;
pub mod bspline;
pub mod lif;
pub mod mandelbrot;
pub mod resize;
