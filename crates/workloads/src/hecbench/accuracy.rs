//! accuracy-omp — HeCBench top-1 accuracy kernel (machine learning).
//!
//! Table 2: OMPDataPerf reports **DD, UA, UT**; Arbalest-Vec reports
//! nothing (every device buffer is transfer-initialized, every store is
//! plain). Table 3: 11.644 s → 11.640 s (the issues are real but cheap —
//! ≈0.03 %).

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The accuracy-omp workload.
pub struct Accuracy;

struct Params {
    rows: usize,
    classes: usize,
    batches: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            rows: 512,
            classes: 64,
            batches: 4,
        },
        ProblemSize::Medium => Params {
            rows: 2048,
            classes: 128,
            batches: 10,
        },
        ProblemSize::Large => Params {
            rows: 8192,
            classes: 256,
            batches: 20,
        },
    }
}

impl Workload for Accuracy {
    fn name(&self) -> &'static str {
        "accuracy-omp"
    }

    fn domain(&self) -> &'static str {
        "Machine Learning"
    }

    fn paper_input(&self, _size: ProblemSize) -> &'static str {
        "8192 10000 10 100"
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.rows * p.classes;
        let fixed = variant == Variant::Fixed;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "hecbench/accuracy-omp/main.cpp", 0x52_0000);
        let cp_region = sf.line(60, "main");
        let cp_label = sf.line(72, "main");
        let cp_kernel = sf.line(90, "accuracy_kernel");
        let cp_scratch = sf.line(105, "main");

        let logits = rt.host_alloc("logits", n * 4);
        rt.host_fill_f32(logits, |i| ((i * 31 % 977) as f32) * 0.013);
        let labels = rt.host_alloc("labels", p.rows * 4);
        rt.host_fill_u32(labels, |i| ((i * 7) % p.classes) as u32);
        let correct = rt.host_alloc("count", 4);

        let region = rt.target_data_begin(
            0,
            cp_region,
            &[
                map(MapType::To, logits),
                map(MapType::To, labels),
                map(MapType::ToFrom, correct),
            ],
        );

        let rows = p.rows;
        let classes = p.classes;
        // Kernel cost at paper scale (8192×10000 logits per batch): the
        // few small redundant transfers all but vanish against it —
        // Table 3's 11.644→11.640 s (≈0.03 %).
        let kcost = KernelCost::scaled(8192 * 10_000);
        for batch in 0..p.batches {
            if !fixed && batch % 2 == 1 {
                // Defensive re-send of the unchanged label array → DD.
                rt.target_update_to(0, cp_label, &[labels]);
            }
            let mut count_correct = |view: &mut DeviceView<'_>| {
                let lg = view.read_f32(logits);
                let lb = view.read_u32(labels);
                let mut c = view.scalar_u32(correct, 0);
                for r in 0..rows {
                    let mut best = 0usize;
                    for k in 1..classes {
                        if lg[r * classes + k] > lg[r * classes + best] {
                            best = k;
                        }
                    }
                    if best as u32 == lb[r] {
                        c = c.wrapping_add(1);
                    }
                }
                view.set_scalar_u32(correct, 0, c.wrapping_add(batch as u32));
            };
            rt.target(
                0,
                cp_kernel,
                &[
                    map(MapType::To, logits),
                    map(MapType::To, labels),
                    map(MapType::To, correct),
                ],
                Kernel::new("accuracy_kernel", kcost)
                    .reads(&[logits, labels, correct])
                    .writes(&[correct])
                    .body(&mut count_correct),
            );
        }

        if !fixed {
            // A scratch histogram allocated and freed after the last
            // kernel — unused allocation — and a final defensive re-send
            // of the logits after the last kernel — unused transfer.
            let scratch = rt.host_alloc("histo_scratch", 2048);
            rt.target_enter_data(0, cp_scratch, &[map(MapType::Alloc, scratch)]);
            rt.target_exit_data(0, cp_scratch, &[map(MapType::Delete, scratch)]);
            rt.target_update_to(0, cp_scratch, &[logits]);
        }

        rt.target_data_end(region);
        rt.host_load(correct);
        dbg
    }
}
