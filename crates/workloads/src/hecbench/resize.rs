//! resize-omp — HeCBench image-resize kernel (computer vision).
//!
//! Table 2: OMPDataPerf reports **DD, RA**; Arbalest-Vec reports
//! nothing. Table 3: 11.604 s → 11.065 s after fixing (≈4.6 %).
//!
//! The frame loop remaps the unchanged source image around every frame
//! (duplicate transfer + reallocation per frame) and reallocates the
//! output. The output is written with plain stores, so Arbalest has
//! nothing to say. The fix maps both images once.

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The resize-omp workload.
pub struct Resize;

struct Params {
    width: usize,
    frames: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            width: 64,
            frames: 40,
        },
        // Table 3 uses the Makefile defaults — treated as Medium.
        ProblemSize::Medium => Params {
            width: 128,
            frames: 100,
        },
        ProblemSize::Large => Params {
            width: 256,
            frames: 200,
        },
    }
}

impl Workload for Resize {
    fn name(&self) -> &'static str {
        "resize-omp"
    }

    fn domain(&self) -> &'static str {
        "Computer Vision"
    }

    fn paper_input(&self, _size: ProblemSize) -> &'static str {
        "(Makefile default)"
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let w = p.width;
        let n = w * w;
        let out_w = w / 2;
        let out_n = out_w * out_w;
        let fixed = variant == Variant::Fixed;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "hecbench/resize-omp/main.cpp", 0x50_0000);
        let cp_region = sf.line(48, "main");
        let cp_kernel = sf.line(73, "resize_kernel");

        let src = rt.host_alloc("srcImage", n * 4);
        rt.host_fill_u32(src, |i| ((i * 2654435761) >> 8) as u32 & 0xff_ffff);
        let dst = rt.host_alloc("dstImage", out_n * 4);

        let outer = if fixed {
            Some(rt.target_data_begin(
                0,
                cp_region,
                &[map(MapType::To, src), map(MapType::Alloc, dst)],
            ))
        } else {
            None
        };

        // Kernel cost at paper scale (a 4K frame, ~8 ops/pixel): the
        // per-frame remap overhead is ~5 % of a frame, which is what
        // puts the measured fix at Table 3's ≈1.05×.
        let kcost = KernelCost::scaled(3840 * 2160 * 8);
        let _ = n;
        for frame in 0..p.frames {
            let region = if fixed {
                None
            } else {
                // The inefficiency: src re-sent (unchanged) and dst
                // reallocated every frame.
                Some(rt.target_data_begin(
                    0,
                    cp_region,
                    &[map(MapType::To, src), map(MapType::Alloc, dst)],
                ))
            };

            let fseed = frame as u32;
            let mut resize = |view: &mut DeviceView<'_>| {
                let s = view.read_u32(src);
                let mut d = vec![0u32; out_n];
                for r in 0..out_w {
                    for c in 0..out_w {
                        let a = s[(2 * r) * w + 2 * c];
                        let b = s[(2 * r) * w + 2 * c + 1];
                        let e = s[(2 * r + 1) * w + 2 * c];
                        let f = s[(2 * r + 1) * w + 2 * c + 1];
                        d[r * out_w + c] = ((a / 4 + b / 4 + e / 4 + f / 4) & 0xff_ffff) ^ fseed;
                    }
                }
                view.write_u32(dst, &d);
            };
            rt.target(
                0,
                cp_kernel,
                &[map(MapType::To, src), map(MapType::To, dst)],
                Kernel::new("resize_kernel", kcost)
                    .reads(&[src])
                    .writes(&[dst])
                    .body(&mut resize),
            );
            rt.target_update_from(0, cp_kernel, &[dst]);
            rt.host_load(dst);

            if let Some(r) = region {
                rt.target_data_end(r);
            }
        }
        if let Some(r) = outer {
            rt.target_data_end(r);
        }
        dbg
    }
}
