//! lif-omp — HeCBench leaky-integrate-and-fire neuron model
//! (simulation).
//!
//! Table 2: OMPDataPerf reports **nothing** (the mapping is already
//! efficient); Arbalest-Vec reports **UUM** — a false positive on
//! `spikes[0]`, which is only written inside the kernel, through a
//! conditional (masked) store when the membrane potential crosses the
//! threshold. Table 3: 10.802 s, no applicable fix from either tool.

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The lif-omp workload.
pub struct Lif;

struct Params {
    neurons: usize,
    steps: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            neurons: 1024,
            steps: 20,
        },
        ProblemSize::Medium => Params {
            neurons: 4096,
            steps: 50,
        },
        ProblemSize::Large => Params {
            neurons: 16384,
            steps: 100,
        },
    }
}

impl Workload for Lif {
    fn name(&self) -> &'static str {
        "lif-omp"
    }

    fn domain(&self) -> &'static str {
        "Simulation"
    }

    fn paper_input(&self, _size: ProblemSize) -> &'static str {
        "(Makefile default)"
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, _variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.neurons;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "hecbench/lif-omp/main.cpp", 0x53_0000);
        let cp_region = sf.line(44, "main");
        let cp_kernel = sf.line(66, "lif_kernel");

        let potential = rt.host_alloc("v_membrane", n * 4);
        rt.host_fill_f32(potential, |i| -65.0 + (i % 11) as f32 * 0.4);
        let current = rt.host_alloc("i_input", n * 4);
        rt.host_fill_f32(current, |i| 1.2 + ((i * 13) % 17) as f32 * 0.05);
        // Spike raster: written only when a neuron fires → masked store.
        let spikes = rt.host_alloc("spikes", n);

        let region = rt.target_data_begin(
            0,
            cp_region,
            &[
                map(MapType::ToFrom, potential),
                map(MapType::To, current),
                map(MapType::From, spikes),
            ],
        );

        let kcost = KernelCost::scaled((n * 4) as u64);
        for step in 0..p.steps {
            let dt = 0.1f32;
            let noise = (step as f32 * 0.37).sin() * 0.01;
            let mut lif = |view: &mut DeviceView<'_>| {
                let mut v = view.read_f32(potential);
                let i_in = view.read_f32(current);
                let mut s = view.bytes(spikes).to_vec();
                for k in 0..n {
                    // dv/dt = (-(v - v_rest) + R·I) / tau
                    v[k] += dt * (-(v[k] + 65.0) + 10.0 * i_in[k]) / 10.0 + noise;
                    if v[k] > -50.0 {
                        v[k] = -65.0;
                        s[k] = s[k].saturating_add(1); // conditional store
                    }
                }
                view.write_f32(potential, &v);
                view.bytes_mut(spikes).copy_from_slice(&s);
            };
            rt.target(
                0,
                cp_kernel,
                &[
                    map(MapType::To, potential),
                    map(MapType::To, current),
                    map(MapType::To, spikes),
                ],
                Kernel::new("lif_kernel", kcost)
                    .reads(&[potential, current])
                    .writes(&[potential])
                    .masked_writes(&[spikes])
                    .body(&mut lif),
            );
        }

        rt.target_data_end(region);
        rt.host_load(spikes);
        dbg
    }
}
