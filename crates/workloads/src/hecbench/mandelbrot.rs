//! mandelbrot-omp — HeCBench Mandelbrot-set kernel.
//!
//! Table 2: OMPDataPerf reports **DD, RA, UA**; Arbalest-Vec reports
//! **UUM** — a false positive on `b[0]`, which is "write-only inside the
//! kernel" but stored through vector-masked iteration-count writes.
//! Table 3: 3.974 s → 3.950 s after fixing (≈0.6 %).

use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The mandelbrot-omp workload.
pub struct Mandelbrot;

struct Params {
    dim: usize,
    tiles: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params { dim: 64, tiles: 8 },
        ProblemSize::Medium => Params {
            dim: 128,
            tiles: 16,
        },
        ProblemSize::Large => Params {
            dim: 256,
            tiles: 32,
        },
    }
}

impl Workload for Mandelbrot {
    fn name(&self) -> &'static str {
        "mandelbrot-omp"
    }

    fn domain(&self) -> &'static str {
        "Computer Vision"
    }

    fn paper_input(&self, _size: ProblemSize) -> &'static str {
        "(Makefile default)"
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(variant, Variant::Original | Variant::Fixed)
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Original, Variant::Fixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let n = p.dim * p.dim;
        let fixed = variant == Variant::Fixed;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "hecbench/mandelbrot-omp/main.cpp", 0x51_0000);
        let cp_scratch = sf.line(40, "main");
        let cp_region = sf.line(55, "main");
        let cp_kernel = sf.line(78, "mandelbrot_kernel");

        // The constant view-parameters block, re-mapped per tile (DD+RA).
        let params_blk = rt.host_alloc("view_params", 64);
        rt.host_fill_u32(params_blk, |i| 0xC0FFEE ^ (i as u32 * 7));
        // Iteration-count output, written with masked stores (UUM FP).
        let b = rt.host_alloc("b", n * 4);
        // A scratch color table allocated early and freed before any
        // kernel runs — the unused allocation.
        if !fixed {
            let scratch = rt.host_alloc("color_scratch", 4096);
            rt.target_enter_data(0, cp_scratch, &[map(MapType::Alloc, scratch)]);
            rt.target_exit_data(0, cp_scratch, &[map(MapType::Delete, scratch)]);
        }

        let outer = rt.target_data_begin(0, cp_region, &[map(MapType::Alloc, b)]);
        let outer_params = if fixed {
            Some(rt.target_data_begin(0, cp_region, &[map(MapType::To, params_blk)]))
        } else {
            None
        };

        let dim = p.dim;
        let tiles = p.tiles;
        let rows_per_tile = dim / tiles.min(dim);
        // Kernel cost at paper scale (4096² pixels, ~256 average escape
        // iterations, split across the tiles): the tiny per-tile
        // constants remap is then ≈0.6 % of the work — Table 3's
        // 3.974→3.950 s.
        let kcost = KernelCost::scaled(4096u64 * 4096 * 256 / tiles as u64);
        let _ = n;
        for tile in 0..tiles {
            let region = if fixed {
                None
            } else {
                Some(rt.target_data_begin(0, cp_region, &[map(MapType::To, params_blk)]))
            };

            let row0 = tile * rows_per_tile;
            let mut kernel = |view: &mut DeviceView<'_>| {
                let mut out = view.read_u32(b);
                for r in row0..(row0 + rows_per_tile).min(dim) {
                    for c in 0..dim {
                        let x0 = -2.0 + 3.0 * c as f64 / dim as f64;
                        let y0 = -1.5 + 3.0 * r as f64 / dim as f64;
                        let (mut x, mut y) = (0.0f64, 0.0f64);
                        let mut it = 0u32;
                        while x * x + y * y <= 4.0 && it < 64 {
                            let xt = x * x - y * y + x0;
                            y = 2.0 * x * y + y0;
                            x = xt;
                            it += 1;
                        }
                        out[r * dim + c] = it;
                    }
                }
                view.write_u32(b, &out);
            };
            rt.target(
                0,
                cp_kernel,
                &[map(MapType::To, params_blk), map(MapType::To, b)],
                Kernel::new("mandelbrot_kernel", kcost)
                    .reads(&[params_blk])
                    .masked_writes(&[b])
                    .body(&mut kernel),
            );

            if let Some(r) = region {
                rt.target_data_end(r);
            }
        }

        rt.target_update_from(0, cp_kernel, &[b]);
        rt.host_load(b);
        if let Some(r) = outer_params {
            rt.target_data_end(r);
        }
        rt.target_data_end(outer);
        dbg
    }
}
