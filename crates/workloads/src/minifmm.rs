//! minifmm — University of Bristol's fast-multipole-method proxy
//! (task-parallel particle physics).
//!
//! §7.5 groups minifmm with the programs whose only duplicates arise
//! "when data is first mapped on the device during initialization, e.g.,
//! multiple zero-initialized arrays of the same length ... not in
//! performance-critical code, so they aren't worth fixing."
//! Table 1: DD = 3 — four identical zero expansion arrays mapped at
//! start-up. The synthetic variant adds DD 72, RT 64, RA 57, UA 57,
//! UT 76 to reach the "(syn)" row (75/64/57/57/76).

use crate::inject::InjectionPlan;
use crate::{ProblemSize, Variant, Workload};
use odp_model::MapType;
use odp_sim::{map, DeviceView, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};

/// The minifmm workload.
pub struct MiniFmm;

struct Params {
    bodies: usize,
    terms: usize,
    passes: usize,
}

fn params(size: ProblemSize) -> Params {
    match size {
        ProblemSize::Small => Params {
            bodies: 512,
            terms: 256,
            passes: 2,
        },
        ProblemSize::Medium => Params {
            bodies: 2048,
            terms: 1024,
            passes: 3,
        },
        ProblemSize::Large => Params {
            bodies: 8192,
            terms: 4096,
            passes: 4,
        },
    }
}

fn syn_plan(size: ProblemSize) -> InjectionPlan {
    let medium = InjectionPlan {
        dd: 72,
        rt: 64,
        ra: 57,
        ua: 57,
        ut: 76,
    };
    match size {
        ProblemSize::Small => medium.scaled(1, 2),
        ProblemSize::Medium => medium,
        ProblemSize::Large => medium.scaled(2, 1),
    }
}

impl Workload for MiniFmm {
    fn name(&self) -> &'static str {
        "minifmm"
    }

    fn domain(&self) -> &'static str {
        "Particle Physics"
    }

    fn paper_input(&self, size: ProblemSize) -> &'static str {
        match size {
            ProblemSize::Small => "-n 100",
            ProblemSize::Medium => "-n 1000",
            ProblemSize::Large => "-n 10000",
        }
    }

    fn supports(&self, variant: Variant) -> bool {
        matches!(
            variant,
            Variant::Original | Variant::Synthetic | Variant::SynFixed
        )
    }

    fn fig4_pair(&self) -> Option<(Variant, Variant)> {
        Some((Variant::Synthetic, Variant::SynFixed))
    }

    fn run(&self, rt: &mut Runtime, size: ProblemSize, variant: Variant) -> DebugInfo {
        let p = params(size);
        let nb = p.bodies;
        let mut dbg = DebugInfo::new();
        let mut sf = SourceFile::new(&mut dbg, "minifmm/fmm.c", 0x46_0000);
        let cp_region = sf.line(201, "fmm_run");
        let cp_upward = sf.line(220, "upward_pass");
        let cp_dtt = sf.line(248, "dtt_pass");
        let cp_downward = sf.line(276, "downward_pass");

        // Particle state.
        let pos = rt.host_alloc("positions", nb * 8 * 3);
        rt.host_fill_f64(pos, |i| ((i * 2654435761) % 1000) as f64 * 0.001);
        let charge = rt.host_alloc("charges", nb * 8);
        rt.host_fill_f64(charge, |i| 1.0 + (i % 7) as f64 * 0.1);
        // Four zero-initialized expansion arrays of identical length: the
        // initialization duplicates (3 DD).
        let multipoles = rt.host_alloc("multipoles", p.terms * 8);
        let locals = rt.host_alloc("locals", p.terms * 8);
        let accel = rt.host_alloc("accel", p.terms * 8);
        let potentials = rt.host_alloc("potentials", p.terms * 8);

        let region = rt.target_data_begin(
            0,
            cp_region,
            &[
                map(MapType::To, pos),
                map(MapType::To, charge),
                map(MapType::To, multipoles),
                map(MapType::To, locals),
                map(MapType::ToFrom, accel),
                map(MapType::ToFrom, potentials),
            ],
        );

        let kcost = KernelCost::scaled((nb * 32) as u64);
        for pass in 0..p.passes {
            let phase = pass as f64;
            let mut upward = |view: &mut DeviceView<'_>| {
                let q = view.read_f64(charge);
                let mut m = view.read_f64(multipoles);
                for (i, mi) in m.iter_mut().enumerate() {
                    *mi += q[i % q.len()] * (1.0 + phase * 0.25);
                }
                view.write_f64(multipoles, &m);
            };
            rt.target(
                0,
                cp_upward,
                &[map(MapType::To, charge), map(MapType::To, multipoles)],
                Kernel::new("upward", kcost)
                    .reads(&[charge, pos])
                    .writes(&[multipoles])
                    .body(&mut upward),
            );

            let mut dtt = |view: &mut DeviceView<'_>| {
                let m = view.read_f64(multipoles);
                let mut l = view.read_f64(locals);
                for (i, li) in l.iter_mut().enumerate() {
                    *li += m[i] * 0.5 + 0.125 * phase;
                }
                view.write_f64(locals, &l);
            };
            rt.target(
                0,
                cp_dtt,
                &[map(MapType::To, multipoles), map(MapType::To, locals)],
                Kernel::new("dual_tree_traversal", kcost)
                    .reads(&[multipoles, pos])
                    .writes(&[locals])
                    .body(&mut dtt),
            );

            let mut downward = |view: &mut DeviceView<'_>| {
                let l = view.read_f64(locals);
                let mut a = view.read_f64(accel);
                let mut ph = view.read_f64(potentials);
                for i in 0..a.len() {
                    a[i] += l[i] * 0.1;
                    ph[i] += l[i] * 0.01 + phase * 1e-6;
                }
                view.write_f64(accel, &a);
                view.write_f64(potentials, &ph);
            };
            rt.target(
                0,
                cp_downward,
                &[
                    map(MapType::To, locals),
                    map(MapType::To, accel),
                    map(MapType::To, potentials),
                ],
                Kernel::new("downward", kcost)
                    .reads(&[locals])
                    .writes(&[accel, potentials])
                    .body(&mut downward),
            );
        }

        rt.target_data_end(region);

        if matches!(variant, Variant::Synthetic | Variant::SynFixed) {
            syn_plan(size).apply(rt, &mut sf, 0, variant == Variant::SynFixed);
        }
        dbg
    }
}
