//! Code-pointer interning for 24-byte target records.
//!
//! Target constructs repeat a handful of code pointers (one per directive
//! in the source), so the 24-byte record stores a `u32` index into this
//! table instead of the raw 8-byte pointer.

use odp_model::CodePtr;
use std::collections::HashMap;

/// Interning table mapping code pointers to dense `u32` indices.
#[derive(Debug, Default)]
pub struct CodePtrTable {
    by_ptr: HashMap<u64, u32>,
    ptrs: Vec<u64>,
}

impl CodePtrTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `ptr`, returning its stable index.
    pub fn intern(&mut self, ptr: CodePtr) -> u32 {
        if let Some(&ix) = self.by_ptr.get(&ptr.0) {
            return ix;
        }
        let ix = self.ptrs.len() as u32;
        self.ptrs.push(ptr.0);
        self.by_ptr.insert(ptr.0, ix);
        ix
    }

    /// Resolve an index back to the code pointer.
    pub fn resolve(&self, ix: u32) -> CodePtr {
        self.ptrs
            .get(ix as usize)
            .map(|&p| CodePtr(p))
            .unwrap_or(CodePtr::NULL)
    }

    /// Number of distinct pointers interned.
    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.ptrs.is_empty()
    }

    /// Approximate heap bytes used by the table (counted toward tool space
    /// overhead).
    pub fn allocated_bytes(&self) -> usize {
        self.ptrs.capacity() * std::mem::size_of::<u64>()
            + self.by_ptr.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = CodePtrTable::new();
        let a = t.intern(CodePtr(0x100));
        let b = t.intern(CodePtr(0x200));
        assert_ne!(a, b);
        assert_eq!(t.intern(CodePtr(0x100)), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = CodePtrTable::new();
        for p in [0x1u64, 0x42, 0xdead_beef] {
            let ix = t.intern(CodePtr(p));
            assert_eq!(t.resolve(ix), CodePtr(p));
        }
    }

    #[test]
    fn unknown_index_resolves_null() {
        let t = CodePtrTable::new();
        assert_eq!(t.resolve(7), CodePtr::NULL);
    }
}
