//! Packed event records.
//!
//! §7.4: "OMPDataPerf allocates 72 B for every OpenMP data transfer event
//! \[and\] 24 B for every target launch event." These structs are laid out
//! to hit exactly those sizes, and the sizes are asserted at compile time
//! so the space-overhead experiment (Figure 3) cannot silently drift.

use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};

/// Size of a [`DataOpRecord`] in bytes.
pub const DATA_OP_RECORD_BYTES: usize = 72;
/// Size of a [`TargetRecord`] in bytes.
pub const TARGET_RECORD_BYTES: usize = 24;

/// Flag: the record's `hash` field is valid.
const FLAG_HAS_HASH: u8 = 1 << 0;

/// A 72-byte data-operation record (alloc / transfer / delete / ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataOpRecord {
    /// Event start, ns.
    pub start: u64,
    /// Event end, ns.
    pub end: u64,
    /// Source address (host address for alloc/delete).
    pub src_addr: u64,
    /// Destination address.
    pub dest_addr: u64,
    /// Bytes moved or allocated.
    pub bytes: u64,
    /// Content hash (valid iff `flags & FLAG_HAS_HASH`).
    pub hash: u64,
    /// Code pointer (raw; data-op records store it inline).
    pub codeptr: u64,
    /// Log sequence number.
    pub seq: u32,
    /// Source device number (-1 = host).
    pub src_dev: i16,
    /// Destination device number (-1 = host).
    pub dest_dev: i16,
    /// Operation kind, encoded.
    pub kind: u8,
    /// Validity flags.
    pub flags: u8,
    /// Explicit padding to reach the advertised 72-byte footprint.
    pub _pad: [u8; 6],
}

// The exact sizes are part of the reproduced claim (§7.4).
const _: () = assert!(std::mem::size_of::<DataOpRecord>() == DATA_OP_RECORD_BYTES);
const _: () = assert!(std::mem::size_of::<TargetRecord>() == TARGET_RECORD_BYTES);

const KIND_ALLOC: u8 = 0;
const KIND_TRANSFER: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_ASSOCIATE: u8 = 3;
const KIND_DISASSOCIATE: u8 = 4;

pub(crate) fn encode_data_op_kind(k: DataOpKind) -> u8 {
    match k {
        DataOpKind::Alloc => KIND_ALLOC,
        DataOpKind::Transfer => KIND_TRANSFER,
        DataOpKind::Delete => KIND_DELETE,
        DataOpKind::Associate => KIND_ASSOCIATE,
        DataOpKind::Disassociate => KIND_DISASSOCIATE,
    }
}

pub(crate) fn decode_data_op_kind(k: u8) -> DataOpKind {
    match k {
        KIND_ALLOC => DataOpKind::Alloc,
        KIND_TRANSFER => DataOpKind::Transfer,
        KIND_DELETE => DataOpKind::Delete,
        KIND_ASSOCIATE => DataOpKind::Associate,
        _ => DataOpKind::Disassociate,
    }
}

impl DataOpRecord {
    /// Build a record from event fields.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        seq: u32,
        kind: DataOpKind,
        src_dev: DeviceId,
        dest_dev: DeviceId,
        src_addr: u64,
        dest_addr: u64,
        bytes: u64,
        hash: Option<u64>,
        span: TimeSpan,
        codeptr: CodePtr,
    ) -> Self {
        DataOpRecord {
            start: span.start.as_nanos(),
            end: span.end.as_nanos(),
            src_addr,
            dest_addr,
            bytes,
            hash: hash.unwrap_or(0),
            codeptr: codeptr.0,
            seq,
            // Device ids come from untrusted callbacks and the record
            // narrows them to i16: saturate instead of wrapping, so a
            // corrupt id (e.g. 0x4000_0000) stays visibly out of range
            // after hydration rather than aliasing a real device.
            src_dev: src_dev.raw().clamp(i16::MIN as i32, i16::MAX as i32) as i16,
            dest_dev: dest_dev.raw().clamp(i16::MIN as i32, i16::MAX as i32) as i16,
            kind: encode_data_op_kind(kind),
            flags: if hash.is_some() { FLAG_HAS_HASH } else { 0 },
            _pad: [0; 6],
        }
    }

    /// Hydrate into the model event the detectors consume.
    pub fn to_event(&self) -> DataOpEvent {
        DataOpEvent {
            id: EventId(self.seq as u64),
            kind: decode_data_op_kind(self.kind),
            src_device: DeviceId(self.src_dev as i32),
            dest_device: DeviceId(self.dest_dev as i32),
            src_addr: self.src_addr,
            dest_addr: self.dest_addr,
            bytes: self.bytes,
            hash: if self.flags & FLAG_HAS_HASH != 0 {
                Some(HashVal(self.hash))
            } else {
                None
            },
            span: TimeSpan::new(SimTime(self.start), SimTime(self.end)),
            codeptr: CodePtr(self.codeptr),
        }
    }
}

const TKIND_REGION: u8 = 0;
const TKIND_KERNEL: u8 = 1;
const TKIND_DATA_REGION: u8 = 2;
const TKIND_ENTER_DATA: u8 = 3;
const TKIND_EXIT_DATA: u8 = 4;
const TKIND_UPDATE: u8 = 5;

pub(crate) fn encode_target_kind(k: TargetKind) -> u8 {
    match k {
        TargetKind::Region => TKIND_REGION,
        TargetKind::Kernel => TKIND_KERNEL,
        TargetKind::DataRegion => TKIND_DATA_REGION,
        TargetKind::EnterData => TKIND_ENTER_DATA,
        TargetKind::ExitData => TKIND_EXIT_DATA,
        TargetKind::Update => TKIND_UPDATE,
    }
}

pub(crate) fn decode_target_kind(k: u8) -> TargetKind {
    match k {
        TKIND_REGION => TargetKind::Region,
        TKIND_KERNEL => TargetKind::Kernel,
        TKIND_DATA_REGION => TargetKind::DataRegion,
        TKIND_ENTER_DATA => TargetKind::EnterData,
        TKIND_EXIT_DATA => TargetKind::ExitData,
        _ => TargetKind::Update,
    }
}

/// A 24-byte target-construct record.
///
/// To fit 24 bytes the code pointer is stored as an index into the log's
/// [`crate::CodePtrTable`] (target constructs are few and repeat the same
/// code pointers, so interning is nearly free), and the sequence number is
/// packed with the device and kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetRecord {
    /// Event start, ns.
    pub start: u64,
    /// Event end, ns.
    pub end: u64,
    /// Interned code-pointer index.
    pub codeptr_ix: u32,
    /// Packed `[seq:18][dev:8][kind:6]` — see accessors.
    pub packed: u32,
}

impl TargetRecord {
    const KIND_BITS: u32 = 6;
    const DEV_BITS: u32 = 8;
    const SEQ_BITS: u32 = 32 - Self::KIND_BITS - Self::DEV_BITS;

    /// Maximum sequence number representable in the packed field.
    pub const MAX_SEQ: u32 = (1 << Self::SEQ_BITS) - 1;

    /// Build a record. `seq` wraps at [`Self::MAX_SEQ`] — hydration orders
    /// records by start time first, so the wrap only affects tie-breaking
    /// among simultaneous events, which cannot occur for target constructs
    /// on one device.
    pub fn new(
        seq: u32,
        device: DeviceId,
        kind: TargetKind,
        span: TimeSpan,
        codeptr_ix: u32,
    ) -> Self {
        let dev = (device.raw().clamp(-1, 254) + 1) as u32; // bias so host (-1) fits
        let packed = ((seq & Self::MAX_SEQ) << (Self::DEV_BITS + Self::KIND_BITS))
            | (dev << Self::KIND_BITS)
            | encode_target_kind(kind) as u32;
        TargetRecord {
            start: span.start.as_nanos(),
            end: span.end.as_nanos(),
            codeptr_ix,
            packed,
        }
    }

    /// Sequence number (wrapped to 18 bits).
    pub fn seq(&self) -> u32 {
        self.packed >> (Self::DEV_BITS + Self::KIND_BITS)
    }

    /// Device the construct targeted.
    pub fn device(&self) -> DeviceId {
        DeviceId(((self.packed >> Self::KIND_BITS) & ((1 << Self::DEV_BITS) - 1)) as i32 - 1)
    }

    /// Construct kind.
    pub fn kind(&self) -> TargetKind {
        decode_target_kind((self.packed & ((1 << Self::KIND_BITS) - 1)) as u8)
    }

    /// Hydrate into the model event, resolving the interned code pointer.
    pub fn to_event(&self, global_seq: u64, codeptr: CodePtr) -> TargetEvent {
        TargetEvent {
            id: EventId(global_seq),
            device: self.device(),
            kind: self.kind(),
            span: TimeSpan::new(SimTime(self.start), SimTime(self.end)),
            codeptr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sizes_match_paper() {
        assert_eq!(std::mem::size_of::<DataOpRecord>(), 72);
        assert_eq!(std::mem::size_of::<TargetRecord>(), 24);
    }

    #[test]
    fn data_op_round_trip() {
        let span = TimeSpan::new(SimTime(100), SimTime(250));
        let r = DataOpRecord::new(
            7,
            DataOpKind::Transfer,
            DeviceId::HOST,
            DeviceId::target(2),
            0x1000,
            0x2000,
            4096,
            Some(0xdeadbeef),
            span,
            CodePtr(0x400abc),
        );
        let e = r.to_event();
        assert_eq!(e.id, EventId(7));
        assert_eq!(e.kind, DataOpKind::Transfer);
        assert_eq!(e.src_device, DeviceId::HOST);
        assert_eq!(e.dest_device, DeviceId::target(2));
        assert_eq!(e.bytes, 4096);
        assert_eq!(e.hash, Some(HashVal(0xdeadbeef)));
        assert_eq!(e.span, span);
        assert_eq!(e.codeptr, CodePtr(0x400abc));
    }

    #[test]
    fn hash_absence_is_preserved() {
        let r = DataOpRecord::new(
            0,
            DataOpKind::Alloc,
            DeviceId::HOST,
            DeviceId::target(0),
            0x10,
            0x20,
            8,
            None,
            TimeSpan::at(SimTime(1)),
            CodePtr::NULL,
        );
        assert_eq!(r.to_event().hash, None);
    }

    #[test]
    fn all_data_op_kinds_round_trip() {
        for kind in [
            DataOpKind::Alloc,
            DataOpKind::Transfer,
            DataOpKind::Delete,
            DataOpKind::Associate,
            DataOpKind::Disassociate,
        ] {
            let r = DataOpRecord::new(
                1,
                kind,
                DeviceId::HOST,
                DeviceId::target(0),
                0,
                0,
                0,
                None,
                TimeSpan::at(SimTime(0)),
                CodePtr::NULL,
            );
            assert_eq!(r.to_event().kind, kind);
        }
    }

    #[test]
    fn target_record_packing_round_trips() {
        for kind in [
            TargetKind::Region,
            TargetKind::Kernel,
            TargetKind::DataRegion,
            TargetKind::EnterData,
            TargetKind::ExitData,
            TargetKind::Update,
        ] {
            for dev in [DeviceId::HOST, DeviceId::target(0), DeviceId::target(15)] {
                let r =
                    TargetRecord::new(12345, dev, kind, TimeSpan::new(SimTime(5), SimTime(9)), 3);
                assert_eq!(r.kind(), kind);
                assert_eq!(r.device(), dev);
                assert_eq!(r.seq(), 12345);
                assert_eq!(r.codeptr_ix, 3);
            }
        }
    }

    #[test]
    fn target_seq_wraps_at_18_bits() {
        let r = TargetRecord::new(
            TargetRecord::MAX_SEQ + 5,
            DeviceId::target(0),
            TargetKind::Kernel,
            TimeSpan::at(SimTime(0)),
            0,
        );
        assert_eq!(r.seq(), 4);
    }
}
