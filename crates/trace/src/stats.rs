//! Aggregate trace statistics used by reports and the space-overhead
//! experiment.

use odp_model::SimDuration;
use serde::Serialize;

/// Space accounting (Figure 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct SpaceStats {
    /// Number of 72-byte data-op records.
    pub data_op_records: usize,
    /// Number of 24-byte target records.
    pub target_records: usize,
    /// Bytes occupied by records (72·data_ops + 24·targets).
    pub record_bytes: usize,
    /// Peak heap bytes allocated by the log (chunk capacity + intern
    /// table) — the number Figure 3 plots.
    pub peak_alloc_bytes: usize,
}

impl SpaceStats {
    /// Mean space-overhead accumulation rate in bytes/second of program
    /// time (§7.4 reports KB/s).
    pub fn rate_bytes_per_sec(&self, total_time: SimDuration) -> f64 {
        let secs = total_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.record_bytes as f64 / secs
    }
}

/// Aggregate event statistics for a trace.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct TraceStats {
    /// Number of transfer events.
    pub transfers: usize,
    /// ... of which host→device.
    pub h2d_transfers: usize,
    /// ... of which device→host.
    pub d2h_transfers: usize,
    /// Number of device allocations.
    pub allocs: usize,
    /// Number of device deallocations.
    pub deletes: usize,
    /// Number of kernel launches.
    pub kernels: usize,
    /// Total bytes moved by transfers.
    pub bytes_transferred: u64,
    /// Total bytes allocated on devices.
    pub bytes_allocated: u64,
    /// Cumulative transfer time.
    pub transfer_time: SimDuration,
    /// Cumulative allocation/deallocation time.
    pub alloc_time: SimDuration,
    /// Cumulative kernel execution time.
    pub kernel_time: SimDuration,
    /// Program total execution time.
    pub total_time: SimDuration,
}

impl TraceStats {
    /// Fraction of total time spent in data transfers.
    pub fn transfer_fraction(&self) -> f64 {
        let total = self.total_time.as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.transfer_time.as_nanos() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_computation() {
        let ss = SpaceStats {
            data_op_records: 1000,
            target_records: 0,
            record_bytes: 72_000,
            peak_alloc_bytes: 300_000,
        };
        let rate = ss.rate_bytes_per_sec(SimDuration::from_millis(500));
        assert!((rate - 144_000.0).abs() < 1e-6);
        assert_eq!(ss.rate_bytes_per_sec(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn transfer_fraction() {
        let ts = TraceStats {
            transfer_time: SimDuration(250),
            total_time: SimDuration(1000),
            ..Default::default()
        };
        assert!((ts.transfer_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(TraceStats::default().transfer_fraction(), 0.0);
    }
}
