//! Chunked append-only storage.
//!
//! The monitored program must not see reallocation spikes from the tool
//! (overhead preservation, §5). `ChunkedVec` therefore grows in chunks:
//! an append is at worst one `Vec::with_capacity` of a known size, never
//! a copy of previously logged records. Chunk capacities grow
//! geometrically from [`MIN_CHUNK_RECORDS`] to [`MAX_CHUNK_RECORDS`], so
//! a program with a handful of events allocates kilobytes (the bottom of
//! the paper's Figure-3 range) while event-heavy programs amortize to
//! large chunks. Allocated capacity is tracked exactly so the Figure-3
//! space experiment reports real bytes.

/// Capacity of the first chunk.
pub const MIN_CHUNK_RECORDS: usize = 64;
/// Capacity cap for later chunks (4096 × 72 B = 288 KiB per data-op
/// chunk at steady state).
pub const MAX_CHUNK_RECORDS: usize = 4096;

/// An append-only vector that grows in geometrically sized chunks.
#[derive(Debug)]
pub struct ChunkedVec<T> {
    chunks: Vec<Vec<T>>,
    /// Cumulative start index of each chunk (for `get`).
    starts: Vec<usize>,
    len: usize,
}

impl<T> Default for ChunkedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ChunkedVec<T> {
    /// An empty store (no chunks allocated yet).
    pub fn new() -> Self {
        ChunkedVec {
            chunks: Vec::new(),
            starts: Vec::new(),
            len: 0,
        }
    }

    /// Number of records appended.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the store empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn next_chunk_capacity(&self) -> usize {
        match self.chunks.last() {
            None => MIN_CHUNK_RECORDS,
            Some(c) => (c.capacity() * 2).min(MAX_CHUNK_RECORDS),
        }
    }

    /// Append a record.
    #[inline]
    pub fn push(&mut self, value: T) {
        let need_new = self
            .chunks
            .last()
            .map(|c| c.len() == c.capacity())
            .unwrap_or(true);
        if need_new {
            let cap = self.next_chunk_capacity();
            self.starts.push(self.len);
            self.chunks.push(Vec::with_capacity(cap));
        }
        // Invariant, not event data: the branch above just pushed a
        // chunk whenever `chunks` was empty or full.
        #[allow(clippy::expect_used)]
        self.chunks.last_mut().expect("chunk exists").push(value);
        self.len += 1;
    }

    /// Record at `index`.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        let chunk_ix = match self.starts.binary_search(&index) {
            Ok(ix) => ix,
            Err(ins) => ins - 1,
        };
        self.chunks[chunk_ix].get(index - self.starts[chunk_ix])
    }

    /// Iterate over all records in append order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Bytes of heap capacity currently allocated for records.
    pub fn allocated_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<T>())
            .sum()
    }

    /// Bytes of heap actually occupied by records (`len × size_of::<T>()`).
    pub fn used_bytes(&self) -> usize {
        self.len * std::mem::size_of::<T>()
    }
}

impl<'a, T> IntoIterator for &'a ChunkedVec<T> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_across_chunk_boundaries() {
        let mut v = ChunkedVec::new();
        let n = 3 * MAX_CHUNK_RECORDS + 17;
        for i in 0..n {
            v.push(i as u64);
        }
        assert_eq!(v.len(), n);
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(MIN_CHUNK_RECORDS), Some(&(MIN_CHUNK_RECORDS as u64)));
        assert_eq!(v.get(n - 1), Some(&((n - 1) as u64)));
        assert_eq!(v.get(n), None);
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k-push loop is too slow under miri")]
    fn iter_preserves_append_order() {
        let mut v = ChunkedVec::new();
        for i in 0..10_000u64 {
            v.push(i);
        }
        let collected: Vec<u64> = v.iter().copied().collect();
        assert_eq!(collected, (0..10_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn first_chunk_is_small() {
        // A program with a handful of events must not pay for a huge
        // chunk — the bottom of Figure 3's range is ~1 KB.
        let mut v: ChunkedVec<u64> = ChunkedVec::new();
        assert_eq!(v.allocated_bytes(), 0);
        v.push(1);
        assert_eq!(v.allocated_bytes(), MIN_CHUNK_RECORDS * 8);
        assert_eq!(v.used_bytes(), 8);
    }

    #[test]
    fn chunks_grow_geometrically_to_the_cap() {
        let mut v: ChunkedVec<u8> = ChunkedVec::new();
        // Fill enough to reach the cap: 64+128+...+4096 then 4096-sized.
        for _ in 0..(2 * 8192) {
            v.push(0);
        }
        let caps: Vec<usize> = v.chunks.iter().map(|c| c.capacity()).collect();
        assert_eq!(caps[0], MIN_CHUNK_RECORDS);
        assert_eq!(caps[1], 2 * MIN_CHUNK_RECORDS);
        assert!(caps.iter().all(|&c| c <= MAX_CHUNK_RECORDS));
        assert!(caps.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*caps.last().unwrap(), MAX_CHUNK_RECORDS);
    }

    #[test]
    #[cfg_attr(miri, ignore = "20k-push loop is too slow under miri")]
    fn get_random_access_after_growth() {
        let mut v = ChunkedVec::new();
        for i in 0..20_000u64 {
            v.push(i * 3);
        }
        for probe in [0usize, 63, 64, 191, 192, 1000, 8191, 19_999] {
            assert_eq!(v.get(probe), Some(&(probe as u64 * 3)), "index {probe}");
        }
    }

    #[test]
    fn empty_behaviour() {
        let v: ChunkedVec<u32> = ChunkedVec::new();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
        assert_eq!(v.get(0), None);
    }
}
