//! Chrome-trace-format export (`chrome://tracing` / Perfetto).
//!
//! §8: "OMPDataPerf does not currently provide visualizations of
//! detected issues." This module closes that gap for the reproduction:
//! the event log renders as a Trace Event Format JSON with one lane per
//! device plus a host lane, so data movement, kernels, and their overlap
//! (under `nowait`) can be inspected in any Chrome-trace viewer.
//!
//! Format reference: the "Trace Event Format" document (the `X`
//! complete-event records with `ts`/`dur` in microseconds).

use crate::log::TraceLog;
use odp_model::{DataOpKind, DeviceId, TargetKind};
use serde::Serialize;

/// One Trace Event Format record (complete event, `ph = "X"`).
#[derive(Serialize)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    /// Microseconds.
    ts: f64,
    /// Microseconds.
    dur: f64,
    pid: u32,
    tid: u32,
    args: serde_json::Value,
}

/// Lane (tid) assignment: host = 0, device *n* = n+1.
fn lane(device: DeviceId) -> u32 {
    if device.is_host() {
        0
    } else {
        device.raw() as u32 + 1
    }
}

/// Export the log as Trace Event Format JSON.
pub fn to_chrome_trace(log: &TraceLog) -> String {
    let mut events: Vec<ChromeEvent> = Vec::new();

    for e in log.data_op_events() {
        let (name, cat) = match e.kind {
            DataOpKind::Transfer => {
                if e.is_host_to_device() {
                    ("H2D transfer".to_string(), "transfer")
                } else if e.is_device_to_host() {
                    ("D2H transfer".to_string(), "transfer")
                } else {
                    ("D2D transfer".to_string(), "transfer")
                }
            }
            DataOpKind::Alloc => ("device alloc".to_string(), "memory"),
            DataOpKind::Delete => ("device free".to_string(), "memory"),
            DataOpKind::Associate => ("associate".to_string(), "memory"),
            DataOpKind::Disassociate => ("disassociate".to_string(), "memory"),
        };
        // Transfers render on the receiving lane; alloc/free on the
        // owning device's lane — both are the destination device.
        let tid = lane(e.dest_device);
        events.push(ChromeEvent {
            name,
            cat,
            ph: "X",
            ts: e.span.start.as_nanos() as f64 / 1e3,
            dur: (e.duration().as_nanos().max(1)) as f64 / 1e3,
            pid: 1,
            tid,
            args: serde_json::json!({
                "bytes": e.bytes,
                "src_addr": format!("0x{:x}", e.src_addr),
                "dest_addr": format!("0x{:x}", e.dest_addr),
                "hash": e.hash.map(|h| h.to_string()),
                "codeptr": format!("0x{:x}", e.codeptr.0),
            }),
        });
    }

    for t in log.target_events() {
        let cat = match t.kind {
            TargetKind::Kernel => "kernel",
            _ => "construct",
        };
        events.push(ChromeEvent {
            name: t.kind.name().to_string(),
            cat,
            ph: "X",
            ts: t.span.start.as_nanos() as f64 / 1e3,
            dur: (t.span.duration().as_nanos().max(1)) as f64 / 1e3,
            pid: 1,
            tid: lane(t.device),
            args: serde_json::json!({
                "codeptr": format!("0x{:x}", t.codeptr.0),
            }),
        });
    }

    // `total_cmp` keeps the sort total even for non-finite timestamps
    // (`partial_cmp(..).unwrap()` would panic on NaN), and the explicit
    // `(ts, tid)` key pins tie ordering so exports are byte-stable.
    events.sort_by(|a, b| a.ts.total_cmp(&b.ts).then_with(|| a.tid.cmp(&b.tid)));

    #[derive(Serialize)]
    struct Root {
        #[serde(rename = "traceEvents")]
        trace_events: Vec<ChromeEvent>,
        #[serde(rename = "displayTimeUnit")]
        display_time_unit: &'static str,
    }
    // Invariant, not event data: `Root` is built from plain
    // serializable types; serialization cannot fail.
    #[allow(clippy::expect_used)]
    serde_json::to_string_pretty(&Root {
        trace_events: events,
        display_time_unit: "ns",
    })
    .expect("chrome trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::{CodePtr, SimTime, TimeSpan};

    fn sample() -> TraceLog {
        let mut log = TraceLog::new();
        log.record_data_op(
            DataOpKind::Alloc,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1000,
            0xd000,
            64,
            None,
            TimeSpan::new(SimTime(0), SimTime(100)),
            CodePtr(0x1),
        );
        log.record_data_op(
            DataOpKind::Transfer,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1000,
            0xd000,
            64,
            Some(42),
            TimeSpan::new(SimTime(100), SimTime(300)),
            CodePtr(0x2),
        );
        log.record_target(
            TargetKind::Kernel,
            DeviceId::target(0),
            TimeSpan::new(SimTime(300), SimTime(900)),
            CodePtr(0x3),
        );
        log
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let json = to_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        assert_eq!(evs.len(), 3);
        for e in evs {
            assert_eq!(e["ph"], "X");
            assert!(e["dur"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn lanes_separate_host_and_devices() {
        let json = to_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let tids: Vec<u64> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["tid"].as_u64().unwrap())
            .collect();
        // Everything here lands on device 0's lane (tid 1).
        assert!(tids.iter().all(|&t| t == 1));
        assert_eq!(lane(DeviceId::HOST), 0);
        assert_eq!(lane(DeviceId::target(3)), 4);
    }

    #[test]
    fn events_are_time_sorted() {
        let json = to_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let ts: Vec<f64> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["ts"].as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn simultaneous_events_tie_break_by_lane() {
        // Two events at the same timestamp on different lanes: the
        // export must order them by tid, not by record order, so the
        // output is deterministic regardless of collection interleaving.
        let mut log = TraceLog::new();
        for dev in [2u32, 0, 1] {
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(dev),
                0x1000,
                0xd000,
                64,
                Some(7),
                TimeSpan::new(SimTime(100), SimTime(200)),
                CodePtr(0x1),
            );
        }
        let json = to_chrome_trace(&log);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let tids: Vec<u64> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e["tid"].as_u64().unwrap())
            .collect();
        assert_eq!(tids, vec![1, 2, 3], "ties ordered by lane");
    }

    #[test]
    fn repeated_exports_are_byte_identical() {
        let log = sample();
        assert_eq!(to_chrome_trace(&log), to_chrome_trace(&log));
    }

    #[test]
    fn kernel_category() {
        let json = to_chrome_trace(&sample());
        assert!(json.contains("\"cat\": \"kernel\""));
        assert!(json.contains("H2D transfer"));
    }
}
