//! # odp-trace — the tool-side event log
//!
//! OMPDataPerf's detection runs post-mortem over "a log of all OpenMP
//! target events" (§5). This crate is that log. Its design goals follow
//! the paper's §7.4 space-overhead accounting:
//!
//! * **72 bytes** per data-transfer/allocation event,
//! * **24 bytes** per target-launch event,
//! * chunked append-only storage (no reallocation spikes while the
//!   monitored program runs),
//! * peak-allocation tracking so Figure 3 is a real byte count,
//! * code-pointer interning for the 24-byte target records,
//! * hydration into the `odp-model` event types for the detectors, and
//!   JSON export for offline analysis.
//!
//! # Sharding invariants
//!
//! Multi-threaded collection gives every runtime thread its own
//! [`TraceLog`] shard (`TraceLog::for_shard`). **Event ids embed the
//! shard**: `id = shard << 32 | per-shard sequence`, so ids are unique
//! across threads without coordination, and
//! `TraceLog::merge_shards` — which orders all shard streams by
//! `(start time, shard, per-shard sequence)` — produces a merged trace
//! that is independent of how the OS scheduled the recording threads.
//! Hydration sorts by `(start, id)`; because the shard is the id's high
//! half, cross-shard ties at the same start time break
//! deterministically by shard number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Event-data paths must quarantine-and-count malformed input, never
// panic on it. The few remaining `expect`s are real invariants, each
// carrying an explicit allow + justification at the call site.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chrome;
pub mod chunked;
pub mod columnar;
pub mod intern;
pub mod log;
pub mod persist;
pub mod record;
pub mod stats;

pub use chunked::ChunkedVec;
pub use columnar::{ColumnarView, DataOpColumns, TargetColumns};
pub use intern::CodePtrTable;
pub use log::TraceLog;
pub use persist::{
    load_trace, load_trace_lenient, PersistError, ShardColumns, TraceArtifact, TraceMeta,
};
pub use record::{DataOpRecord, TargetRecord, DATA_OP_RECORD_BYTES, TARGET_RECORD_BYTES};
pub use stats::{SpaceStats, TraceStats};
