//! # odp-trace — the tool-side event log
//!
//! OMPDataPerf's detection runs post-mortem over "a log of all OpenMP
//! target events" (§5). This crate is that log. Its design goals follow
//! the paper's §7.4 space-overhead accounting:
//!
//! * **72 bytes** per data-transfer/allocation event,
//! * **24 bytes** per target-launch event,
//! * chunked append-only storage (no reallocation spikes while the
//!   monitored program runs),
//! * peak-allocation tracking so Figure 3 is a real byte count,
//! * code-pointer interning for the 24-byte target records,
//! * hydration into the `odp-model` event types for the detectors, and
//!   JSON export for offline analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod chunked;
pub mod intern;
pub mod log;
pub mod record;
pub mod stats;

pub use chunked::ChunkedVec;
pub use intern::CodePtrTable;
pub use log::TraceLog;
pub use record::{DataOpRecord, TargetRecord, DATA_OP_RECORD_BYTES, TARGET_RECORD_BYTES};
pub use stats::{SpaceStats, TraceStats};
