//! The trace log assembled by the tool while the program runs, and the
//! hydrated view the detectors consume afterwards.

use crate::chunked::ChunkedVec;
use crate::columnar::{
    merge_sorted_parts, sorted_perm, ColumnarView, DataOpColumns, TargetColumns,
};
use crate::intern::CodePtrTable;
use crate::record::{DataOpRecord, TargetRecord};
use crate::stats::{SpaceStats, TraceStats};
use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, SimDuration, TargetEvent, TargetKind,
    TimeSpan,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The tool-side event log.
///
/// Records are appended in completion order while the program runs; the
/// hydrated views returned by [`TraceLog::data_op_events`] and
/// [`TraceLog::target_events`] are sorted chronologically by event start
/// (with log order breaking ties), which is the precondition of every
/// algorithm in §5.
///
/// Hydration is memoized and **columnar-first**: the first call to
/// [`TraceLog::columnar`] (or any accessor that needs it — data-op /
/// kernel events, [`TraceLog::to_json`]) runs one indexing pass that
/// hydrates the packed records straight into a struct-of-arrays
/// [`ColumnarView`] (per-part permutation sort + k-way shard merge) and
/// caches it; the detectors sweep those cache-dense columns directly.
/// The row slices returned by the `*_sorted` accessors are *derived*
/// from the columns by a memoized gather — no second sort — so row and
/// columnar consumers can never disagree. Appending a record
/// invalidates the caches (appends take `&mut self`, so no reader can
/// hold a stale borrow). [`TraceLog::sort_count`] exposes how many sort
/// passes have actually run, so the memoization is testable.
///
/// # Sharded collection
///
/// A multi-threaded tool appends to one *shard log per runtime thread*
/// ([`TraceLog::for_shard`]) and merges them after the run with
/// [`TraceLog::merge_shards`]. Shard logs embed their shard id in the
/// high bits of every hydrated [`odp_model::EventId`]
/// (`id = shard << 32 | per-shard seq`), so the merged hydration's
/// `(start, id)` sort is a deterministic `(timestamp, thread id,
/// per-thread order)` merge: the output is independent of how the OS
/// interleaved the recording threads. Issue findings survive the merge
/// unchanged because event ids never change — a streaming consumer that
/// observed shard-local events during the run resolves the very same
/// ids against the merged hydration.
#[derive(Debug, Default)]
pub struct TraceLog {
    data_ops: ChunkedVec<DataOpRecord>,
    targets: ChunkedVec<TargetRecord>,
    codeptrs: CodePtrTable,
    next_seq: u32,
    /// OR-ed into every hydrated event id (`shard << 32`).
    id_base: u64,
    /// Shard logs this log was merged from (empty for a plain log).
    /// Merged logs are read-only: hydration, stats, and export walk the
    /// shards; `record_*` must not be called on them.
    shards: Vec<TraceLog>,
    /// Event ids claimed by more than one shard record (shard-id
    /// collisions detected at merge; see `merge_shards`).
    duplicate_ids: u64,
    peak_alloc_bytes: usize,
    total_time: SimDuration,
    /// Memoized columnar hydration (data-op + kernel columns, both
    /// `(start, id)`-ordered) — the single indexing pass every other
    /// hydration view derives from.
    columnar: OnceLock<ColumnarView>,
    /// Memoized row gather of the columnar data-op hydration.
    hydrated_ops: OnceLock<Vec<DataOpEvent>>,
    /// Memoized chronological hydration of all `targets`.
    hydrated_targets: OnceLock<Vec<TargetEvent>>,
    /// Memoized row gather of the columnar kernel hydration (the
    /// columnar pass filters *records*, so a log dominated by
    /// non-kernel constructs never hydrates them on this path).
    hydrated_kernels: OnceLock<Vec<TargetEvent>>,
    /// Memoized aggregate statistics.
    cached_stats: OnceLock<TraceStats>,
    /// Number of hydration sort passes performed (observability for the
    /// memoization contract; not part of the trace).
    sort_passes: AtomicUsize,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty shard log for runtime thread `shard`. Hydrated event
    /// ids carry the shard in their high bits, so ids stay globally
    /// unique across the shard set and `(start, id)` sorting breaks
    /// same-start ties deterministically by `(shard, per-shard order)`.
    pub fn for_shard(shard: u32) -> Self {
        TraceLog {
            id_base: (shard as u64) << 32,
            ..Self::default()
        }
    }

    /// The shard id this log records for (0 for a plain log).
    pub fn shard(&self) -> u32 {
        (self.id_base >> 32) as u32
    }

    /// Merge per-thread shard logs into one read-only log whose
    /// hydration, stats, and export cover every shard. Event ids are
    /// preserved (shards already embed their shard id), so the merged
    /// chronological order — `(start, shard, per-shard seq)` — is
    /// independent of thread scheduling. A single shard is returned
    /// unchanged.
    ///
    /// Producers are not trusted to keep shard ids unique: when two
    /// shard logs claim the same shard id, their dense per-shard
    /// sequences collide and the overlapping records would previously
    /// have been silently double-counted. The merge now detects the
    /// collision and counts every duplicated `(shard, seq)` id in
    /// [`TraceLog::duplicate_id_count`], so downstream health
    /// accounting can quarantine rather than trust them.
    pub fn merge_shards(mut shards: Vec<TraceLog>) -> TraceLog {
        if shards.len() == 1 {
            if let Some(only) = shards.pop() {
                return only;
            }
        }
        let total_time = shards
            .iter()
            .map(|s| s.total_time)
            .max()
            .unwrap_or_default();
        let peak = shards.iter().map(|s| s.peak_alloc_bytes).sum();
        // Shards sharing an id_base have dense seqs 0..next_seq, so the
        // ids duplicated by a colliding group are everything beyond the
        // group's widest shard: Σ next_seq − max next_seq.
        let mut by_base: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &shards {
            let entry = by_base.entry(s.id_base).or_insert((0, 0));
            entry.0 += s.next_seq as u64;
            entry.1 = entry.1.max(s.next_seq as u64);
        }
        let duplicate_ids = by_base.values().map(|(sum, max)| sum - max).sum();
        TraceLog {
            shards,
            total_time,
            peak_alloc_bytes: peak,
            duplicate_ids,
            ..Self::default()
        }
    }

    /// Event ids claimed by more than one record across the merged
    /// shard set (0 for a well-formed shard set or a plain log).
    pub fn duplicate_id_count(&self) -> u64 {
        self.duplicate_ids
    }

    /// Is this a merged (read-only) log?
    pub fn is_merged(&self) -> bool {
        !self.shards.is_empty()
    }

    /// Record a data operation. Returns the hydrated event exactly as
    /// the memoized hydration will later produce it (same `EventId`), so
    /// online consumers — the streaming detection engine — observe the
    /// identical event without re-deriving record encoding.
    #[allow(clippy::too_many_arguments)]
    pub fn record_data_op(
        &mut self,
        kind: DataOpKind,
        src_device: DeviceId,
        dest_device: DeviceId,
        src_addr: u64,
        dest_addr: u64,
        bytes: u64,
        hash: Option<u64>,
        span: TimeSpan,
        codeptr: CodePtr,
    ) -> DataOpEvent {
        debug_assert!(self.shards.is_empty(), "merged logs are read-only");
        let seq = self.next_seq;
        self.next_seq += 1;
        let record = DataOpRecord::new(
            seq,
            kind,
            src_device,
            dest_device,
            src_addr,
            dest_addr,
            bytes,
            hash,
            span,
            codeptr,
        );
        let mut event = record.to_event();
        event.id = EventId(self.id_base | event.id.0);
        self.data_ops.push(record);
        self.invalidate_hydration();
        self.note_end(span);
        self.update_peak();
        event
    }

    /// Record a target construct / kernel execution. Returns the
    /// hydrated event, with the same (wrapped) sequence id hydration
    /// assigns — see [`TraceLog::record_data_op`].
    pub fn record_target(
        &mut self,
        kind: TargetKind,
        device: DeviceId,
        span: TimeSpan,
        codeptr: CodePtr,
    ) -> TargetEvent {
        debug_assert!(self.shards.is_empty(), "merged logs are read-only");
        let seq = self.next_seq;
        self.next_seq += 1;
        let ix = self.codeptrs.intern(codeptr);
        let record = TargetRecord::new(seq, device, kind, span, ix);
        let event = record.to_event(self.id_base | record.seq() as u64, codeptr);
        self.targets.push(record);
        self.invalidate_hydration();
        self.note_end(span);
        self.update_peak();
        event
    }

    /// Drop the memoized hydrations after an append. Cheap when nothing
    /// is cached (the steady state while the program runs).
    fn invalidate_hydration(&mut self) {
        self.columnar.take();
        self.hydrated_ops.take();
        self.hydrated_targets.take();
        self.hydrated_kernels.take();
        self.cached_stats.take();
    }

    fn note_end(&mut self, span: TimeSpan) {
        let end = SimDuration(span.end.as_nanos());
        if end > self.total_time {
            self.total_time = end;
        }
    }

    fn update_peak(&mut self) {
        let now = self.current_alloc_bytes();
        if now > self.peak_alloc_bytes {
            self.peak_alloc_bytes = now;
        }
    }

    /// Explicitly set the monitored program's total execution time (the
    /// tool records this at finalization; used by prediction).
    pub fn set_total_time(&mut self, t: SimDuration) {
        if t > self.total_time {
            self.total_time = t;
            // Cached stats embed total_time; drop them so the next
            // stats() reflects the finalized duration.
            self.cached_stats.take();
        }
    }

    /// Total program execution time seen by the log.
    pub fn total_time(&self) -> SimDuration {
        self.total_time
    }

    /// This log and every shard it was merged from (self first). A
    /// plain log yields just itself.
    fn parts(&self) -> impl Iterator<Item = &TraceLog> {
        std::iter::once(self).chain(self.shards.iter())
    }

    /// Number of data-op records.
    pub fn data_op_count(&self) -> usize {
        self.parts().map(|p| p.data_ops.len()).sum()
    }

    /// Number of target records.
    pub fn target_count(&self) -> usize {
        self.parts().map(|p| p.targets.len()).sum()
    }

    /// Bytes currently allocated by the log.
    pub fn current_alloc_bytes(&self) -> usize {
        self.parts()
            .map(|p| {
                p.data_ops.allocated_bytes()
                    + p.targets.allocated_bytes()
                    + p.codeptrs.allocated_bytes()
            })
            .sum()
    }

    /// Space accounting for Figure 3.
    pub fn space_stats(&self) -> SpaceStats {
        SpaceStats {
            data_op_records: self.data_op_count(),
            target_records: self.target_count(),
            record_bytes: self
                .parts()
                .map(|p| p.data_ops.used_bytes() + p.targets.used_bytes())
                .sum(),
            peak_alloc_bytes: self.peak_alloc_bytes,
        }
    }

    /// Borrow the memoized columnar hydration: data-op and kernel
    /// events decomposed into `(start, id)`-ordered struct-of-arrays
    /// columns — the representation the fused detector sweeps consume
    /// directly. Built in one indexing pass per batch of appends: each
    /// part (the log itself, plus every merged shard) is hydrated in
    /// append order and permutation-sorted, then the parts are k-way
    /// merged by `(start, id, part)` — byte-identical to sorting the
    /// concatenation, but without re-sorting already-ordered shards.
    pub fn columnar(&self) -> &ColumnarView {
        self.columnar.get_or_init(|| {
            self.sort_passes.fetch_add(1, Ordering::Relaxed);
            let mut op_parts: Vec<(Vec<DataOpEvent>, Vec<u32>)> = Vec::new();
            let mut kernel_parts: Vec<(Vec<TargetEvent>, Vec<u32>)> = Vec::new();
            for p in self.parts() {
                let ops: Vec<DataOpEvent> = p
                    .data_ops
                    .iter()
                    .map(|r| {
                        let mut e = r.to_event();
                        e.id = EventId(p.id_base | e.id.0);
                        e
                    })
                    .collect();
                let op_perm = sorted_perm(&ops, |e| (e.span.start, e.id));
                op_parts.push((ops, op_perm));
                let kernels: Vec<TargetEvent> = p
                    .targets
                    .iter()
                    .filter(|r| r.kind() == TargetKind::Kernel)
                    .map(|r| {
                        let cp = p.codeptrs.resolve(r.codeptr_ix);
                        r.to_event(p.id_base | r.seq() as u64, cp)
                    })
                    .collect();
                let kernel_perm = sorted_perm(&kernels, |e| (e.span.start, e.id));
                kernel_parts.push((kernels, kernel_perm));
            }
            let mut ops = DataOpColumns::with_capacity(op_parts.iter().map(|(r, _)| r.len()).sum());
            merge_sorted_parts(&op_parts, |e| (e.span.start, e.id), |e| ops.push(e));
            let mut kernels =
                TargetColumns::with_capacity(kernel_parts.iter().map(|(r, _)| r.len()).sum());
            merge_sorted_parts(&kernel_parts, |e| (e.span.start, e.id), |e| kernels.push(e));
            ColumnarView { ops, kernels }
        })
    }

    /// Borrow the memoized chronological data-op events (start, then log
    /// order) — the `data_op_events` input of Algorithms 1–5. A gather
    /// from the columnar hydration, memoized; no additional sorting. On
    /// a merged log this is the deterministic `(start, shard, per-shard
    /// order)` merge of every shard's stream.
    pub fn data_op_events_sorted(&self) -> &[DataOpEvent] {
        self.hydrated_ops
            .get_or_init(|| self.columnar().ops.to_events())
    }

    /// Hydrate data-op events as an owned vector (copies the memoized
    /// slice; prefer [`TraceLog::data_op_events_sorted`] on hot paths).
    pub fn data_op_events(&self) -> Vec<DataOpEvent> {
        self.data_op_events_sorted().to_vec()
    }

    /// Borrow the memoized chronological target events.
    pub fn target_events_sorted(&self) -> &[TargetEvent] {
        self.hydrated_targets.get_or_init(|| {
            self.sort_passes.fetch_add(1, Ordering::Relaxed);
            let mut events: Vec<TargetEvent> = self
                .parts()
                .flat_map(|p| {
                    p.targets.iter().map(|r| {
                        let cp = p.codeptrs.resolve(r.codeptr_ix);
                        r.to_event(p.id_base | r.seq() as u64, cp)
                    })
                })
                .collect();
            events.sort_by_key(|e| (e.span.start, e.id));
            events
        })
    }

    /// Hydrate target events as an owned vector.
    pub fn target_events(&self) -> Vec<TargetEvent> {
        self.target_events_sorted().to_vec()
    }

    /// Borrow the memoized kernel-execution events (input to Algorithms
    /// 4/5). A gather from the columnar hydration — which filters the
    /// packed *records* before hydrating, so non-kernel target
    /// constructs are never hydrated or sorted on this path.
    pub fn kernel_events_sorted(&self) -> &[TargetEvent] {
        self.hydrated_kernels
            .get_or_init(|| self.columnar().kernels.to_events())
    }

    /// Hydrate only kernel-execution events as an owned vector.
    pub fn kernel_events(&self) -> Vec<TargetEvent> {
        self.kernel_events_sorted().to_vec()
    }

    /// Export every part of this log — the log itself plus each merged
    /// shard, in merge order, empty parts skipped — as `(shard id,
    /// sorted data-op columns, sorted target columns)` triples: the
    /// input of [`crate::persist`].
    ///
    /// Each part's columns are `(start, id)`-sorted with the same
    /// stable permutation sort hydration uses, and parts keep the merge
    /// order [`TraceLog::columnar`] tie-breaks on, so re-merging the
    /// exported parts by `(start, id, part)` reproduces the in-memory
    /// hydration exactly — including adversarial shard sets whose event
    /// ids collide. Unlike the columnar hydration, the exported target
    /// columns carry *every* target construct (with its kind column),
    /// so a persisted trace also reproduces
    /// [`TraceLog::target_events_sorted`], stats, and space accounting.
    pub fn shard_parts(&self) -> Vec<(u32, DataOpColumns, TargetColumns)> {
        let mut out = Vec::new();
        for p in self.parts() {
            if p.data_ops.is_empty() && p.targets.is_empty() {
                continue;
            }
            let op_rows: Vec<DataOpEvent> = p
                .data_ops
                .iter()
                .map(|r| {
                    let mut e = r.to_event();
                    e.id = EventId(p.id_base | e.id.0);
                    e
                })
                .collect();
            let mut ops = DataOpColumns::with_capacity(op_rows.len());
            for &i in &sorted_perm(&op_rows, |e| (e.span.start, e.id)) {
                ops.push(&op_rows[i as usize]);
            }
            let target_rows: Vec<TargetEvent> = p
                .targets
                .iter()
                .map(|r| {
                    let cp = p.codeptrs.resolve(r.codeptr_ix);
                    r.to_event(p.id_base | r.seq() as u64, cp)
                })
                .collect();
            let mut targets = TargetColumns::with_capacity(target_rows.len());
            for &i in &sorted_perm(&target_rows, |e| (e.span.start, e.id)) {
                targets.push(&target_rows[i as usize]);
            }
            out.push((p.shard(), ops, targets));
        }
        out
    }

    /// Number of hydration sort passes performed so far. Repeated calls
    /// to the event accessors must not grow this (the memoization
    /// contract); appending a record resets the caches and allows one
    /// more pass per view.
    pub fn sort_count(&self) -> usize {
        self.sort_passes.load(Ordering::Relaxed)
    }

    /// Aggregate statistics for reports (memoized; works on the packed
    /// records directly, no hydration or sorting involved).
    pub fn stats(&self) -> TraceStats {
        *self.cached_stats.get_or_init(|| {
            let mut s = TraceStats::default();
            for p in self.parts() {
                for r in p.data_ops.iter() {
                    let e = r.to_event();
                    match e.kind {
                        DataOpKind::Transfer => {
                            s.transfers += 1;
                            s.bytes_transferred += e.bytes;
                            s.transfer_time += e.duration();
                            if e.is_host_to_device() {
                                s.h2d_transfers += 1;
                            } else if e.is_device_to_host() {
                                s.d2h_transfers += 1;
                            }
                        }
                        DataOpKind::Alloc => {
                            s.allocs += 1;
                            s.bytes_allocated += e.bytes;
                            s.alloc_time += e.duration();
                        }
                        DataOpKind::Delete => {
                            s.deletes += 1;
                            s.alloc_time += e.duration();
                        }
                        _ => {}
                    }
                }
                for r in p.targets.iter() {
                    if r.kind() == TargetKind::Kernel {
                        s.kernels += 1;
                        s.kernel_time += SimDuration(r.end.saturating_sub(r.start));
                    }
                }
            }
            s.total_time = self.total_time;
            s
        })
    }

    /// Export the hydrated events as pretty JSON (reuses the memoized
    /// hydrations; no additional sorting).
    pub fn to_json(&self) -> String {
        let export = serde_json::json!({
            "data_ops": self.data_op_events_sorted(),
            "targets": self.target_events_sorted(),
            "total_time_ns": self.total_time.as_nanos(),
        });
        // Invariant, not event data: the export tree is built from
        // plain serializable types; serialization cannot fail.
        #[allow(clippy::expect_used)]
        serde_json::to_string_pretty(&export).expect("trace serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::SimTime;

    fn span(a: u64, b: u64) -> TimeSpan {
        TimeSpan::new(SimTime(a), SimTime(b))
    }

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.record_data_op(
            DataOpKind::Alloc,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1000,
            0x8000,
            256,
            None,
            span(0, 10),
            CodePtr(0x400100),
        );
        log.record_data_op(
            DataOpKind::Transfer,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1000,
            0x8000,
            256,
            Some(0xabcd),
            span(10, 30),
            CodePtr(0x400100),
        );
        log.record_target(
            TargetKind::Kernel,
            DeviceId::target(0),
            span(30, 90),
            CodePtr(0x400200),
        );
        log.record_data_op(
            DataOpKind::Transfer,
            DeviceId::target(0),
            DeviceId::HOST,
            0x8000,
            0x1000,
            256,
            Some(0xef01),
            span(90, 110),
            CodePtr(0x400100),
        );
        log.record_data_op(
            DataOpKind::Delete,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1000,
            0x8000,
            256,
            None,
            span(110, 115),
            CodePtr(0x400100),
        );
        log
    }

    #[test]
    fn counts_and_hydration() {
        let log = sample_log();
        assert_eq!(log.data_op_count(), 4);
        assert_eq!(log.target_count(), 1);
        let ops = log.data_op_events();
        assert_eq!(ops.len(), 4);
        assert!(ops.windows(2).all(|w| w[0].span.start <= w[1].span.start));
        let kernels = log.kernel_events();
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].codeptr, CodePtr(0x400200));
    }

    #[test]
    fn stats_aggregate_correctly() {
        let log = sample_log();
        let s = log.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.h2d_transfers, 1);
        assert_eq!(s.d2h_transfers, 1);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.kernels, 1);
        assert_eq!(s.bytes_transferred, 512);
        assert_eq!(s.transfer_time, SimDuration(40));
        assert_eq!(s.kernel_time, SimDuration(60));
        assert_eq!(s.total_time, SimDuration(115));
    }

    #[test]
    fn chronological_sort_breaks_ties_by_log_order() {
        let mut log = TraceLog::new();
        for i in 0..5u64 {
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                i,
                0,
                1,
                Some(i),
                span(100, 100),
                CodePtr::NULL,
            );
        }
        let ops = log.data_op_events();
        let addrs: Vec<u64> = ops.iter().map(|e| e.src_addr).collect();
        assert_eq!(addrs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k-record append loop is too slow under miri")]
    fn space_stats_track_peak() {
        let mut log = TraceLog::new();
        for _ in 0..10_000 {
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0,
                0,
                1,
                Some(1),
                span(0, 1),
                CodePtr::NULL,
            );
        }
        let ss = log.space_stats();
        assert_eq!(ss.data_op_records, 10_000);
        assert_eq!(ss.record_bytes, 10_000 * 72);
        assert!(ss.peak_alloc_bytes >= ss.record_bytes);
    }

    #[test]
    fn json_export_is_valid() {
        let log = sample_log();
        let json = log.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["data_ops"].as_array().unwrap().len(), 4);
        assert_eq!(v["total_time_ns"], 115);
    }

    #[test]
    fn hydration_is_memoized_until_append() {
        let mut log = sample_log();
        assert_eq!(log.sort_count(), 0, "no hydration before first access");

        // The first event access runs the single columnar indexing
        // pass; it covers data ops AND kernels.
        let k1 = log.kernel_events();
        assert_eq!(log.sort_count(), 1);
        let k2 = log.kernel_events();
        assert_eq!(log.sort_count(), 1, "kernel hydration memoized");
        assert_eq!(k1, k2);

        // Data-op rows are a gather from the same columnar pass — no
        // second sort.
        let ops1 = log.data_op_events();
        let ops2 = log.data_op_events();
        assert_eq!(ops1, ops2);
        assert_eq!(
            log.sort_count(),
            1,
            "data ops derive from the columnar pass"
        );

        // Stats and JSON export reuse the caches (JSON additionally
        // builds the full target hydration, once).
        let _ = log.stats();
        let _ = log.stats();
        let _ = log.to_json();
        let _ = log.to_json();
        assert_eq!(log.sort_count(), 2, "export added only the target sort");

        // Appending invalidates: the next access re-runs the columnar
        // pass, once.
        log.record_data_op(
            DataOpKind::Transfer,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1,
            0x2,
            8,
            Some(9),
            span(200, 210),
            CodePtr::NULL,
        );
        let ops3 = log.data_op_events();
        assert_eq!(ops3.len(), ops1.len() + 1);
        assert_eq!(log.sort_count(), 3);
        let _ = log.data_op_events();
        assert_eq!(log.sort_count(), 3);
    }

    #[test]
    fn columnar_hydration_matches_row_hydration() {
        let log = sample_log();
        let cols = log.columnar();
        assert_eq!(cols.ops.to_events(), log.data_op_events());
        assert_eq!(cols.kernels.to_events(), log.kernel_events());
        for (i, e) in log.data_op_events_sorted().iter().enumerate() {
            assert_eq!(&cols.ops.event(i), e, "field-for-field at {i}");
        }
    }

    /// The k-way shard merge must emit exactly the order the old
    /// concat-then-stable-sort produced — including overlapping spans,
    /// same-start ties across shards, and out-of-append-order starts
    /// within a shard (completion-ordered recording).
    #[test]
    fn kway_merge_order_matches_concat_sort() {
        let build = || {
            let mut a = TraceLog::for_shard(0);
            let mut b = TraceLog::for_shard(1);
            let mut c = TraceLog::for_shard(7);
            // Appended in completion order: starts go backwards.
            for &t in &[40u64, 10, 25, 10] {
                a.record_data_op(
                    DataOpKind::Transfer,
                    DeviceId::HOST,
                    DeviceId::target(0),
                    0x1000 + t,
                    0xd000,
                    64,
                    Some(t),
                    span(t, t + 30),
                    CodePtr(0x100),
                );
            }
            for &t in &[10u64, 10, 90] {
                b.record_data_op(
                    DataOpKind::Alloc,
                    DeviceId::HOST,
                    DeviceId::target(1),
                    0x2000 + t,
                    0xe000,
                    32,
                    None,
                    span(t, t + 5),
                    CodePtr(0x200),
                );
                b.record_target(
                    TargetKind::Kernel,
                    DeviceId::target(1),
                    span(t + 1, t + 4),
                    CodePtr(0x300),
                );
            }
            c.record_target(
                TargetKind::Kernel,
                DeviceId::target(0),
                span(10, 20),
                CodePtr(0x400),
            );
            vec![a, b, c]
        };

        // Oracle: hydrate every shard separately and stable-sort the
        // concatenation, in shard-vector order — the old row path.
        let shards = build();
        let mut naive_ops: Vec<DataOpEvent> =
            shards.iter().flat_map(|s| s.data_op_events()).collect();
        naive_ops.sort_by_key(|e| (e.span.start, e.id));
        let mut naive_kernels: Vec<TargetEvent> =
            shards.iter().flat_map(|s| s.kernel_events()).collect();
        naive_kernels.sort_by_key(|e| (e.span.start, e.id));

        let merged = TraceLog::merge_shards(build());
        assert_eq!(merged.data_op_events(), naive_ops);
        assert_eq!(merged.kernel_events(), naive_kernels);
        assert_eq!(merged.columnar().ops.to_events(), naive_ops);
    }

    #[test]
    fn set_total_time_invalidates_cached_stats() {
        let mut log = sample_log();
        // Cache stats mid-run, then finalize with a longer total time.
        assert_eq!(log.stats().total_time, SimDuration(115));
        log.set_total_time(SimDuration(10_000));
        assert_eq!(
            log.stats().total_time,
            SimDuration(10_000),
            "finalized total time must reach already-cached stats"
        );
        // A no-op (shrinking) set keeps the cache.
        log.set_total_time(SimDuration(5));
        assert_eq!(log.stats().total_time, SimDuration(10_000));
    }

    #[test]
    fn sorted_accessors_borrow_the_same_hydration() {
        let log = sample_log();
        let a = log.data_op_events_sorted().as_ptr();
        let b = log.data_op_events_sorted().as_ptr();
        assert_eq!(a, b, "repeated calls borrow one cached vector");
    }

    #[test]
    fn record_returns_exactly_the_hydrated_event() {
        let mut log = TraceLog::new();
        let op = log.record_data_op(
            DataOpKind::Transfer,
            DeviceId::HOST,
            DeviceId::target(1),
            0x1000,
            0x8000,
            128,
            Some(0xfeed),
            span(5, 9),
            CodePtr(0x400700),
        );
        let kernel = log.record_target(
            TargetKind::Kernel,
            DeviceId::target(1),
            span(10, 20),
            CodePtr(0x400800),
        );
        assert_eq!(log.data_op_events()[0], op);
        assert_eq!(log.kernel_events()[0], kernel);
        assert_eq!(kernel.id.0, 1, "wrapped sequence id matches hydration");
    }

    fn shard_with_ops(shard: u32, starts: &[u64]) -> TraceLog {
        let mut log = TraceLog::for_shard(shard);
        for &t in starts {
            log.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000 + t,
                0xd000,
                64,
                Some(t),
                span(t, t + 10),
                CodePtr(0x100),
            );
        }
        log.record_target(
            TargetKind::Kernel,
            DeviceId::target(0),
            span(500, 600),
            CodePtr(0x200),
        );
        log
    }

    #[test]
    fn shard_ids_embed_the_shard_in_high_bits() {
        let mut log = TraceLog::for_shard(3);
        assert_eq!(log.shard(), 3);
        let e = log.record_data_op(
            DataOpKind::Transfer,
            DeviceId::HOST,
            DeviceId::target(0),
            0x1,
            0x2,
            8,
            Some(9),
            span(0, 1),
            CodePtr::NULL,
        );
        assert_eq!(e.id.0, (3u64 << 32), "shard 3, local seq 0");
        let k = log.record_target(
            TargetKind::Kernel,
            DeviceId::target(0),
            span(2, 3),
            CodePtr::NULL,
        );
        assert_eq!(k.id.0, (3u64 << 32) | 1);
        assert_eq!(log.data_op_events()[0], e, "hydration matches the return");
        assert_eq!(log.kernel_events()[0], k);
    }

    #[test]
    fn merged_hydration_breaks_same_start_ties_by_shard() {
        // Both shards carry events at identical start times: the merged
        // chronological order must interleave them by (start, shard,
        // per-shard order), regardless of shard vector order... the
        // shard id is in the event id, so even reversing the vector
        // changes nothing.
        let a = shard_with_ops(0, &[10, 10, 30]);
        let b = shard_with_ops(1, &[10, 20, 30]);
        let merged = TraceLog::merge_shards(vec![a, b]);
        assert!(merged.is_merged());
        let ops = merged.data_op_events();
        let key: Vec<(u64, u64)> = ops.iter().map(|e| (e.span.start.0, e.id.0)).collect();
        let mut sorted = key.clone();
        sorted.sort();
        assert_eq!(key, sorted, "chronological with deterministic ties");
        // At t=10: shard 0's two events (seq 0, 1), then shard 1's.
        assert_eq!(ops[0].id.0, 0);
        assert_eq!(ops[1].id.0, 1);
        assert_eq!(ops[2].id.0, 1 << 32);

        let a2 = shard_with_ops(0, &[10, 10, 30]);
        let b2 = shard_with_ops(1, &[10, 20, 30]);
        let merged2 = TraceLog::merge_shards(vec![b2, a2]);
        assert_eq!(
            merged.to_json(),
            merged2.to_json(),
            "merge output independent of shard vector order"
        );
    }

    #[test]
    fn merged_counts_stats_and_space_aggregate_over_shards() {
        let a = shard_with_ops(0, &[0, 10]);
        let b = shard_with_ops(1, &[5]);
        let (sa, sb) = (a.stats(), b.stats());
        let merged = TraceLog::merge_shards(vec![a, b]);
        assert_eq!(merged.data_op_count(), 3);
        assert_eq!(merged.target_count(), 2);
        let s = merged.stats();
        assert_eq!(s.transfers, sa.transfers + sb.transfers);
        assert_eq!(s.kernels, 2);
        assert_eq!(
            s.bytes_transferred,
            sa.bytes_transferred + sb.bytes_transferred
        );
        assert_eq!(s.total_time, sa.total_time.max(sb.total_time));
        let space = merged.space_stats();
        assert_eq!(space.data_op_records, 3);
        assert_eq!(space.target_records, 2);
        assert!(space.record_bytes >= 3 * 72 + 2 * 24);
        assert_eq!(merged.kernel_events().len(), 2);
    }

    #[test]
    fn merge_counts_duplicate_ids_from_colliding_shards() {
        // Two producers mistakenly claim shard 1: their dense seqs
        // collide, so the smaller shard's records (2 ops + 1 kernel)
        // all duplicate ids the larger shard already claimed.
        let a = shard_with_ops(1, &[0, 10, 20]);
        let b = shard_with_ops(1, &[5, 15]);
        let c = shard_with_ops(2, &[7]);
        let merged = TraceLog::merge_shards(vec![a, b, c]);
        assert_eq!(merged.duplicate_id_count(), 3);

        let clean =
            TraceLog::merge_shards(vec![shard_with_ops(0, &[0, 10]), shard_with_ops(1, &[5])]);
        assert_eq!(clean.duplicate_id_count(), 0, "unique shards are clean");
    }

    #[test]
    fn merging_a_single_shard_is_the_identity() {
        let a = shard_with_ops(2, &[1, 2, 3]);
        let json = a.to_json();
        let merged = TraceLog::merge_shards(vec![a]);
        assert!(!merged.is_merged(), "single shard passes through");
        assert_eq!(merged.shard(), 2);
        assert_eq!(merged.to_json(), json);
    }

    #[test]
    fn total_time_can_be_extended_by_finalizer() {
        let mut log = sample_log();
        log.set_total_time(SimDuration(10_000));
        assert_eq!(log.total_time(), SimDuration(10_000));
        // But never shrunk.
        log.set_total_time(SimDuration(5));
        assert_eq!(log.total_time(), SimDuration(10_000));
    }
}
