//! Versioned, shard-aware binary on-disk trace format.
//!
//! A persisted trace is the durable twin of [`crate::TraceLog`]'s
//! in-memory hydration: per-shard `(start, id)`-sorted columns written
//! as raw little-endian fixed-width sections, indexed by a JSON footer,
//! carrying the run's [`TraceHealth`], stats metadata, and shard ids.
//! Loading rebuilds a [`ColumnarView`] **byte-identical** to what
//! hydrating the original log would have produced — the contract the
//! `trace_persistence` property suite pins, fault-profile traces
//! included.
//!
//! # File layout (version 1)
//!
//! ```text
//! offset 0   ┌──────────────────────────────────────────────┐
//!            │ magic "ODPTRACE" (8 B)                       │
//!            │ version u32 LE · reserved u32 LE             │
//! offset 16  ├──────────────────────────────────────────────┤
//!            │ column sections, 8-byte aligned:             │
//!            │   shard 0 ops:     ids · kinds · devices ·   │
//!            │                    addrs · bytes · hashes ·  │
//!            │                    flags · spans · codeptrs  │
//!            │   shard 0 targets: ids · devices · kinds ·   │
//!            │                    spans · codeptrs          │
//!            │   shard 1 ops: …                             │
//! data end   ├──────────────────────────────────────────────┤
//!            │ footer: JSON index                           │
//!            │   {version, meta, health, shards:[{shard,    │
//!            │    ops:{rows, cols:[{name,off,len,crc}]},    │
//!            │    targets:{…}}]}                            │
//!            ├──────────────────────────────────────────────┤
//!            │ footer_len u64 LE · footer_crc u64 LE        │
//!            │ tail magic "ODPTEND\0" (8 B)                 │
//!            └──────────────────────────────────────────────┘
//! ```
//!
//! Every column section and the footer carry an FNV-1a-64 checksum.
//! Sections are raw fixed-width little-endian arrays at 8-byte-aligned
//! offsets located purely through the footer index, so a later
//! zero-copy `mmap` fast path — casting sections in place instead of
//! copying them into `Vec`s — reads the same bytes through the same
//! index and needs **no version bump**. (This crate is
//! `forbid(unsafe_code)`, so version 1 hydrates by copying.)
//!
//! # Degradation contract
//!
//! [`load_trace_lenient`] never panics and never silently drops data:
//! a section whose bounds, length, or checksum cannot be verified
//! quarantines its whole shard, and the shard's claimed event count
//! lands in [`TraceHealth::unreadable`] (an undecodable file counts as
//! one). [`load_trace`] is the strict variant for writers validating
//! their own output.

use crate::columnar::{
    merge_sorted_parts, sorted_perm, ColumnarView, DataOpColumns, TargetColumns,
};
use crate::log::TraceLog;
use crate::record::{
    decode_data_op_kind, decode_target_kind, encode_data_op_kind, encode_target_kind,
    DATA_OP_RECORD_BYTES, TARGET_RECORD_BYTES,
};
use crate::stats::{SpaceStats, TraceStats};
use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimDuration, SimTime,
    TargetEvent, TargetKind, TraceHealth,
};
use serde::{Deserialize, Serialize};

/// Leading file magic (stable across versions).
pub const TRACE_MAGIC: [u8; 8] = *b"ODPTRACE";
/// Trailing file magic.
pub const TAIL_MAGIC: [u8; 8] = *b"ODPTEND\0";
/// Current format version.
pub const TRACE_VERSION: u32 = 1;

const HEADER_BYTES: usize = 16;
/// footer_len u64 + footer_crc u64 + tail magic.
const TAIL_BYTES: usize = 24;

/// FNV-1a 64-bit — dependency-free integrity check for column sections
/// and the footer. Not cryptographic; it exists to catch the bit flips,
/// truncations, and torn writes the loader fuzz cases inject.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run-level metadata persisted alongside the columns.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Monitored program name.
    pub program: String,
    /// Finalized total execution time, ns.
    pub total_time_ns: u64,
    /// Peak heap bytes the original log allocated (Figure 3).
    pub peak_alloc_bytes: u64,
    /// Merge-time duplicate-id count ([`TraceLog::duplicate_id_count`]).
    pub duplicate_ids: u64,
}

/// One shard's persisted columns, both tables `(start, id)`-sorted.
/// The target columns carry every construct (with its kind), not just
/// kernels, so the persisted trace reproduces target hydration and
/// stats as well as the detector inputs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardColumns {
    /// Shard id (the high half of this shard's event ids).
    pub shard: u32,
    /// Data-operation columns.
    pub ops: DataOpColumns,
    /// Target-construct columns.
    pub targets: TargetColumns,
}

/// A trace in its persistable form: metadata + health + per-shard
/// sorted columns. The in-memory side of the on-disk format — built
/// from a [`TraceLog`] by [`TraceArtifact::from_log`], rebuilt from
/// bytes by [`load_trace`] / [`load_trace_lenient`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceArtifact {
    /// Run metadata.
    pub meta: TraceMeta,
    /// Quarantine accounting carried over from the run (plus
    /// [`TraceHealth::unreadable`] drops added by a lenient load).
    pub health: TraceHealth,
    /// Per-shard columns, in the original log's merge order.
    pub shards: Vec<ShardColumns>,
}

/// Why a strict load refused a file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Shorter than header + tail.
    TooShort,
    /// Leading or trailing magic mismatch.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Footer length out of bounds, checksum mismatch, or undecodable
    /// JSON.
    BadFooter(String),
    /// A column section failed bounds, width, or checksum verification.
    BadSection {
        /// Shard id the section belongs to.
        shard: u32,
        /// Column name from the footer index.
        column: String,
        /// What failed.
        reason: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::TooShort => write!(f, "file shorter than header + tail"),
            PersistError::BadMagic => write!(f, "not an ODPTRACE file (magic mismatch)"),
            PersistError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            PersistError::BadFooter(why) => write!(f, "unreadable footer: {why}"),
            PersistError::BadSection {
                shard,
                column,
                reason,
            } => write!(f, "shard {shard} column '{column}': {reason}"),
        }
    }
}

impl std::error::Error for PersistError {}

// ------------------------------------------------------------------
// Footer index (JSON, checksummed).
// ------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Footer {
    version: u32,
    meta: TraceMeta,
    health: TraceHealth,
    shards: Vec<ShardIndex>,
}

#[derive(Serialize, Deserialize)]
struct ShardIndex {
    shard: u32,
    ops: TableIndex,
    targets: TableIndex,
}

#[derive(Serialize, Deserialize)]
struct TableIndex {
    rows: u64,
    cols: Vec<ColIndex>,
}

#[derive(Serialize, Deserialize)]
struct ColIndex {
    name: String,
    off: u64,
    len: u64,
    crc: u64,
}

/// Column names + element widths of the two tables, in section order.
const OP_COLS: &[(&str, usize)] = &[
    ("ids", 8),
    ("kinds", 1),
    ("src_devices", 4),
    ("dest_devices", 4),
    ("src_addrs", 8),
    ("dest_addrs", 8),
    ("bytes", 8),
    ("hash_values", 8),
    ("hash_flags", 1),
    ("starts", 8),
    ("ends", 8),
    ("codeptrs", 8),
];
const TARGET_COLS: &[(&str, usize)] = &[
    ("ids", 8),
    ("devices", 4),
    ("kinds", 1),
    ("starts", 8),
    ("ends", 8),
    ("codeptrs", 8),
];

// ------------------------------------------------------------------
// Writer.
// ------------------------------------------------------------------

struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // reserved
        SectionWriter { buf }
    }

    /// Append one 8-byte-aligned section and return its index entry.
    fn section(&mut self, name: &str, bytes: &[u8]) -> ColIndex {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
        let off = self.buf.len() as u64;
        self.buf.extend_from_slice(bytes);
        ColIndex {
            name: name.to_string(),
            off,
            len: bytes.len() as u64,
            crc: fnv1a64(bytes),
        }
    }

    fn u64s(&mut self, name: &str, vals: impl Iterator<Item = u64>) -> ColIndex {
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.section(name, &bytes)
    }

    fn i32s(&mut self, name: &str, vals: impl Iterator<Item = i32>) -> ColIndex {
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.section(name, &bytes)
    }

    fn u8s(&mut self, name: &str, vals: impl Iterator<Item = u8>) -> ColIndex {
        let bytes: Vec<u8> = vals.collect();
        self.section(name, &bytes)
    }
}

impl TraceArtifact {
    /// Snapshot a log into its persistable form. `program` and `health`
    /// come from the tool run (the log itself does not carry them);
    /// everything else — shard ids, per-shard sorted columns, stats
    /// metadata — is derived from the log so the round trip is closed.
    pub fn from_log(log: &TraceLog, program: &str, health: TraceHealth) -> TraceArtifact {
        let shards = log
            .shard_parts()
            .into_iter()
            .map(|(shard, ops, targets)| ShardColumns {
                shard,
                ops,
                targets,
            })
            .collect();
        TraceArtifact {
            meta: TraceMeta {
                program: program.to_string(),
                total_time_ns: log.total_time().as_nanos(),
                peak_alloc_bytes: log.space_stats().peak_alloc_bytes as u64,
                duplicate_ids: log.duplicate_id_count(),
            },
            health,
            shards,
        }
    }

    /// Serialize to the version-1 binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SectionWriter::new();
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            let ops = &s.ops;
            let op_cols = vec![
                w.u64s("ids", ops.ids.iter().map(|i| i.0)),
                w.u8s("kinds", ops.kinds.iter().map(|&k| encode_data_op_kind(k))),
                w.i32s("src_devices", ops.src_devices.iter().map(|d| d.raw())),
                w.i32s("dest_devices", ops.dest_devices.iter().map(|d| d.raw())),
                w.u64s("src_addrs", ops.src_addrs.iter().copied()),
                w.u64s("dest_addrs", ops.dest_addrs.iter().copied()),
                w.u64s("bytes", ops.bytes.iter().copied()),
                w.u64s(
                    "hash_values",
                    ops.hashes.iter().map(|h| h.map(|v| v.0).unwrap_or(0)),
                ),
                w.u8s("hash_flags", ops.hashes.iter().map(|h| h.is_some() as u8)),
                w.u64s("starts", ops.starts.iter().map(|t| t.as_nanos())),
                w.u64s("ends", ops.ends.iter().map(|t| t.as_nanos())),
                w.u64s("codeptrs", ops.codeptrs.iter().map(|c| c.0)),
            ];
            let t = &s.targets;
            let target_cols = vec![
                w.u64s("ids", t.ids.iter().map(|i| i.0)),
                w.i32s("devices", t.devices.iter().map(|d| d.raw())),
                w.u8s("kinds", t.kinds.iter().map(|&k| encode_target_kind(k))),
                w.u64s("starts", t.starts.iter().map(|x| x.as_nanos())),
                w.u64s("ends", t.ends.iter().map(|x| x.as_nanos())),
                w.u64s("codeptrs", t.codeptrs.iter().map(|c| c.0)),
            ];
            shards.push(ShardIndex {
                shard: s.shard,
                ops: TableIndex {
                    rows: ops.len() as u64,
                    cols: op_cols,
                },
                targets: TableIndex {
                    rows: t.len() as u64,
                    cols: target_cols,
                },
            });
        }
        let footer = Footer {
            version: TRACE_VERSION,
            meta: self.meta.clone(),
            health: self.health,
            shards,
        };
        // Invariant, not event data: the footer is built from plain
        // serializable types; serialization cannot fail.
        #[allow(clippy::expect_used)]
        let footer_bytes = serde_json::to_string(&footer)
            .expect("footer serialization cannot fail")
            .into_bytes();
        let mut buf = w.buf;
        let crc = fnv1a64(&footer_bytes);
        buf.extend_from_slice(&footer_bytes);
        buf.extend_from_slice(&(footer_bytes.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&TAIL_MAGIC);
        buf
    }

    /// Rebuild the chronological columnar hydration — the detector
    /// input. Per-shard columns are k-way merged by `(start, id,
    /// shard order)`, and kernels are filtered from the target columns
    /// record-first, exactly mirroring [`TraceLog::columnar`]: the
    /// result is field-for-field identical to hydrating the original
    /// log in memory.
    pub fn columnar(&self) -> ColumnarView {
        let op_parts: Vec<(Vec<DataOpEvent>, Vec<u32>)> = self
            .shards
            .iter()
            .map(|s| {
                let rows = s.ops.to_events();
                let perm = sorted_perm(&rows, |e| (e.span.start, e.id));
                (rows, perm)
            })
            .collect();
        let kernel_parts: Vec<(Vec<TargetEvent>, Vec<u32>)> = self
            .shards
            .iter()
            .map(|s| {
                let rows: Vec<TargetEvent> = (0..s.targets.len())
                    .filter(|&i| s.targets.kinds[i] == TargetKind::Kernel)
                    .map(|i| s.targets.event(i))
                    .collect();
                let perm = sorted_perm(&rows, |e| (e.span.start, e.id));
                (rows, perm)
            })
            .collect();
        let mut ops = DataOpColumns::with_capacity(op_parts.iter().map(|(r, _)| r.len()).sum());
        merge_sorted_parts(&op_parts, |e| (e.span.start, e.id), |e| ops.push(e));
        let mut kernels =
            TargetColumns::with_capacity(kernel_parts.iter().map(|(r, _)| r.len()).sum());
        merge_sorted_parts(&kernel_parts, |e| (e.span.start, e.id), |e| kernels.push(e));
        ColumnarView { ops, kernels }
    }

    /// Chronological hydration of every target construct, matching
    /// [`TraceLog::target_events_sorted`] on the original log.
    pub fn target_events_sorted(&self) -> Vec<TargetEvent> {
        let parts: Vec<(Vec<TargetEvent>, Vec<u32>)> = self
            .shards
            .iter()
            .map(|s| {
                let rows = s.targets.to_events();
                let perm = sorted_perm(&rows, |e| (e.span.start, e.id));
                (rows, perm)
            })
            .collect();
        let mut out = Vec::with_capacity(parts.iter().map(|(r, _)| r.len()).sum());
        merge_sorted_parts(&parts, |e| (e.span.start, e.id), |e| out.push(e.clone()));
        out
    }

    /// Number of persisted data-op events.
    pub fn data_op_count(&self) -> usize {
        self.shards.iter().map(|s| s.ops.len()).sum()
    }

    /// Number of persisted target events.
    pub fn target_count(&self) -> usize {
        self.shards.iter().map(|s| s.targets.len()).sum()
    }

    /// Recompute aggregate statistics from the persisted columns —
    /// identical to [`TraceLog::stats`] on the original log (the sums
    /// run over the same event values; `total_time` comes from the
    /// persisted metadata).
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for shard in &self.shards {
            let ops = &shard.ops;
            for i in 0..ops.len() {
                let dur = SimDuration(
                    ops.ends[i]
                        .as_nanos()
                        .saturating_sub(ops.starts[i].as_nanos()),
                );
                match ops.kinds[i] {
                    DataOpKind::Transfer => {
                        s.transfers += 1;
                        s.bytes_transferred += ops.bytes[i];
                        s.transfer_time += dur;
                        let (src, dest) = (ops.src_devices[i], ops.dest_devices[i]);
                        if src.is_host() && dest.is_target() {
                            s.h2d_transfers += 1;
                        } else if src.is_target() && dest.is_host() {
                            s.d2h_transfers += 1;
                        }
                    }
                    DataOpKind::Alloc => {
                        s.allocs += 1;
                        s.bytes_allocated += ops.bytes[i];
                        s.alloc_time += dur;
                    }
                    DataOpKind::Delete => {
                        s.deletes += 1;
                        s.alloc_time += dur;
                    }
                    _ => {}
                }
            }
            let t = &shard.targets;
            for i in 0..t.len() {
                if t.kinds[i] == TargetKind::Kernel {
                    s.kernels += 1;
                    s.kernel_time +=
                        SimDuration(t.ends[i].as_nanos().saturating_sub(t.starts[i].as_nanos()));
                }
            }
        }
        s.total_time = SimDuration(self.meta.total_time_ns);
        s
    }

    /// Space accounting reconstructed from the persisted columns and
    /// metadata, matching [`TraceLog::space_stats`].
    pub fn space_stats(&self) -> SpaceStats {
        let data_op_records = self.data_op_count();
        let target_records = self.target_count();
        SpaceStats {
            data_op_records,
            target_records,
            record_bytes: data_op_records * DATA_OP_RECORD_BYTES
                + target_records * TARGET_RECORD_BYTES,
            peak_alloc_bytes: self.meta.peak_alloc_bytes as usize,
        }
    }
}

// ------------------------------------------------------------------
// Reader.
// ------------------------------------------------------------------

struct SectionReader<'a> {
    data: &'a [u8],
    /// First byte past the column sections (start of the footer).
    data_end: usize,
}

impl<'a> SectionReader<'a> {
    /// Borrow one verified section: bounds, 8-byte alignment, exact
    /// width, checksum.
    fn section(&self, shard: u32, col: &ColIndex, rows: u64, width: usize) -> SectionResult<'a> {
        let fail = |reason: &str| {
            Err(PersistError::BadSection {
                shard,
                column: col.name.clone(),
                reason: reason.to_string(),
            })
        };
        let (off, len) = (col.off as usize, col.len as usize);
        if !col.off.is_multiple_of(8) {
            return fail("unaligned offset");
        }
        let Some(end) = off.checked_add(len) else {
            return fail("offset overflow");
        };
        if off < HEADER_BYTES || end > self.data_end {
            return fail("out of bounds");
        }
        let Some(expect) = (rows as usize).checked_mul(width) else {
            return fail("row count overflow");
        };
        if len != expect {
            return fail("length does not match row count");
        }
        let bytes = &self.data[off..end];
        if fnv1a64(bytes) != col.crc {
            return fail("checksum mismatch");
        }
        Ok(bytes)
    }
}

type SectionResult<'a> = Result<&'a [u8], PersistError>;

fn read_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            u64::from_le_bytes(a)
        })
        .collect()
}

fn read_i32s(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| {
            let mut a = [0u8; 4];
            a.copy_from_slice(c);
            i32::from_le_bytes(a)
        })
        .collect()
}

/// Locate a table's column by name and verify the footer lists exactly
/// the expected column set.
fn table_cols<'t>(
    shard: u32,
    table: &'t TableIndex,
    spec: &[(&str, usize)],
) -> Result<Vec<&'t ColIndex>, PersistError> {
    let mut out = Vec::with_capacity(spec.len());
    for &(name, _) in spec {
        match table.cols.iter().find(|c| c.name == name) {
            Some(c) => out.push(c),
            None => {
                return Err(PersistError::BadSection {
                    shard,
                    column: name.to_string(),
                    reason: "column missing from footer index".to_string(),
                })
            }
        }
    }
    Ok(out)
}

fn decode_shard(r: &SectionReader<'_>, ix: &ShardIndex) -> Result<ShardColumns, PersistError> {
    let shard = ix.shard;

    let cols = table_cols(shard, &ix.ops, OP_COLS)?;
    let mut sections = Vec::with_capacity(cols.len());
    for (col, &(_, width)) in cols.iter().zip(OP_COLS) {
        sections.push(r.section(shard, col, ix.ops.rows, width)?);
    }
    let n = ix.ops.rows as usize;
    let hash_values = read_u64s(sections[7]);
    let hash_flags = sections[8];
    let mut ops = DataOpColumns {
        ids: read_u64s(sections[0]).into_iter().map(EventId).collect(),
        kinds: sections[1]
            .iter()
            .map(|&k| decode_data_op_kind(k))
            .collect(),
        src_devices: read_i32s(sections[2]).into_iter().map(DeviceId).collect(),
        dest_devices: read_i32s(sections[3]).into_iter().map(DeviceId).collect(),
        src_addrs: read_u64s(sections[4]),
        dest_addrs: read_u64s(sections[5]),
        bytes: read_u64s(sections[6]),
        hashes: (0..n)
            .map(|i| (hash_flags[i] != 0).then(|| HashVal(hash_values[i])))
            .collect(),
        starts: read_u64s(sections[9]).into_iter().map(SimTime).collect(),
        ends: read_u64s(sections[10]).into_iter().map(SimTime).collect(),
        codeptrs: read_u64s(sections[11]).into_iter().map(CodePtr).collect(),
    };

    let cols = table_cols(shard, &ix.targets, TARGET_COLS)?;
    let mut sections = Vec::with_capacity(cols.len());
    for (col, &(_, width)) in cols.iter().zip(TARGET_COLS) {
        sections.push(r.section(shard, col, ix.targets.rows, width)?);
    }
    let mut targets = TargetColumns {
        ids: read_u64s(sections[0]).into_iter().map(EventId).collect(),
        devices: read_i32s(sections[1]).into_iter().map(DeviceId).collect(),
        kinds: sections[2].iter().map(|&k| decode_target_kind(k)).collect(),
        starts: read_u64s(sections[3]).into_iter().map(SimTime).collect(),
        ends: read_u64s(sections[4]).into_iter().map(SimTime).collect(),
        codeptrs: read_u64s(sections[5]).into_iter().map(CodePtr).collect(),
    };

    // Sortedness is an invariant of everything downstream (the k-way
    // merge, the detectors). A hostile or foreign writer may have
    // emitted unsorted columns that still checksum — normalize with the
    // same stable sort hydration uses instead of trusting them.
    ensure_sorted_ops(&mut ops);
    ensure_sorted_targets(&mut targets);
    Ok(ShardColumns {
        shard,
        ops,
        targets,
    })
}

fn ensure_sorted_ops(cols: &mut DataOpColumns) {
    let sorted = (1..cols.len())
        .all(|i| (cols.starts[i - 1], cols.ids[i - 1]) <= (cols.starts[i], cols.ids[i]));
    if sorted {
        return;
    }
    let rows = cols.to_events();
    let mut out = DataOpColumns::with_capacity(rows.len());
    for &i in &sorted_perm(&rows, |e| (e.span.start, e.id)) {
        out.push(&rows[i as usize]);
    }
    *cols = out;
}

fn ensure_sorted_targets(cols: &mut TargetColumns) {
    let sorted = (1..cols.len())
        .all(|i| (cols.starts[i - 1], cols.ids[i - 1]) <= (cols.starts[i], cols.ids[i]));
    if sorted {
        return;
    }
    let rows = cols.to_events();
    let mut out = TargetColumns::with_capacity(rows.len());
    for &i in &sorted_perm(&rows, |e| (e.span.start, e.id)) {
        out.push(&rows[i as usize]);
    }
    *cols = out;
}

/// Parse the envelope (magics, version, checksummed footer) and return
/// the footer plus a section reader over the column region.
fn read_envelope(bytes: &[u8]) -> Result<(Footer, SectionReader<'_>), PersistError> {
    if bytes.len() < HEADER_BYTES + TAIL_BYTES {
        return Err(PersistError::TooShort);
    }
    if bytes[..8] != TRACE_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(v);
    if version != TRACE_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let len = bytes.len();
    if bytes[len - 8..] != TAIL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[len - TAIL_BYTES..len - 16]);
    let footer_len = u64::from_le_bytes(w) as usize;
    w.copy_from_slice(&bytes[len - 16..len - 8]);
    let footer_crc = u64::from_le_bytes(w);
    let footer_end = len - TAIL_BYTES;
    let Some(footer_start) = footer_end.checked_sub(footer_len) else {
        return Err(PersistError::BadFooter("length out of bounds".to_string()));
    };
    if footer_start < HEADER_BYTES {
        return Err(PersistError::BadFooter("length out of bounds".to_string()));
    }
    let footer_bytes = &bytes[footer_start..footer_end];
    if fnv1a64(footer_bytes) != footer_crc {
        return Err(PersistError::BadFooter("checksum mismatch".to_string()));
    }
    let footer_str =
        std::str::from_utf8(footer_bytes).map_err(|e| PersistError::BadFooter(e.to_string()))?;
    let footer: Footer =
        serde_json::from_str(footer_str).map_err(|e| PersistError::BadFooter(e.to_string()))?;
    if footer.version != TRACE_VERSION {
        return Err(PersistError::BadVersion(footer.version));
    }
    let reader = SectionReader {
        data: bytes,
        data_end: footer_start,
    };
    Ok((footer, reader))
}

/// Strict load: any unverifiable byte is an error. Writers use this to
/// validate their own output; ingest paths use [`load_trace_lenient`].
pub fn load_trace(bytes: &[u8]) -> Result<TraceArtifact, PersistError> {
    let (footer, reader) = read_envelope(bytes)?;
    let mut shards = Vec::with_capacity(footer.shards.len());
    for ix in &footer.shards {
        shards.push(decode_shard(&reader, ix)?);
    }
    Ok(TraceArtifact {
        meta: footer.meta,
        health: footer.health,
        shards,
    })
}

/// Lenient load: never panics, never silently drops. An unverifiable
/// column quarantines its whole shard and adds the shard's claimed
/// event count to [`TraceHealth::unreadable`]; an undecodable envelope
/// yields an empty artifact with `unreadable = 1`. The returned
/// artifact's health is the persisted health plus those drops, so
/// `health.warning()` reports the degradation exactly like every other
/// quarantine bucket.
pub fn load_trace_lenient(bytes: &[u8]) -> TraceArtifact {
    let (footer, reader) = match read_envelope(bytes) {
        Ok(ok) => ok,
        Err(_) => {
            return TraceArtifact {
                meta: TraceMeta::default(),
                health: TraceHealth {
                    unreadable: 1,
                    ..TraceHealth::default()
                },
                shards: Vec::new(),
            }
        }
    };
    let mut health = footer.health;
    let mut shards = Vec::with_capacity(footer.shards.len());
    for ix in &footer.shards {
        match decode_shard(&reader, ix) {
            Ok(s) => shards.push(s),
            Err(_) => health.unreadable += ix.ops.rows + ix.targets.rows,
        }
    }
    TraceArtifact {
        meta: footer.meta,
        health,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_model::TimeSpan;

    fn span(a: u64, b: u64) -> TimeSpan {
        TimeSpan::new(SimTime(a), SimTime(b))
    }

    fn sample_merged_log() -> TraceLog {
        let mut a = TraceLog::for_shard(0);
        let mut b = TraceLog::for_shard(3);
        for &t in &[40u64, 10, 25] {
            a.record_data_op(
                DataOpKind::Transfer,
                DeviceId::HOST,
                DeviceId::target(0),
                0x1000 + t,
                0xd000,
                64,
                Some(t ^ 0xabc),
                span(t, t + 30),
                CodePtr(0x100),
            );
        }
        a.record_target(
            TargetKind::Region,
            DeviceId::target(0),
            span(5, 95),
            CodePtr(0x110),
        );
        a.record_target(
            TargetKind::Kernel,
            DeviceId::target(0),
            span(20, 60),
            CodePtr(0x120),
        );
        for &t in &[10u64, 10] {
            b.record_data_op(
                DataOpKind::Alloc,
                DeviceId::HOST,
                DeviceId::target(1),
                0x2000,
                0xe000,
                32,
                None,
                span(t, t + 5),
                CodePtr(0x200),
            );
        }
        b.record_target(
            TargetKind::Kernel,
            DeviceId::target(1),
            span(12, 18),
            CodePtr(0x210),
        );
        let mut merged = TraceLog::merge_shards(vec![a, b]);
        merged.set_total_time(SimDuration(1_000));
        merged
    }

    fn sample_health() -> TraceHealth {
        TraceHealth {
            orphaned: 2,
            truncated: 1,
            ..TraceHealth::default()
        }
    }

    #[test]
    fn round_trip_is_field_for_field_identical() {
        let log = sample_merged_log();
        let artifact = TraceArtifact::from_log(&log, "sample", sample_health());
        let bytes = artifact.to_bytes();
        let loaded = load_trace(&bytes).unwrap();
        assert_eq!(loaded, artifact);
        assert_eq!(&loaded.columnar(), log.columnar());
        assert_eq!(loaded.target_events_sorted(), log.target_events_sorted());
        assert_eq!(loaded.health, sample_health());
        assert_eq!(loaded.meta.program, "sample");
        assert_eq!(
            serde_json::to_string(&loaded.stats()).unwrap(),
            serde_json::to_string(&log.stats()).unwrap()
        );
        assert_eq!(loaded.space_stats(), log.space_stats());
        assert_eq!(
            loaded.shards.iter().map(|s| s.shard).collect::<Vec<_>>(),
            vec![0, 3]
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let log = TraceLog::new();
        let artifact = TraceArtifact::from_log(&log, "empty", TraceHealth::default());
        let loaded = load_trace(&artifact.to_bytes()).unwrap();
        assert_eq!(loaded, artifact);
        assert!(loaded.shards.is_empty());
        assert_eq!(&loaded.columnar(), log.columnar());
    }

    #[test]
    #[cfg_attr(miri, ignore = "O(len^2) truncation sweep is too slow under miri")]
    fn lenient_load_never_panics_on_truncation() {
        let log = sample_merged_log();
        let bytes = TraceArtifact::from_log(&log, "t", TraceHealth::default()).to_bytes();
        for cut in 0..bytes.len() {
            let art = load_trace_lenient(&bytes[..cut]);
            assert!(
                art.health.unreadable > 0,
                "truncation at {cut}/{} must be accounted",
                bytes.len()
            );
            assert!(art.health.warning().is_some());
        }
        // The untruncated file is clean.
        assert_eq!(load_trace_lenient(&bytes).health.unreadable, 0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "O(len^2) bit-flip sweep is too slow under miri")]
    fn lenient_load_quarantines_bit_flips_or_preserves_data() {
        let log = sample_merged_log();
        let artifact = TraceArtifact::from_log(&log, "t", TraceHealth::default());
        let bytes = artifact.to_bytes();
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            let art = load_trace_lenient(&corrupt);
            // Either the flip hit slack (alignment padding) and the data
            // is intact, or the loader accounted the drop — never a
            // silent mutation, never a panic.
            if art.health.unreadable == 0 {
                assert_eq!(art, artifact, "silent corruption at byte {pos}");
            }
        }
    }

    #[test]
    fn strict_load_rejects_what_lenient_quarantines() {
        let log = sample_merged_log();
        let bytes = TraceArtifact::from_log(&log, "t", TraceHealth::default()).to_bytes();
        assert!(load_trace(&bytes).is_ok());
        let mut corrupt = bytes.clone();
        corrupt[HEADER_BYTES + 3] ^= 0xff; // inside shard 0's id column
        assert!(load_trace(&corrupt).is_err());
        assert!(load_trace(&bytes[..bytes.len() - 1]).is_err());
        assert!(load_trace(b"not a trace").is_err());
    }

    #[test]
    fn unsorted_columns_are_normalized_on_load() {
        // A foreign writer emits rows in reverse order; the loader must
        // restore the (start, id) invariant the detectors require.
        let mut ops = DataOpColumns::default();
        for t in (0..4u64).rev() {
            ops.push(&DataOpEvent {
                id: EventId(t),
                kind: DataOpKind::Transfer,
                src_device: DeviceId::HOST,
                dest_device: DeviceId::target(0),
                src_addr: t,
                dest_addr: 0,
                bytes: 1,
                hash: Some(HashVal(t)),
                span: span(t * 10, t * 10 + 5),
                codeptr: CodePtr(0x1),
            });
        }
        let artifact = TraceArtifact {
            meta: TraceMeta::default(),
            health: TraceHealth::default(),
            shards: vec![ShardColumns {
                shard: 0,
                ops,
                targets: TargetColumns::default(),
            }],
        };
        let loaded = load_trace(&artifact.to_bytes()).unwrap();
        let starts: Vec<u64> = loaded.shards[0].ops.starts.iter().map(|t| t.0).collect();
        assert_eq!(starts, vec![0, 10, 20, 30]);
    }

    #[test]
    fn version_and_magic_are_checked() {
        let log = TraceLog::new();
        let mut bytes = TraceArtifact::from_log(&log, "v", TraceHealth::default()).to_bytes();
        bytes[8] = 99; // version
        assert_eq!(load_trace(&bytes), Err(PersistError::BadVersion(99)));
        let art = load_trace_lenient(&bytes);
        assert_eq!(art.health.unreadable, 1);
        assert!(art.shards.is_empty());
    }
}
