//! Struct-of-arrays ("columnar") event hydration.
//!
//! The five §5 detectors sweep the whole trace once, touching only a
//! few fields per step (a hash here, a start time there). Hydrating
//! into row-oriented `Vec<DataOpEvent>` makes every step drag a full
//! ~96-byte row through the cache; hydrating into one column per field
//! lets each state machine stream over the handful of dense arrays it
//! actually reads. [`ColumnarView`] is that layout: the memoized
//! product of [`crate::TraceLog`] hydration, built in a single indexing
//! pass (per-part permutation sort + k-way shard merge) and shared by
//! the fused sweep, streaming finalize, export, and stats paths.
//!
//! Row views are *derived* from the columns on demand
//! ([`DataOpColumns::to_events`]), so row and columnar consumers can
//! never disagree: both read the same scatter of the same packed
//! records, in the same `(start, id)` order the algorithms require.

use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};

/// Column-per-field storage for data-operation events, in chronological
/// `(start, id)` order. All columns share one length; index `i` across
/// every column is the decomposition of one [`DataOpEvent`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DataOpColumns {
    /// Event ids (shard in the high half — see [`crate::TraceLog`]).
    pub ids: Vec<EventId>,
    /// Operation kinds.
    pub kinds: Vec<DataOpKind>,
    /// Source devices.
    pub src_devices: Vec<DeviceId>,
    /// Destination devices.
    pub dest_devices: Vec<DeviceId>,
    /// Source addresses (host address for alloc/delete).
    pub src_addrs: Vec<u64>,
    /// Destination addresses.
    pub dest_addrs: Vec<u64>,
    /// Bytes moved or allocated.
    pub bytes: Vec<u64>,
    /// Content hashes (transfers with payload only).
    pub hashes: Vec<Option<HashVal>>,
    /// Span starts.
    pub starts: Vec<SimTime>,
    /// Span ends.
    pub ends: Vec<SimTime>,
    /// Code pointers.
    pub codeptrs: Vec<CodePtr>,
}

impl DataOpColumns {
    /// Empty columns with room for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        DataOpColumns {
            ids: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            src_devices: Vec::with_capacity(n),
            dest_devices: Vec::with_capacity(n),
            src_addrs: Vec::with_capacity(n),
            dest_addrs: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            hashes: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            codeptrs: Vec::with_capacity(n),
        }
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Are the columns empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Scatter one event across the columns (appended at the end; the
    /// caller is responsible for feeding events in `(start, id)` order).
    pub fn push(&mut self, e: &DataOpEvent) {
        self.ids.push(e.id);
        self.kinds.push(e.kind);
        self.src_devices.push(e.src_device);
        self.dest_devices.push(e.dest_device);
        self.src_addrs.push(e.src_addr);
        self.dest_addrs.push(e.dest_addr);
        self.bytes.push(e.bytes);
        self.hashes.push(e.hash);
        self.starts.push(e.span.start);
        self.ends.push(e.span.end);
        self.codeptrs.push(e.codeptr);
    }

    /// Gather event `i` back into a row.
    #[inline]
    pub fn event(&self, i: usize) -> DataOpEvent {
        DataOpEvent {
            id: self.ids[i],
            kind: self.kinds[i],
            src_device: self.src_devices[i],
            dest_device: self.dest_devices[i],
            src_addr: self.src_addrs[i],
            dest_addr: self.dest_addrs[i],
            bytes: self.bytes[i],
            hash: self.hashes[i],
            span: TimeSpan::new(self.starts[i], self.ends[i]),
            codeptr: self.codeptrs[i],
        }
    }

    /// Gather every event into a row vector (the derived row view).
    pub fn to_events(&self) -> Vec<DataOpEvent> {
        (0..self.len()).map(|i| self.event(i)).collect()
    }

    /// Build columns from an already-sorted row slice.
    pub fn from_events(events: &[DataOpEvent]) -> Self {
        let mut cols = Self::with_capacity(events.len());
        for e in events {
            cols.push(e);
        }
        cols
    }
}

/// Column-per-field storage for target-construct events (the detector
/// paths only ever see kernel executions, but the kind column is kept
/// so caller-provided slices round-trip exactly).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TargetColumns {
    /// Event ids.
    pub ids: Vec<EventId>,
    /// Devices the constructs targeted.
    pub devices: Vec<DeviceId>,
    /// Construct kinds.
    pub kinds: Vec<TargetKind>,
    /// Span starts.
    pub starts: Vec<SimTime>,
    /// Span ends.
    pub ends: Vec<SimTime>,
    /// Code pointers.
    pub codeptrs: Vec<CodePtr>,
}

impl TargetColumns {
    /// Empty columns with room for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        TargetColumns {
            ids: Vec::with_capacity(n),
            devices: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            codeptrs: Vec::with_capacity(n),
        }
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Are the columns empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Scatter one event across the columns.
    pub fn push(&mut self, e: &TargetEvent) {
        self.ids.push(e.id);
        self.devices.push(e.device);
        self.kinds.push(e.kind);
        self.starts.push(e.span.start);
        self.ends.push(e.span.end);
        self.codeptrs.push(e.codeptr);
    }

    /// Gather event `i` back into a row.
    #[inline]
    pub fn event(&self, i: usize) -> TargetEvent {
        TargetEvent {
            id: self.ids[i],
            device: self.devices[i],
            kind: self.kinds[i],
            span: TimeSpan::new(self.starts[i], self.ends[i]),
            codeptr: self.codeptrs[i],
        }
    }

    /// Gather every event into a row vector.
    pub fn to_events(&self) -> Vec<TargetEvent> {
        (0..self.len()).map(|i| self.event(i)).collect()
    }

    /// Build columns from an already-sorted row slice.
    pub fn from_events(events: &[TargetEvent]) -> Self {
        let mut cols = Self::with_capacity(events.len());
        for e in events {
            cols.push(e);
        }
        cols
    }
}

/// The memoized columnar hydration of a trace: chronological data-op
/// columns plus kernel-execution columns — the two inputs of
/// Algorithms 1–5 — decomposed field-by-field.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ColumnarView {
    /// Data operations, `(start, id)`-ordered.
    pub ops: DataOpColumns,
    /// Kernel executions, `(start, id)`-ordered.
    pub kernels: TargetColumns,
}

impl ColumnarView {
    /// Build a view from caller-sorted row slices (the slice-input
    /// detector entry points; [`crate::TraceLog`] builds its memoized
    /// view straight from packed records instead).
    pub fn from_events(ops: &[DataOpEvent], kernels: &[TargetEvent]) -> Self {
        ColumnarView {
            ops: DataOpColumns::from_events(ops),
            kernels: TargetColumns::from_events(kernels),
        }
    }
}

/// Permutation of `rows` sorted by `key` (stable: equal keys keep
/// append order, matching the row hydration's stable sort).
pub(crate) fn sorted_perm<T, K: Ord>(rows: &[T], key: impl Fn(&T) -> K) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..rows.len() as u32).collect();
    perm.sort_by_key(|&i| key(&rows[i as usize]));
    perm
}

/// K-way merge of per-part sorted permutations.
///
/// Each part supplies `(rows, perm)` where `perm` orders `rows` by
/// `key`. Emits every row across all parts in ascending
/// `(key, part index)` order — the part index tie-break reproduces the
/// stable concat-then-sort order the row hydration used, including for
/// adversarial shard sets whose event ids collide.
pub(crate) fn merge_sorted_parts<T, K: Ord + Copy>(
    parts: &[(Vec<T>, Vec<u32>)],
    key: impl Fn(&T) -> K,
    mut emit: impl FnMut(&T),
) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if parts.len() == 1 {
        let (rows, perm) = &parts[0];
        for &i in perm {
            emit(&rows[i as usize]);
        }
        return;
    }
    // Heap of (next key, part index); cursors index into each perm.
    let mut cursors = vec![0usize; parts.len()];
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::with_capacity(parts.len());
    for (px, (rows, perm)) in parts.iter().enumerate() {
        if let Some(&first) = perm.first() {
            heap.push(Reverse((key(&rows[first as usize]), px)));
        }
    }
    while let Some(Reverse((_, px))) = heap.pop() {
        let (rows, perm) = &parts[px];
        let cur = cursors[px];
        emit(&rows[perm[cur] as usize]);
        cursors[px] = cur + 1;
        if let Some(&next) = perm.get(cur + 1) {
            heap.push(Reverse((key(&rows[next as usize]), px)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: u64, start: u64) -> DataOpEvent {
        DataOpEvent {
            id: EventId(id),
            kind: DataOpKind::Transfer,
            src_device: DeviceId::HOST,
            dest_device: DeviceId::target(0),
            src_addr: 0x1000 + id,
            dest_addr: 0xd000,
            bytes: 64,
            hash: Some(HashVal(id ^ 0xabc)),
            span: TimeSpan::new(SimTime(start), SimTime(start + 10)),
            codeptr: CodePtr(0x42),
        }
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let rows: Vec<DataOpEvent> = (0..17).map(|i| op(i, i * 3)).collect();
        let cols = DataOpColumns::from_events(&rows);
        assert_eq!(cols.len(), rows.len());
        assert_eq!(cols.to_events(), rows);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&cols.event(i), r);
        }
    }

    #[test]
    fn target_rows_round_trip_through_columns() {
        let rows: Vec<TargetEvent> = (0..9)
            .map(|i| TargetEvent {
                id: EventId(i),
                device: DeviceId::target((i % 3) as u32),
                kind: if i % 2 == 0 {
                    TargetKind::Kernel
                } else {
                    TargetKind::Region
                },
                span: TimeSpan::new(SimTime(i * 5), SimTime(i * 5 + 4)),
                codeptr: CodePtr(0x100 + i),
            })
            .collect();
        let cols = TargetColumns::from_events(&rows);
        assert_eq!(cols.to_events(), rows);
    }

    #[test]
    fn merge_orders_by_key_then_part() {
        // Part 0: keys 1, 5, 5; part 1: keys 1, 5, 9. Equal keys must
        // come out part-0-first (the stable concat order).
        let parts = vec![
            (vec![(1u64, "a0"), (5, "a1"), (5, "a2")], vec![0u32, 1, 2]),
            (vec![(1u64, "b0"), (5, "b1"), (9, "b2")], vec![0u32, 1, 2]),
        ];
        let mut out = Vec::new();
        merge_sorted_parts(&parts, |t| t.0, |t| out.push(t.1));
        assert_eq!(out, vec!["a0", "b0", "a1", "a2", "b1", "b2"]);
    }

    #[test]
    fn merge_respects_permutations() {
        // Rows stored out of order; perms present them sorted.
        let parts = vec![
            (vec![(5u64, "a1"), (1, "a0")], vec![1u32, 0]),
            (vec![(9u64, "b1"), (2, "b0")], vec![1u32, 0]),
        ];
        let mut out = Vec::new();
        merge_sorted_parts(&parts, |t| t.0, |t| out.push(t.1));
        assert_eq!(out, vec!["a0", "b0", "a1", "b1"]);
    }
}
