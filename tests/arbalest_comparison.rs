//! Table 2 reproduction: OMPDataPerf vs Arbalest-Vec on the five
//! HeCBench programs (§7.7).

use odp_arbalest::{AnomalyKind, ArbalestVecTool};
use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant, Workload};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

/// Run both tools (separately — each gets its own pristine run, as in
/// the paper's methodology) and return (OMPDataPerf categories,
/// Arbalest summary).
fn both_tools(w: &dyn Workload) -> (String, String) {
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Medium, Variant::Original);
    rt.finish();
    let report = ompdataperf::analyze(&handle.take_trace(), None);
    let c = report.counts;
    let mut cats = Vec::new();
    if c.dd > 0 {
        cats.push("DD");
    }
    if c.rt > 0 {
        cats.push("RT");
    }
    if c.ra > 0 {
        cats.push("RA");
    }
    if c.ua > 0 {
        cats.push("UA");
    }
    if c.ut > 0 {
        cats.push("UT");
    }
    let odp = if cats.is_empty() {
        "N/A".to_string()
    } else {
        cats.join(", ")
    };

    let mut rt2 = Runtime::with_defaults();
    let (av_tool, av_handle) = ArbalestVecTool::new();
    rt2.attach_tool(Box::new(av_tool));
    w.run(&mut rt2, ProblemSize::Medium, Variant::Original);
    rt2.finish();
    (odp, av_handle.report().summary())
}

#[test]
fn resize_omp_row() {
    let w = odp_workloads::by_name("resize-omp").unwrap();
    let (odp, av) = both_tools(w.as_ref());
    assert_eq!(odp, "DD, RA");
    assert_eq!(av, "N/A");
}

#[test]
fn mandelbrot_omp_row() {
    let w = odp_workloads::by_name("mandelbrot-omp").unwrap();
    let (odp, av) = both_tools(w.as_ref());
    assert_eq!(odp, "DD, RA, UA");
    assert_eq!(av, "UUM");
}

#[test]
fn accuracy_omp_row() {
    let w = odp_workloads::by_name("accuracy-omp").unwrap();
    let (odp, av) = both_tools(w.as_ref());
    assert_eq!(odp, "DD, UA, UT");
    assert_eq!(av, "N/A");
}

#[test]
fn lif_omp_row() {
    let w = odp_workloads::by_name("lif-omp").unwrap();
    let (odp, av) = both_tools(w.as_ref());
    assert_eq!(odp, "N/A");
    assert_eq!(av, "UUM");
}

#[test]
fn bspline_vgh_omp_row() {
    let w = odp_workloads::by_name("bspline-vgh-omp").unwrap();
    let (odp, av) = both_tools(w.as_ref());
    assert_eq!(odp, "DD, UA, UT");
    assert_eq!(av, "UUM");
}

#[test]
fn arbalest_uum_reports_are_false_positives_on_write_only_vars() {
    // §7.7: "The reported variables were ... All of these were
    // write-only inside the kernel" — i.e., the UUM anomalies point at
    // outputs, not at genuinely consumed uninitialized data.
    let w = odp_workloads::by_name("bspline-vgh-omp").unwrap();
    let mut rt = Runtime::with_defaults();
    let (av_tool, av_handle) = ArbalestVecTool::new();
    rt.attach_tool(Box::new(av_tool));
    w.run(&mut rt, ProblemSize::Medium, Variant::Original);
    rt.finish();
    let report = av_handle.report();
    // walkers_vals[0], walkers_grads[0], walkers_hess[0].
    assert_eq!(report.count(AnomalyKind::Uum), 3);
    assert_eq!(report.count(AnomalyKind::Usd), 0);
    assert_eq!(report.count(AnomalyKind::Uaf), 0);
    assert_eq!(report.count(AnomalyKind::Bo), 0);
}

#[test]
fn fixing_ompdataperf_issues_never_introduces_arbalest_anomalies() {
    // §8: the tools complement each other — after applying OMPDataPerf's
    // fixes, Arbalest (minus its known FPs) stays quiet.
    for name in ["resize-omp", "accuracy-omp"] {
        let w = odp_workloads::by_name(name).unwrap();
        let mut rt = Runtime::with_defaults();
        let (av_tool, av_handle) = ArbalestVecTool::new();
        rt.attach_tool(Box::new(av_tool));
        w.run(&mut rt, ProblemSize::Medium, Variant::Fixed);
        rt.finish();
        assert_eq!(av_handle.report().summary(), "N/A", "{name}");
    }
}

#[test]
fn bspline_fix_reduces_copy_calls_by_99_percent() {
    // §7.7: "a 99 % reduction in the number of calls to copy data to
    // the device."
    let w = odp_workloads::by_name("bspline-vgh-omp").unwrap();

    let h2d_count = |variant: Variant| {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        rt.attach_tool(Box::new(tool));
        w.run(&mut rt, ProblemSize::Medium, variant);
        rt.finish();
        let trace = handle.take_trace();
        trace.stats().h2d_transfers
    };

    let before = h2d_count(Variant::Original);
    let after = h2d_count(Variant::Fixed);
    let reduction = 100.0 * (before - after) as f64 / before as f64;
    assert!(
        reduction >= 99.0,
        "expected ≥99 % reduction, got {reduction:.1}% ({before} → {after})"
    );
}
