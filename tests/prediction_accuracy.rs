//! Figure 4 reproduction: predicted vs actual speedup.
//!
//! §7.6: predictions subtract eliminable transfer/allocation time from
//! the total; the paper reports 14 % average relative error with the
//! tealeaf-Large outlier excluded. Our fixed variants change program
//! structure slightly (as real fixes do), so the prediction is close
//! but not exact — these tests pin the *accuracy band*, not equality.

use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant, Workload};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

struct Fig4Point {
    name: &'static str,
    predicted: f64,
    actual: f64,
}

fn measure(w: &dyn Workload, size: ProblemSize) -> Option<Fig4Point> {
    let (before, after) = w.fig4_pair()?;

    let mut rt1 = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt1.attach_tool(Box::new(tool));
    w.run(&mut rt1, size, before);
    let t_before = rt1.finish().total_time;
    let report = ompdataperf::analyze(&handle.take_trace(), None);

    let mut rt2 = Runtime::with_defaults();
    w.run(&mut rt2, size, after);
    let t_after = rt2.finish().total_time;

    Some(Fig4Point {
        name: w.name(),
        predicted: report.prediction.predicted_speedup,
        actual: t_before.as_nanos() as f64 / t_after.as_nanos().max(1) as f64,
    })
}

#[test]
fn bfs_small_speedup_is_large_and_predicted() {
    // §7.5: fixing bfs gave 2.1× on the small problem size.
    let w = odp_workloads::by_name("bfs").unwrap();
    let p = measure(w.as_ref(), ProblemSize::Small).unwrap();
    assert!(
        p.actual > 1.5 && p.actual < 3.0,
        "bfs small actual speedup {:.2} out of the paper's band",
        p.actual
    );
    let rel_err = (p.predicted - p.actual).abs() / p.actual;
    assert!(
        rel_err < 0.35,
        "bfs prediction off by {:.0}%: predicted {:.2} actual {:.2}",
        rel_err * 100.0,
        p.predicted,
        p.actual
    );
}

#[test]
fn minife_speedup_is_modest_and_predicted() {
    // §7.5: 1.07× for the large problem size.
    let w = odp_workloads::by_name("minife").unwrap();
    let p = measure(w.as_ref(), ProblemSize::Large).unwrap();
    assert!(
        p.actual > 1.01 && p.actual < 1.5,
        "minife large actual speedup {:.2}",
        p.actual
    );
    let rel_err = (p.predicted - p.actual).abs() / p.actual;
    assert!(rel_err < 0.25, "minife rel err {:.2}", rel_err);
}

#[test]
fn xs_benchmarks_have_small_real_speedups() {
    for name in ["rsbench", "xsbench"] {
        let w = odp_workloads::by_name(name).unwrap();
        let p = measure(w.as_ref(), ProblemSize::Medium).unwrap();
        assert!(
            p.actual >= 1.0,
            "{name}: fixing a round trip cannot slow the program ({:.3})",
            p.actual
        );
        assert!(p.predicted >= 1.0);
    }
}

#[test]
fn fleet_accuracy_matches_papers_band() {
    // Mean relative error over all Figure-4 points at Medium, excluding
    // the tealeaf outlier exactly as §7.6 does.
    let mut errs = Vec::new();
    let mut outlier_seen = false;
    for w in odp_workloads::all() {
        let Some(p) = measure(w.as_ref(), ProblemSize::Medium) else {
            continue;
        };
        if p.name == "tealeaf" {
            // The outlier: large actual speedup, under-predicted (§7.6
            // reports 16× actual vs 5.8× predicted on Large).
            outlier_seen = true;
            assert!(
                p.actual > p.predicted,
                "tealeaf should be under-predicted: {:.2} vs {:.2}",
                p.actual,
                p.predicted
            );
            continue;
        }
        errs.push((p.predicted - p.actual).abs() / p.actual);
    }
    assert!(outlier_seen, "tealeaf must contribute a Figure-4 point");
    assert!(errs.len() >= 6, "expected most programs to contribute");
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(
        mean < 0.20,
        "mean relative error {:.1}% exceeds the paper's band",
        mean * 100.0
    );
}

#[test]
fn predicted_savings_never_exceed_measured_runtime() {
    for w in odp_workloads::all() {
        for variant in [Variant::Original, Variant::Synthetic] {
            if !w.supports(variant) {
                continue;
            }
            let mut rt = Runtime::with_defaults();
            let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
            rt.attach_tool(Box::new(tool));
            w.run(&mut rt, ProblemSize::Small, variant);
            let total = rt.finish().total_time;
            let report = ompdataperf::analyze(&handle.take_trace(), None);
            assert!(
                report.prediction.time_saved <= total,
                "{}{}: saved {} > total {}",
                w.name(),
                variant.suffix(),
                report.prediction.time_saved,
                total
            );
        }
    }
}
