//! The paper's Listings 1–2, executed literally against the simulated
//! runtime, must produce exactly the issues §4 attributes to them.

use odp_model::{CodePtr, MapType};
use odp_sim::{map, Kernel, KernelCost, Runtime};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use ompdataperf::Report;

fn with_tool(f: impl FnOnce(&mut Runtime)) -> Report {
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    f(&mut rt);
    rt.finish();
    ompdataperf::analyze(&handle.take_trace(), None)
}

#[test]
fn listing1_duplicate_transfer_and_repeated_alloc() {
    // int a[N], sum = 0, prod = 1;
    // #pragma omp target map(to: a) map(tofrom: sum)   ← region 1
    // #pragma omp target map(to: a) map(tofrom: prod)  ← region 2
    let report = with_tool(|rt| {
        let a = rt.host_alloc("a", 4096);
        rt.host_fill_u32(a, |i| i as u32);
        let sum = rt.host_alloc("sum", 4);
        let prod = rt.host_alloc("prod", 4);
        rt.host_fill_u32(prod, |_| 1);

        rt.target(
            0,
            CodePtr(0x100),
            &[map(MapType::To, a), map(MapType::ToFrom, sum)],
            Kernel::new("sum_reduction", KernelCost::fixed(10_000))
                .reads(&[a])
                .writes(&[sum]),
        );
        rt.target(
            0,
            CodePtr(0x200),
            &[map(MapType::To, a), map(MapType::ToFrom, prod)],
            Kernel::new("prod_reduction", KernelCost::fixed(10_000))
                .reads(&[a])
                .writes(&[prod]),
        );
    });

    // "Duplicate data transfer occurs since a is transferred to the
    // device before entering each target region."
    assert_eq!(report.counts.dd, 1, "{:?}", report.counts);
    // "Required device memory is also allocated and deallocated for
    // each target region."
    assert_eq!(report.counts.ra, 1);
    assert_eq!(report.counts.ut, 0);
    assert_eq!(report.counts.ua, 0);
}

#[test]
fn listing1_fixed_with_target_data_region() {
    // "array a could be mapped over both target regions using a target
    // data directive."
    let report = with_tool(|rt| {
        let a = rt.host_alloc("a", 4096);
        rt.host_fill_u32(a, |i| i as u32);
        let sum = rt.host_alloc("sum", 4);
        let prod = rt.host_alloc("prod", 4);
        rt.host_fill_u32(prod, |_| 1); // int prod = 1 (Listing 1)

        let region = rt.target_data_begin(0, CodePtr(0x90), &[map(MapType::To, a)]);
        rt.target(
            0,
            CodePtr(0x100),
            &[map(MapType::To, a), map(MapType::ToFrom, sum)],
            Kernel::new("sum_reduction", KernelCost::fixed(10_000))
                .reads(&[a])
                .writes(&[sum]),
        );
        rt.target(
            0,
            CodePtr(0x200),
            &[map(MapType::To, a), map(MapType::ToFrom, prod)],
            Kernel::new("prod_reduction", KernelCost::fixed(10_000))
                .reads(&[a])
                .writes(&[prod]),
        );
        rt.target_data_end(region);
    });

    assert_eq!(report.counts.dd, 0, "{:?}", report.counts);
    assert_eq!(report.counts.ra, 0);
}

#[test]
fn listing2_round_trips_and_reallocs() {
    // int a[N] = {};
    // for (i = 0; i < N; ++i)
    //   #pragma omp target parallel for   ← no explicit map
    //     a[j] += j;
    let iters = 5;
    let report = with_tool(|rt| {
        let a = rt.host_alloc("a", 4096);
        for _ in 0..iters {
            rt.target(
                0,
                CodePtr(0x300),
                &[],
                Kernel::new("incr", KernelCost::fixed(5_000))
                    .reads(&[a])
                    .writes(&[a]),
            );
        }
    });

    // Each iteration after the first re-sends what came back: the D2H of
    // iteration i and the H2D of iteration i+1 carry identical bytes.
    assert_eq!(report.counts.rt, iters - 1, "{:?}", report.counts);
    // "array a is reallocated every iteration."
    assert_eq!(report.counts.ra, iters - 1);
    // Kernel mutates a, so no duplicate content lands anywhere twice.
    assert_eq!(report.counts.dd, 0);
}

#[test]
fn listing2_fixed_with_outer_data_region() {
    let iters = 5;
    let report = with_tool(|rt| {
        let a = rt.host_alloc("a", 4096);
        let region = rt.target_data_begin(0, CodePtr(0x290), &[map(MapType::ToFrom, a)]);
        for _ in 0..iters {
            rt.target(
                0,
                CodePtr(0x300),
                &[map(MapType::To, a)],
                Kernel::new("incr", KernelCost::fixed(5_000))
                    .reads(&[a])
                    .writes(&[a]),
            );
        }
        rt.target_data_end(region);
    });

    assert!(report.counts.is_clean(), "{:?}", report.counts);
}

#[test]
fn unused_mapping_patterns_from_section_4_4() {
    // "Unused data mappings are sometimes introduced into programs that
    // contain dead code, overly cautious preemptive transfers, or
    // conditional logic that sometimes bypasses kernel execution."
    let report = with_tool(|rt| {
        let live = rt.host_alloc("live", 1024);
        rt.host_fill_u32(live, |i| i as u32);
        let dead = rt.host_alloc("dead", 1024);
        rt.host_fill_u32(dead, |i| !(i as u32));

        // The conditional bypasses kernel execution, but the data was
        // already mapped and transferred.
        rt.target_enter_data(0, CodePtr(0x400), &[map(MapType::To, dead)]);
        rt.target_exit_data(0, CodePtr(0x410), &[map(MapType::Delete, dead)]);

        rt.target(
            0,
            CodePtr(0x420),
            &[map(MapType::To, live)],
            Kernel::new("work", KernelCost::fixed(1_000)).reads(&[live]),
        );
    });

    assert_eq!(report.counts.ua, 1, "{:?}", report.counts);
    // The dead transfer precedes the only kernel on the device and is
    // never overwritten, so Algorithm 5 cannot prove it unused — exactly
    // the conservatism §5.4 describes.
    assert_eq!(report.counts.ut, 0);
}
