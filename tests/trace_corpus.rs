//! Golden-corpus regression suite for the persistent trace layer.
//!
//! Three checked-in fixtures under `tests/fixtures/` pin the corpus
//! pipeline end to end:
//!
//! - `corpus_babelstream_base.json` / `corpus_babelstream_remediated.json`
//!   — the babelstream pair (baseline vs. live-remediated capture).
//!   The differ must classify their sites *exactly*: both inefficiency
//!   sites persist (remediation shrinks them from 99 occurrences to the
//!   irreducible first occurrence; it cannot move the source line), and
//!   nothing is new or fixed.
//! - `reference_corpus.json` — babelstream + bfs + xsbench, the corpus
//!   CI regenerates and diffs against (the regression gate). Diffing the
//!   babelstream-only base *against* it must trip the gate with exactly
//!   the six bfs/xsbench sites as new.
//! - `babelstream_small.odpt` — one binary trace; loads strictly and
//!   byte-identically, and any corruption degrades the lenient load
//!   into `TraceHealth::unreadable` instead of a panic.
//!
//! Every corpus is regenerated in-process through the same
//! `capture_artifact` + `FleetIngest` path the `odp` CLI uses, so a
//! byte-level mismatch against a fixture means the pipeline's output
//! drifted — exactly what this suite exists to catch. Simulated time is
//! fully deterministic, which is what makes byte-pinning viable.

use odp_trace::persist::{load_trace, load_trace_lenient};
use odp_trace::TraceArtifact;
use odp_workloads::capture::capture_artifact;
use odp_workloads::{by_name, ProblemSize, Variant};
use ompdataperf::analysis::infer_num_devices_columnar;
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::fleet::{diff_corpora, Corpus, FindingKind, FleetIngest};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn fixture_text(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing fixture {name}: {e}"))
}

fn fixture_corpus(name: &str) -> Corpus {
    Corpus::from_json(&fixture_text(name)).unwrap_or_else(|e| panic!("bad fixture {name}: {e}"))
}

/// Capture `names` exactly like `odp trace save --runs <names>` does.
fn capture_corpus(names: &[&str], remediate: bool) -> Corpus {
    let ingest = FleetIngest::new();
    for name in names {
        let w = by_name(name).expect("workload exists");
        let artifact = capture_artifact(&*w, ProblemSize::Small, Variant::Original, remediate);
        ingest.submit(name, artifact.to_bytes());
    }
    ingest.compact()
}

fn site(e: &ompdataperf::fleet::FleetEntry) -> (u64, i32, FindingKind) {
    (e.codeptr, e.device, e.kind)
}

// ---------------------------------------------------------------------
// Byte-reproducibility of the checked-in fixtures
// ---------------------------------------------------------------------

#[test]
fn golden_corpora_regenerate_byte_identically() {
    assert_eq!(
        capture_corpus(&["babelstream"], false).to_json(),
        fixture_text("corpus_babelstream_base.json"),
        "baseline babelstream corpus drifted from the checked-in fixture"
    );
    assert_eq!(
        capture_corpus(&["babelstream"], true).to_json(),
        fixture_text("corpus_babelstream_remediated.json"),
        "remediated babelstream corpus drifted from the checked-in fixture"
    );
    assert_eq!(
        capture_corpus(&["babelstream", "bfs", "xsbench"], false).to_json(),
        fixture_text("reference_corpus.json"),
        "CI reference corpus drifted from the checked-in fixture"
    );
}

// ---------------------------------------------------------------------
// Pinned diff classification
// ---------------------------------------------------------------------

#[test]
fn babelstream_pair_diff_is_pinned() {
    let base = fixture_corpus("corpus_babelstream_base.json");
    let remediated = fixture_corpus("corpus_babelstream_remediated.json");
    let d = diff_corpora(&base, &remediated);

    assert!(!d.is_regression(), "remediation must never trip the gate");
    assert!(
        d.new.is_empty(),
        "remediation introduced sites: {:?}",
        d.new
    );
    assert!(
        d.fixed.is_empty(),
        "sites cannot move; both persist shrunken"
    );
    let persisting: Vec<_> = d.persisting.iter().map(site).collect();
    assert_eq!(
        persisting,
        vec![
            (0x400010, 0, FindingKind::DuplicateTransfer),
            (0x400010, 0, FindingKind::RepeatedAlloc),
        ]
    );
    // The remediation's effect is pinned through the entry totals: 99
    // duplicate receptions (3 244 032 bytes) collapse to the single
    // irreducible first occurrence (32 768 bytes).
    assert_eq!(base.runs[0].counts.dd, 99);
    assert_eq!(base.runs[0].counts.ra, 99);
    for entry in &d.persisting {
        assert_eq!(entry.count, 1, "remediated occurrence count");
        assert_eq!(entry.bytes, 32_768, "remediated byte total");
    }
}

#[test]
fn new_sites_trip_the_regression_gate() {
    let base = fixture_corpus("corpus_babelstream_base.json");
    let reference = fixture_corpus("reference_corpus.json");
    let d = diff_corpora(&base, &reference);

    assert!(d.is_regression(), "six new sites must trip the gate");
    assert!(d.fixed.is_empty());
    assert_eq!(d.persisting.len(), 2, "babelstream's own sites persist");
    let new: Vec<_> = d.new.iter().map(site).collect();
    assert_eq!(
        new,
        vec![
            (0x410000, 0, FindingKind::DuplicateTransfer),
            (0x410020, -1, FindingKind::DuplicateTransfer),
            (0x410020, 0, FindingKind::DuplicateTransfer),
            (0x410020, 0, FindingKind::RoundTrip),
            (0x410020, 0, FindingKind::RepeatedAlloc),
            (0x480000, 0, FindingKind::RoundTrip),
        ],
        "the bfs/xsbench sites absent from the baseline must all be new"
    );
    // And the reverse direction reports the same sites as fixed.
    let reverse = diff_corpora(&reference, &base);
    assert!(!reverse.is_regression());
    assert_eq!(
        reverse.fixed.iter().map(site).collect::<Vec<_>>(),
        new,
        "fixed must be the mirror image of new"
    );
    // The rendered report names every class for human consumption.
    let text = d.render();
    assert!(text.contains("new:") && text.contains("persisting:"));
    assert!(text.contains("0x480000"));
}

#[test]
fn diff_json_round_trips_the_sets() {
    let base = fixture_corpus("corpus_babelstream_base.json");
    let reference = fixture_corpus("reference_corpus.json");
    let d = diff_corpora(&base, &reference);
    let json = d.to_json();
    for needle in ["\"new\"", "\"fixed\"", "\"persisting\"", "RoundTrip"] {
        assert!(json.contains(needle), "diff JSON missing {needle}");
    }
}

// ---------------------------------------------------------------------
// The binary trace fixture
// ---------------------------------------------------------------------

#[test]
fn binary_fixture_loads_strictly_and_matches_the_corpus() {
    let bytes = std::fs::read(fixture_path("babelstream_small.odpt")).expect("fixture");
    let artifact = load_trace(&bytes).expect("checked-in trace must verify");
    assert_eq!(artifact.meta.program, "babelstream");
    assert!(artifact.health.is_clean());
    assert!(artifact.data_op_count() > 0);
    // Re-serialization is byte-identical: the format has one canonical
    // encoding per artifact.
    assert_eq!(artifact.to_bytes(), bytes);

    // Detection over the loaded columns reproduces the corpus counts.
    let cols = artifact.columnar();
    let view = EventView::over(&cols, infer_num_devices_columnar(&cols));
    let counts = Findings::detect_fused(&view).counts();
    let base = fixture_corpus("corpus_babelstream_base.json");
    assert_eq!(counts, base.runs[0].counts);

    // A fresh capture writes the identical file.
    let w = by_name("babelstream").expect("workload");
    let recaptured = capture_artifact(&*w, ProblemSize::Small, Variant::Original, false);
    assert_eq!(recaptured.to_bytes(), bytes, "binary fixture drifted");
}

#[test]
fn corrupted_fixture_degrades_never_panics() {
    let bytes = std::fs::read(fixture_path("babelstream_small.odpt")).expect("fixture");
    let original = load_trace(&bytes).expect("fixture verifies");

    // Truncations at the header, mid-columns, footer, and tail.
    for cut in [
        0,
        15,
        100,
        bytes.len() / 2,
        bytes.len() - 25,
        bytes.len() - 1,
    ] {
        let loaded = load_trace_lenient(&bytes[..cut]);
        assert!(
            loaded.health.unreadable > 0,
            "truncation at {cut} must be accounted as unreadable"
        );
        assert!(load_trace(&bytes[..cut]).is_err());
    }

    // Deterministic bit flips across the regions of the file.
    for pos in (0..bytes.len()).step_by(997) {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x40;
        let loaded = load_trace_lenient(&mutated);
        assert!(
            loaded == original || loaded.health.unreadable > 0,
            "flip at {pos} neither decoded identically nor degraded"
        );
    }

    // An empty and a garbage file decode to the empty degraded artifact.
    for junk in [&b""[..], b"ODPTRACE but not really"] {
        let loaded = load_trace_lenient(junk);
        assert_eq!(loaded.health.unreadable, 1);
        assert_eq!(loaded.data_op_count(), 0);
        assert_eq!(
            loaded,
            TraceArtifact {
                health: loaded.health,
                ..TraceArtifact::default()
            }
        );
    }
}
