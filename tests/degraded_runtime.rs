//! Degraded and unusable runtime behaviour (§A.6's warning, Table 6's
//! capability matrix).

use odp_ompt::CompilerProfile;
use odp_sim::{Runtime, RuntimeConfig};
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

#[test]
fn pre_emi_runtime_degrades_with_warning_but_still_detects() {
    // §A.6: "warning: OMPDataPerf requires OMPT interface version 5.1
    // (or later), but found version TR4 5.0 preview 1. Some features may
    // be degraded."
    let w = odp_workloads::by_name("bfs").unwrap();
    let mut rt = Runtime::new(RuntimeConfig::default().pre_emi());
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    rt.finish();

    assert!(handle.degraded());
    let console = handle.console_lines();
    assert!(
        console.iter().any(|l| l.contains("TR4 5.0 preview 1")
            && l.contains("Some features may be degraded")),
        "{console:?}"
    );

    let trace = handle.take_trace();
    let report = ompdataperf::analyze(&trace, None);
    // Content-based detection still works from begin-only callbacks...
    assert!(report.counts.dd > 0);
    assert!(report.counts.ra > 0);
    // ...but event durations are unobservable, so the predicted time
    // savings degrade to zero (the degraded feature).
    assert_eq!(report.prediction.time_saved.as_nanos(), 0);
}

#[test]
fn gcc_runtime_cannot_be_profiled() {
    let w = odp_workloads::by_name("hotspot").unwrap();
    let mut rt = Runtime::new(RuntimeConfig::default().with_profile(CompilerProfile::GnuGcc));
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    rt.finish();

    assert!(handle.unusable());
    let trace = handle.take_trace();
    assert_eq!(trace.data_op_count(), 0, "no callbacks, no records");
    assert_eq!(trace.target_count(), 0);
}

#[test]
fn all_full_emi_profiles_profile_identically() {
    // Hardware/compiler agnosticism: the same program produces the same
    // issue counts on every EMI-capable runtime profile.
    let w = odp_workloads::by_name("xsbench").unwrap();
    let mut baseline = None;
    for profile in CompilerProfile::ALL {
        if !profile.capabilities().meets_ompdataperf_requirements() {
            continue;
        }
        let mut rt = Runtime::new(RuntimeConfig::default().with_profile(profile));
        let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        rt.attach_tool(Box::new(tool));
        w.run(&mut rt, ProblemSize::Small, Variant::Original);
        rt.finish();
        let counts = ompdataperf::analyze(&handle.take_trace(), None).counts;
        match &baseline {
            None => baseline = Some(counts),
            Some(b) => assert_eq!(&counts, b, "{profile:?} diverged"),
        }
    }
    assert_eq!(baseline.unwrap().rt, 1);
}

#[test]
fn runtime_name_appears_in_console_output() {
    let mut rt = Runtime::new(RuntimeConfig::default().with_profile(CompilerProfile::NvidiaHpc));
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    rt.finish();
    let console = handle.console_lines();
    assert!(
        console.iter().any(|l| l.contains("libnvomp")),
        "{console:?}"
    );
    assert!(
        console.iter().any(|l| l.contains("-mp=ompt")),
        "NVHPC recompile-flag notice expected: {console:?}"
    );
}
