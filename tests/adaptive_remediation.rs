//! Adaptive remediation correctness, end to end.
//!
//! Property (seeded re-run): for every targeted workload, a re-run
//! whose advisor was seeded from the baseline findings must (a) report
//! **zero** findings of the remediated kinds, (b) move strictly fewer
//! bytes than the baseline, and (c) account recovered transfer time
//! greater than zero.
//!
//! Property (no-op): an *empty* policy must change nothing — findings
//! byte-identical to the baseline, identical transfer totals.
//!
//! Property (adaptive): a single live run — findings streamed into the
//! policy mid-run — must already recover transfer time on iterative
//! workloads, while detection keeps reporting the pre-rewrite issues.

use odp_workloads::adaptive::{run_adaptive, run_baseline, run_seeded};
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::remedy::RemediationPolicy;

/// The per-workload expectation for a seeded re-run. `inherent_dd`
/// counts duplicates remediation cannot remove: identical content
/// flowing through *different* variables (bfs ships one — the
/// mask/visited initial images), which no mapping rewrite of a single
/// clause can unify.
struct Expect {
    name: &'static str,
    size: ProblemSize,
    inherent_dd: usize,
}

const GRID: &[Expect] = &[
    Expect {
        name: "babelstream",
        size: ProblemSize::Small,
        inherent_dd: 0,
    },
    Expect {
        name: "babelstream",
        size: ProblemSize::Medium,
        inherent_dd: 0,
    },
    Expect {
        name: "bfs",
        size: ProblemSize::Small,
        inherent_dd: 1,
    },
    Expect {
        name: "bfs",
        size: ProblemSize::Medium,
        inherent_dd: 1,
    },
    Expect {
        name: "xsbench",
        size: ProblemSize::Small,
        inherent_dd: 0,
    },
];

#[test]
fn seeded_rerun_eliminates_the_remediated_kinds() {
    for e in GRID {
        let w = odp_workloads::by_name(e.name).unwrap();
        let baseline = run_baseline(&*w, e.size, Variant::Original);
        assert!(
            baseline.report.counts.total() > 0,
            "{} must have findings to remediate",
            e.name
        );

        let policy = RemediationPolicy::from_findings(&baseline.report.findings);
        let rerun = run_seeded(&*w, e.size, Variant::Original, policy);

        let c = rerun.report.counts;
        assert_eq!(
            c.dd, e.inherent_dd,
            "{} ({:?}): duplicate transfers must drop to the inherent floor, got {c:?}",
            e.name, e.size
        );
        assert_eq!(
            c.rt, 0,
            "{} ({:?}): round trips remain: {c:?}",
            e.name, e.size
        );
        assert_eq!(
            c.ra, 0,
            "{} ({:?}): repeated allocations remain: {c:?}",
            e.name, e.size
        );
        assert!(
            rerun.stats.bytes_transferred < baseline.stats.bytes_transferred,
            "{} ({:?}): remediated run must move strictly fewer bytes ({} vs {})",
            e.name,
            e.size,
            rerun.stats.bytes_transferred,
            baseline.stats.bytes_transferred
        );
        assert!(
            rerun.remediation.recovered_time().as_nanos() > 0,
            "{} ({:?}): recovered transfer time must be measurable",
            e.name,
            e.size
        );
        // The accounting is consistent: actual + recovered = what the
        // report calls the baseline.
        assert_eq!(
            rerun.remediation.actual_transfer_bytes,
            rerun.stats.bytes_transferred
        );
    }
}

#[test]
fn empty_policy_is_a_no_op() {
    for name in ["babelstream", "bfs", "xsbench"] {
        let w = odp_workloads::by_name(name).unwrap();
        let baseline = run_baseline(&*w, ProblemSize::Small, Variant::Original);
        let noop = run_seeded(
            &*w,
            ProblemSize::Small,
            Variant::Original,
            RemediationPolicy::new(),
        );
        assert_eq!(
            serde_json::to_string(&noop.report.findings).unwrap(),
            serde_json::to_string(&baseline.report.findings).unwrap(),
            "{name}: an empty policy must leave detection byte-identical"
        );
        assert_eq!(
            noop.stats.bytes_transferred,
            baseline.stats.bytes_transferred
        );
        assert_eq!(noop.stats.transfers, baseline.stats.transfers);
        assert!(noop.remediation.rows.is_empty(), "{name}: no rewrites");
        assert_eq!(noop.remediation.recovered_transfer_bytes, 0);
    }
}

#[test]
fn adaptive_single_run_recovers_on_iterative_workloads() {
    // babelstream and bfs iterate their inefficient pattern, so the
    // findings from iteration n rewrite iteration n+1 within ONE run.
    for name in ["babelstream", "bfs"] {
        let w = odp_workloads::by_name(name).unwrap();
        let baseline = run_baseline(&*w, ProblemSize::Small, Variant::Original);
        let adaptive = run_adaptive(&*w, ProblemSize::Small, Variant::Original);
        assert!(
            adaptive.remediation.recovered_time().as_nanos() > 0,
            "{name}: one adaptive run must recover transfer time"
        );
        assert!(
            adaptive.stats.bytes_transferred < baseline.stats.bytes_transferred,
            "{name}: adaptive run must move strictly fewer bytes"
        );
        assert!(
            adaptive.report.counts.total() > 0,
            "{name}: the pre-rewrite iterations are still reported"
        );
        assert!(
            adaptive.report.counts.total() < baseline.report.counts.total(),
            "{name}: later iterations must stop producing findings"
        );
    }
}

#[test]
fn seeded_rerun_beats_adaptive_which_beats_baseline() {
    // The ordering the design promises on an iterative workload:
    // baseline ≥ adaptive (learns after iteration 1) ≥ seeded (knows
    // everything from the start).
    let w = odp_workloads::by_name("babelstream").unwrap();
    let baseline = run_baseline(&*w, ProblemSize::Small, Variant::Original);
    let adaptive = run_adaptive(&*w, ProblemSize::Small, Variant::Original);
    let seeded = run_seeded(
        &*w,
        ProblemSize::Small,
        Variant::Original,
        RemediationPolicy::from_findings(&baseline.report.findings),
    );
    assert!(adaptive.stats.bytes_transferred < baseline.stats.bytes_transferred);
    assert!(seeded.stats.bytes_transferred <= adaptive.stats.bytes_transferred);
    assert!(seeded.stats.transfer_time < baseline.stats.transfer_time);
}

#[test]
fn remediation_survives_the_fixed_variant_cleanly() {
    // The paper's hand-fixed bfs has (almost) nothing left to remediate:
    // a policy seeded from its own findings must not regress it.
    let w = odp_workloads::by_name("bfs").unwrap();
    let fixed = run_baseline(&*w, ProblemSize::Small, Variant::Fixed);
    let policy = RemediationPolicy::from_findings(&fixed.report.findings);
    let rerun = run_seeded(&*w, ProblemSize::Small, Variant::Fixed, policy);
    assert!(
        rerun.stats.bytes_transferred <= fixed.stats.bytes_transferred,
        "remediation must never add traffic"
    );
    assert!(
        rerun.report.counts.total() <= fixed.report.counts.total(),
        "remediation must never add findings"
    );
}
