//! Property-based tests on the detection algorithms: invariants that
//! must hold for *any* chronological event log.

use odp_model::{
    CodePtr, DataOpEvent, DataOpKind, DeviceId, EventId, HashVal, SimTime, TargetEvent, TargetKind,
    TimeSpan,
};
use ompdataperf::detect::{
    alloc_delete_pairs, find_duplicate_transfers, find_repeated_allocs, find_round_trips,
    find_unused_allocs, find_unused_transfers, Findings,
};
use proptest::prelude::*;

const NUM_DEVICES: u32 = 2;

/// Generate a plausible random event log: interleaved transfers,
/// alloc/delete pairs and kernels on up to two devices, chronological.
fn arb_log() -> impl Strategy<Value = (Vec<DataOpEvent>, Vec<TargetEvent>)> {
    proptest::collection::vec((0u8..6, 0u8..2, 0u64..4, 0u64..3), 0..120).prop_map(|ops| {
        let mut t = 0u64;
        let mut id = 0u64;
        let mut data_ops = Vec::new();
        let mut kernels = Vec::new();
        let mut live: Vec<(DeviceId, u64, u64, u64)> = Vec::new(); // (dev, haddr, daddr, bytes)
        for (kind, dev, var, hash) in ops {
            t += 7;
            id += 1;
            let device = DeviceId::target(dev as u32);
            let haddr = 0x1000 + var * 0x100;
            let daddr = 0xd000 + var * 0x100 + dev as u64 * 0x10000;
            let bytes = 64 + var * 8;
            let span = TimeSpan::new(SimTime(t), SimTime(t + 5));
            match kind {
                0 => data_ops.push(DataOpEvent {
                    id: EventId(id),
                    kind: DataOpKind::Transfer,
                    src_device: DeviceId::HOST,
                    dest_device: device,
                    src_addr: haddr,
                    dest_addr: daddr,
                    bytes,
                    hash: Some(HashVal(hash)),
                    span,
                    codeptr: CodePtr(0x10),
                }),
                1 => data_ops.push(DataOpEvent {
                    id: EventId(id),
                    kind: DataOpKind::Transfer,
                    src_device: device,
                    dest_device: DeviceId::HOST,
                    src_addr: daddr,
                    dest_addr: haddr,
                    bytes,
                    hash: Some(HashVal(hash)),
                    span,
                    codeptr: CodePtr(0x11),
                }),
                2 => {
                    data_ops.push(DataOpEvent {
                        id: EventId(id),
                        kind: DataOpKind::Alloc,
                        src_device: DeviceId::HOST,
                        dest_device: device,
                        src_addr: haddr,
                        dest_addr: daddr,
                        bytes,
                        hash: None,
                        span,
                        codeptr: CodePtr(0x12),
                    });
                    live.push((device, haddr, daddr, bytes));
                }
                3 => {
                    if let Some(pos) = live.iter().position(|l| l.0 == device) {
                        let (d, h, da, b) = live.remove(pos);
                        data_ops.push(DataOpEvent {
                            id: EventId(id),
                            kind: DataOpKind::Delete,
                            src_device: DeviceId::HOST,
                            dest_device: d,
                            src_addr: h,
                            dest_addr: da,
                            bytes: b,
                            hash: None,
                            span,
                            codeptr: CodePtr(0x13),
                        });
                    }
                }
                _ => kernels.push(TargetEvent {
                    id: EventId(id),
                    device,
                    kind: TargetKind::Kernel,
                    span: TimeSpan::new(SimTime(t), SimTime(t + 4)),
                    codeptr: CodePtr(0x14),
                }),
            }
        }
        (data_ops, kernels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn duplicate_groups_share_hash_and_destination((ops, _k) in arb_log()) {
        for g in find_duplicate_transfers(&ops) {
            prop_assert!(g.events.len() >= 2);
            for e in &g.events {
                prop_assert_eq!(e.hash, Some(g.hash));
                prop_assert_eq!(e.dest_device, g.dest_device);
                prop_assert!(e.is_transfer());
            }
        }
    }

    #[test]
    fn duplicate_count_equals_receptions_minus_groups((ops, _k) in arb_log()) {
        // Σ (len-1) over groups == (transfers in groups) - (#groups).
        let groups = find_duplicate_transfers(&ops);
        let total: usize = groups.iter().map(|g| g.events.len()).sum();
        let dups: usize = groups.iter().map(|g| g.duplicate_count()).sum();
        prop_assert_eq!(dups, total - groups.len());
    }

    #[test]
    fn round_trip_legs_are_real_events((ops, _k) in arb_log()) {
        let ids: std::collections::HashSet<_> = ops.iter().map(|e| e.id).collect();
        for g in find_round_trips(&ops) {
            for trip in &g.trips {
                prop_assert!(ids.contains(&trip.tx.id));
                prop_assert!(ids.contains(&trip.rx.id));
                prop_assert_eq!(trip.tx.hash, Some(g.hash));
                prop_assert_eq!(trip.rx.hash, Some(g.hash));
                // The rx is a reception at the tx's source device.
                prop_assert_eq!(trip.rx.dest_device, g.src_device);
                prop_assert_eq!(trip.tx.src_device, g.src_device);
                prop_assert_eq!(trip.tx.dest_device, g.dest_device);
            }
        }
    }

    #[test]
    fn alloc_pairs_are_ordered_and_disjoint((ops, _k) in arb_log()) {
        let pairs = alloc_delete_pairs(&ops);
        for p in &pairs {
            prop_assert!(p.alloc.is_alloc());
            if let Some(d) = &p.delete {
                prop_assert!(d.is_delete());
                prop_assert!(d.span.start >= p.alloc.span.start, "delete precedes alloc");
                prop_assert_eq!(d.dest_addr, p.alloc.dest_addr);
                prop_assert_eq!(d.dest_device, p.alloc.dest_device);
            }
        }
        // Each delete is consumed by at most one pair.
        let mut delete_ids: Vec<_> = pairs
            .iter()
            .filter_map(|p| p.delete.as_ref().map(|d| d.id))
            .collect();
        let n = delete_ids.len();
        delete_ids.sort_unstable();
        delete_ids.dedup();
        prop_assert_eq!(delete_ids.len(), n);
    }

    #[test]
    fn repeated_alloc_groups_have_consistent_keys((ops, _k) in arb_log()) {
        for g in find_repeated_allocs(&ops) {
            prop_assert!(g.pairs.len() >= 2);
            for p in &g.pairs {
                prop_assert_eq!(p.alloc.src_addr, g.host_addr);
                prop_assert_eq!(p.alloc.dest_device, g.device);
                prop_assert_eq!(p.alloc.bytes, g.bytes);
            }
        }
    }

    #[test]
    fn unused_allocs_never_overlap_a_kernel((ops, kernels) in arb_log()) {
        for ua in find_unused_allocs(&kernels, &ops, NUM_DEVICES) {
            let dev = ua.pair.alloc.dest_device;
            let start = ua.pair.alloc.span.start;
            let end = ua.pair.lifetime_end();
            for k in kernels.iter().filter(|k| k.device == dev) {
                let overlaps = !(k.span.end < start || k.span.start > end);
                prop_assert!(!overlaps, "unused alloc overlaps kernel {:?}", k.span);
            }
        }
    }

    #[test]
    fn unused_transfers_are_device_bound_transfers((ops, kernels) in arb_log()) {
        for ut in find_unused_transfers(&kernels, &ops, NUM_DEVICES) {
            prop_assert!(ut.event.is_transfer());
            prop_assert!(ut.event.dest_device.is_target());
        }
    }

    #[test]
    fn findings_counts_are_consistent((ops, kernels) in arb_log()) {
        let f = Findings::detect(&ops, &kernels, NUM_DEVICES);
        let c = f.counts();
        prop_assert_eq!(c.ua, f.unused_allocs.len());
        prop_assert_eq!(c.ut, f.unused_transfers.len());
        prop_assert!(c.total() >= c.dd + c.rt);
    }

    #[test]
    fn prediction_savings_bounded_by_event_durations((ops, kernels) in arb_log()) {
        let f = Findings::detect(&ops, &kernels, NUM_DEVICES);
        let total_event_ns: u64 = ops.iter().map(|e| e.duration().as_nanos()).sum();
        let p = ompdataperf::predict::predict(&f, odp_model::SimDuration(1 << 40));
        prop_assert!(
            p.time_saved.as_nanos() <= total_event_ns,
            "saved more than all events cost"
        );
    }

    #[test]
    fn detectors_are_deterministic((ops, kernels) in arb_log()) {
        let a = Findings::detect(&ops, &kernels, NUM_DEVICES);
        let b = Findings::detect(&ops, &kernels, NUM_DEVICES);
        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.duplicates.len(), b.duplicates.len());
        prop_assert_eq!(a.round_trips.len(), b.round_trips.len());
    }
}
