//! End-to-end streaming mode: real workloads through the simulated
//! runtime with the online engine attached. The engine's finalize
//! output must be byte-identical to the post-mortem detection over the
//! recorded trace, for every workload, including degraded (pre-EMI)
//! runtimes where events arrive begin-only.

use odp_sim::{Runtime, RuntimeConfig};
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

fn streamed_run(
    name: &str,
    pre_emi: bool,
) -> (odp_trace::TraceLog, ompdataperf::detect::StreamingEngine) {
    let w = odp_workloads::by_name(name).unwrap();
    let cfg = if pre_emi {
        RuntimeConfig::default().pre_emi()
    } else {
        RuntimeConfig::default()
    };
    let mut rt = Runtime::new(cfg);
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: true,
        ..Default::default()
    });
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    rt.finish();
    let trace = handle.take_trace();
    let engine = handle.take_stream_engine().expect("streaming was enabled");
    (trace, engine)
}

#[test]
fn streaming_matches_postmortem_on_every_workload() {
    for w in odp_workloads::all() {
        let (trace, mut engine) = streamed_run(w.name(), false);
        let view = EventView::from_log(&trace);
        let streamed = engine.finalize(&view);
        let postmortem = Findings::detect_fused(&view);
        assert_eq!(
            serde_json::to_string_pretty(&streamed).unwrap(),
            serde_json::to_string_pretty(&postmortem).unwrap(),
            "streaming diverged from post-mortem on {}",
            w.name()
        );
        assert_eq!(
            engine.live_counts(),
            postmortem.counts(),
            "live counts diverged on {}",
            w.name()
        );
    }
}

#[test]
fn streaming_emits_findings_for_known_antipatterns() {
    // bfs's per-iteration remapping is the paper's flagship anti-pattern:
    // the engine must surface findings live, not only at finalize.
    let (_trace, mut engine) = streamed_run("bfs", false);
    let live = engine.take_findings();
    assert!(
        !live.is_empty(),
        "bfs has known issues; streaming should emit them during the run"
    );
    let lines: Vec<String> = live
        .iter()
        .map(ompdataperf::report::render_stream_finding)
        .collect();
    assert!(lines.iter().all(|l| l.starts_with("stream: ")));
}

#[test]
fn streaming_works_on_degraded_runtimes() {
    // Pre-EMI: begin-only callbacks, zero-duration spans, watermark
    // always current — the reorder buffer passes straight through.
    let (trace, mut engine) = streamed_run("hotspot", true);
    assert_eq!(engine.buffer_stats().buffered_now, 0);
    let view = EventView::from_log(&trace);
    let streamed = engine.finalize(&view);
    let postmortem = Findings::detect_fused(&view);
    assert_eq!(
        serde_json::to_string_pretty(&streamed).unwrap(),
        serde_json::to_string_pretty(&postmortem).unwrap()
    );
}

#[test]
fn streaming_reorder_buffer_stays_small() {
    // The reorder buffer is bounded by open-op concurrency, which in the
    // simulated runtime is small regardless of how many events a
    // workload emits.
    for name in ["bfs", "xsbench", "minife"] {
        let (trace, engine) = streamed_run(name, false);
        let stats = engine.buffer_stats();
        assert!(
            stats.buffered_peak <= 64,
            "{name}: reorder peak {} for {} events",
            stats.buffered_peak,
            trace.data_op_count() + trace.target_count()
        );
    }
}
