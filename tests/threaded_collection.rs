//! End-to-end multi-threaded collection: real workloads driven from N
//! OS threads, each with its own simulated runtime and tool shard. The
//! merged trace must be identical across runs (scheduling
//! independence), detection over it must be deterministic, and
//! streaming finalize must stay byte-identical to post-mortem
//! detection under genuinely concurrent callback emission.

use odp_ompt::Tool;
use odp_sim::RuntimeConfig;
use odp_workloads::threaded::{run_threaded, threaded_workloads};
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

fn threaded_run(
    name: &str,
    threads: u32,
    cfg: ToolConfig,
) -> (
    ompdataperf::tool::ToolHandle,
    ompdataperf::attrib::DebugInfo,
) {
    let w = odp_workloads::by_name(name).unwrap();
    let (tool, handle) = OmpDataPerfTool::new(cfg);
    let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
    for _ in 1..threads {
        tools.push(Box::new(handle.fork_tool()));
    }
    let (dbg, stats) = run_threaded(
        &*w,
        threads,
        ProblemSize::Small,
        Variant::Original,
        &RuntimeConfig::default(),
        tools,
    );
    assert!(stats.kernels > 0);
    (handle, dbg)
}

#[test]
fn every_threaded_workload_merges_deterministically() {
    for w in threaded_workloads() {
        let (h1, _) = threaded_run(w.name(), 4, ToolConfig::default());
        let (h2, _) = threaded_run(w.name(), 4, ToolConfig::default());
        let t1 = h1.take_trace();
        let t2 = h2.take_trace();
        assert!(t1.is_merged());
        assert_eq!(
            t1.to_json(),
            t2.to_json(),
            "{}: merged trace depends on scheduling",
            w.name()
        );
    }
}

#[test]
fn threaded_detection_scales_the_single_thread_counts() {
    // N identical host threads each run the same offload pattern: every
    // per-thread inefficiency appears N times, and the threads'
    // identical payloads collide into cross-thread duplicates — counts
    // must be deterministic and at least N× the single-thread ones.
    let (h1, _) = threaded_run("bfs", 1, ToolConfig::default());
    let (h4, _) = threaded_run("bfs", 4, ToolConfig::default());
    let t1 = h1.take_trace();
    let t4 = h4.take_trace();
    assert_eq!(t4.data_op_count(), 4 * t1.data_op_count());
    let f1 = Findings::detect_fused(&EventView::from_log(&t1));
    let f4 = Findings::detect_fused(&EventView::from_log(&t4));
    assert!(f1.counts().total() > 0, "bfs has known issues");
    assert!(
        f4.counts().total() >= 4 * f1.counts().total(),
        "4 threads: {:?} vs 1 thread: {:?}",
        f4.counts(),
        f1.counts()
    );
}

#[test]
fn threaded_streaming_finalize_matches_postmortem() {
    for name in ["babelstream", "bfs", "xsbench"] {
        for threads in [2u32, 4] {
            let (handle, _) = threaded_run(
                name,
                threads,
                ToolConfig {
                    stream: true,
                    ..Default::default()
                },
            );
            let trace = handle.take_trace();
            let mut engine = handle.take_stream_engine().expect("streaming on");
            let view = EventView::from_log(&trace);
            let streamed = engine.finalize(&view);
            let postmortem = Findings::detect_fused(&view);
            assert_eq!(
                serde_json::to_string_pretty(&streamed).unwrap(),
                serde_json::to_string_pretty(&postmortem).unwrap(),
                "{name} with {threads} threads diverged"
            );
            assert_eq!(engine.live_counts(), postmortem.counts());
        }
    }
}

#[test]
fn threaded_report_pipeline_runs_end_to_end() {
    let (handle, dbg) = threaded_run("xsbench", 3, ToolConfig::default());
    let trace = handle.take_trace();
    let report = ompdataperf::analysis::analyze_named(
        &trace,
        Some(&dbg),
        "xsbench x3",
        handle.console_lines(),
    );
    assert!(report.counts.total() > 0);
    assert_eq!(report.space.data_op_records, trace.data_op_count());
    let text = report.render();
    assert!(text.contains("=== Summary ==="));
}
