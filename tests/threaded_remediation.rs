//! Threaded adaptive remediation over a **shared** device data
//! environment, end to end.
//!
//! The threads of a shared-device run contend on one present table per
//! device, so which thread allocates a mapping (and which merely
//! retains it) depends on OS scheduling. The assertions here are
//! therefore of two kinds:
//!
//! * **Scheduling-independent properties** of free-running runs: a
//!   policy seeded from a threaded baseline eliminates the remediated
//!   finding kinds in a threaded re-run; adaptive runs move strictly
//!   fewer bytes than the baseline; streaming finalize stays
//!   byte-identical to post-mortem detection over the same merged
//!   trace.
//! * **Forced interleavings**: turn-taking runs (the
//!   `sharded_stress.rs` style) pin down that a fixed directive
//!   interleaving produces an identical merged trace every time, that
//!   cross-thread present-table reuse is real (one allocation, one
//!   transfer, N threads), and that one thread's advisor rewrite is
//!   adopted by another thread's re-entry.

use odp_ompt::{MapAdvisor, Tool};
use odp_sim::{run_on_threads_shared, RuntimeConfig, RuntimeStats};
use odp_workloads::adaptive::{
    run_adaptive_threaded, run_baseline_threaded, run_seeded_threaded, threaded_advisors,
};
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::detect::{EventView, Findings};
use ompdataperf::remedy::RemediationPolicy;
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use std::sync::{Arc, Condvar, Mutex};

/// Duplicates remediation cannot remove: identical content flowing
/// through *different* variables (bfs's mask/visited initial images).
fn inherent_dd(name: &str) -> usize {
    match name {
        "bfs" => 1,
        _ => 0,
    }
}

/// Did this run still report findings of the kinds remediation targets
/// here (duplicates above the inherent floor, round trips, repeated
/// allocations)?
fn remediated_kinds_remain(name: &str, c: &ompdataperf::detect::IssueCounts) -> bool {
    c.dd > inherent_dd(name) || c.rt > 0 || c.ra > 0
}

#[test]
fn seeded_threaded_reruns_converge_to_zero_remediated_kinds() {
    // Under free-running shared-device threading the OS schedule decides
    // which sites a run exercises (a mapping another thread still holds
    // is never deleted, so its re-allocation pattern may stay hidden).
    // The scheduling-independent property is CONVERGENCE: absorbing each
    // run's findings into the policy monotonically accumulates site
    // rules, and within a few rounds a seeded re-run reports zero
    // findings of the remediated kinds — and moves strictly fewer bytes
    // than the last run that still had them.
    for name in ["babelstream", "bfs", "xsbench"] {
        for threads in [2u32, 4, 8] {
            let w = odp_workloads::by_name(name).unwrap();
            let baseline =
                run_baseline_threaded(&*w, threads, ProblemSize::Small, Variant::Original);

            let mut policy = RemediationPolicy::from_findings(&baseline.report.findings);
            let mut last_unremediated_bytes =
                remediated_kinds_remain(name, &baseline.report.counts)
                    .then_some(baseline.stats.bytes_transferred);
            let mut converged = None;
            for _round in 0..5 {
                let rerun = run_seeded_threaded(
                    &*w,
                    threads,
                    ProblemSize::Small,
                    Variant::Original,
                    policy.clone(),
                );
                assert_eq!(
                    rerun.remediation.actual_transfer_bytes,
                    rerun.stats.bytes_transferred
                );
                if remediated_kinds_remain(name, &rerun.report.counts) {
                    // A schedule exposed sites the policy had no rules
                    // for yet: absorb and go again.
                    last_unremediated_bytes = Some(rerun.stats.bytes_transferred);
                    policy.absorb(&rerun.report.findings);
                } else {
                    converged = Some(rerun);
                    break;
                }
            }
            let rerun = converged.unwrap_or_else(|| {
                panic!("{name} x{threads}: no convergence within 5 seeding rounds")
            });
            let c = rerun.report.counts;
            assert!(
                c.dd <= inherent_dd(name) && c.rt == 0 && c.ra == 0,
                "{name} x{threads}: remediated kinds must be gone, got {c:?}"
            );
            // Strictly fewer bytes than the last run that still showed
            // the remediated kinds (when any run did — an all-quiet
            // schedule has nothing to recover).
            if let Some(unremediated) = last_unremediated_bytes {
                assert!(
                    rerun.stats.bytes_transferred < unremediated,
                    "{name} x{threads}: converged run must move strictly fewer bytes ({} vs {})",
                    rerun.stats.bytes_transferred,
                    unremediated
                );
                assert!(
                    rerun.remediation.recovered_time().as_nanos() > 0,
                    "{name} x{threads}: recovered transfer time must be measurable"
                );
            }
        }
    }
}

#[test]
fn adaptive_threaded_run_recovers_live() {
    // One live threaded run on bfs (its iterated pattern produces
    // findings under every schedule): thread A's diagnosis rewrites
    // thread B's next region through the shared policy, so the run
    // must recover transfer traffic relative to its own unremediated
    // execution (actual + recovered = what it would have moved).
    for threads in [2u32, 4] {
        let w = odp_workloads::by_name("bfs").unwrap();
        let adaptive = run_adaptive_threaded(&*w, threads, ProblemSize::Small, Variant::Original);
        assert!(
            adaptive.remediation.recovered_time().as_nanos() > 0,
            "x{threads}: live findings must rewrite later iterations"
        );
        assert!(
            adaptive.remediation.recovered_transfer_bytes > 0,
            "x{threads}: recovered bytes must be accounted"
        );
        assert!(
            adaptive.report.counts.total() > 0,
            "x{threads}: pre-rewrite iterations are still reported"
        );
    }
}

#[test]
fn shared_device_streaming_finalize_matches_postmortem() {
    // Acceptance: with no advisor attached, shared-present-table runs
    // keep streaming finalize byte-identical to the post-mortem sweep
    // over the same merged trace — whatever interleaving the OS chose.
    for name in ["babelstream", "bfs", "xsbench"] {
        for threads in [2u32, 4] {
            let w = odp_workloads::by_name(name).unwrap();
            let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
                stream: true,
                ..Default::default()
            });
            let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
            for _ in 1..threads {
                tools.push(Box::new(handle.fork_tool()));
            }
            let run = odp_workloads::threaded::run_threaded_shared(
                &*w,
                threads,
                ProblemSize::Small,
                Variant::Original,
                &RuntimeConfig::default(),
                tools,
                Vec::new(),
            );
            assert!(run.stats.kernels > 0);
            let trace = handle.take_trace();
            let mut engine = handle.take_stream_engine().expect("streaming on");
            let view = EventView::from_log(&trace);
            let streamed = engine.finalize(&view);
            let postmortem = Findings::detect_fused(&view);
            assert_eq!(
                serde_json::to_string_pretty(&streamed).unwrap(),
                serde_json::to_string_pretty(&postmortem).unwrap(),
                "{name} x{threads} (shared devices) diverged"
            );
            assert_eq!(engine.live_counts(), postmortem.counts());
        }
    }
}

// ---------------------------------------------------------------------
// Forced interleavings (turn-taking, sharded_stress.rs style)
// ---------------------------------------------------------------------

/// Strict global turn order across threads: thread `i` runs step `s`
/// only at global turn `s * threads + i`.
struct Turns {
    state: Mutex<u64>,
    cv: Condvar,
}

impl Turns {
    fn new() -> Arc<Turns> {
        Arc::new(Turns {
            state: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    fn wait_for(&self, turn: u64) {
        let mut t = self.state.lock().unwrap();
        while *t != turn {
            t = self.cv.wait(t).unwrap();
        }
    }

    fn advance(&self) {
        *self.state.lock().unwrap() += 1;
        self.cv.notify_all();
    }
}

/// One barrier-forced shared-device run: `threads` threads take strict
/// turns opening a data region over the *same host address*, launching
/// a kernel, and closing it. Returns the merged trace JSON and the
/// merged stats.
fn forced_interleaving_run(threads: u32) -> (String, RuntimeStats) {
    use odp_model::{CodePtr, MapType};
    use odp_sim::{map, Kernel, KernelCost};

    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
    for _ in 1..threads {
        tools.push(Box::new(handle.fork_tool()));
    }
    let turns = Turns::new();
    let outcome = run_on_threads_shared(
        threads,
        &RuntimeConfig::default(),
        tools,
        Vec::new(),
        |i, rt| {
            let a = rt.host_alloc("a", 512);
            rt.host_fill_u32(a, |x| x as u32);
            // Step 0: every thread (in turn order) opens a region over
            // the same host address — thread 0 allocates + transfers,
            // everyone else retains the same present-table entry.
            turns.wait_for(i as u64);
            let region = rt.target_data_begin(0, CodePtr(0x10), &[map(MapType::To, a)]);
            turns.advance();
            // Step 1: one kernel each, in turn order.
            turns.wait_for(threads as u64 + i as u64);
            rt.target(
                0,
                CodePtr(0x20),
                &[map(MapType::To, a)],
                Kernel::new("k", KernelCost::fixed(100)).reads(&[a]),
            );
            turns.advance();
            // Step 2: close in turn order; only the last release frees.
            turns.wait_for(2 * threads as u64 + i as u64);
            rt.target_data_end(region);
            turns.advance();
        },
    );
    assert_eq!(outcome.devices.present_mappings(0), 0, "all released");
    let stats: Vec<RuntimeStats> = outcome.results.iter().map(|(_, s)| *s).collect();
    (handle.take_trace().to_json(), odp_sim::merged_stats(&stats))
}

#[test]
fn forced_interleavings_are_deterministic_and_share_the_present_table() {
    let (t1, s1) = forced_interleaving_run(4);
    let (t2, s2) = forced_interleaving_run(4);
    assert_eq!(
        t1, t2,
        "a fixed directive interleaving must merge identically across runs"
    );
    // Cross-thread reuse is real: one allocation and one H2D serve all
    // four threads' regions (rank-per-thread mode would do 4 of each).
    assert_eq!(s1.allocs, 1, "one shared allocation: {s1:?}");
    assert_eq!(s1.transfers, 1, "one shared transfer: {s1:?}");
    assert_eq!(s1.kernels, 4);
    assert_eq!(s2.allocs, 1);
}

/// The iterated duplicate/realloc pattern under a strict turn order:
/// each thread, in turn, opens a region over the same host address,
/// launches a kernel, and closes it — every close frees the mapping, so
/// every next turn re-allocates and re-sends identical content.
/// Returns `(bytes_transferred, recovered_bytes)`.
fn forced_pattern_run(adaptive: bool) -> (u64, u64) {
    use odp_model::{CodePtr, MapType};
    use odp_sim::{map, Kernel, KernelCost};

    const THREADS: u32 = 2;
    const STEPS: u64 = 8;
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        stream: adaptive,
        ..Default::default()
    });
    let mut tools: Vec<Box<dyn Tool>> = vec![Box::new(tool)];
    for _ in 1..THREADS {
        tools.push(Box::new(handle.fork_tool()));
    }
    let advisors = if adaptive {
        threaded_advisors(&handle, THREADS, true, None).0
    } else {
        Vec::new()
    };
    let turns = Turns::new();
    let outcome = run_on_threads_shared(
        THREADS,
        &RuntimeConfig::default(),
        tools,
        advisors,
        |i, rt| {
            let a = rt.host_alloc("a", 4096);
            rt.host_fill_u32(a, |x| x as u32);
            for step in 0..STEPS {
                turns.wait_for(step * THREADS as u64 + i as u64);
                let region = rt.target_data_begin(0, CodePtr(0x10), &[map(MapType::To, a)]);
                rt.target(
                    0,
                    CodePtr(0x20),
                    &[map(MapType::To, a)],
                    Kernel::new("k", KernelCost::fixed(50)).reads(&[a]),
                );
                rt.target_data_end(region);
                turns.advance();
            }
        },
    );
    let stats: Vec<RuntimeStats> = outcome.results.iter().map(|(_, s)| *s).collect();
    let merged = odp_sim::merged_stats(&stats);
    (
        merged.bytes_transferred,
        outcome.remediation.totals().transfer_bytes_avoided,
    )
}

#[test]
fn forced_adaptive_run_moves_strictly_fewer_bytes_than_its_baseline() {
    // Same forced schedule for both runs, so the byte counts are
    // directly comparable — and deterministic across repeats.
    let (baseline_bytes, zero) = forced_pattern_run(false);
    let (adaptive_bytes, recovered) = forced_pattern_run(true);
    assert_eq!(zero, 0, "no advisor, nothing recovered");
    assert!(
        adaptive_bytes < baseline_bytes,
        "adaptive bytes must be strictly below baseline ({adaptive_bytes} vs {baseline_bytes})"
    );
    assert!(recovered > 0, "the saved re-sends are accounted");
    assert_eq!(
        adaptive_bytes + recovered,
        baseline_bytes,
        "actual + recovered must reconstruct the unremediated traffic"
    );
    let (again, recovered_again) = forced_pattern_run(true);
    assert_eq!(again, adaptive_bytes, "forced schedule ⇒ deterministic");
    assert_eq!(recovered_again, recovered);
}

#[test]
fn cross_thread_phantom_reference_adoption_is_sound() {
    // A seeded persist rule makes thread 0's region exit keep the
    // mapping resident (phantom reference). Thread 1 then re-enters the
    // same site: it must adopt the phantom exactly once, and the
    // avoided re-allocation/re-send must be accounted.
    use odp_model::{CodePtr, MapType};
    use odp_sim::{map, Kernel, KernelCost};

    // Learn the site address from a probe runtime (host layouts are
    // identical across runtimes by construction).
    let probe_addr = {
        let mut rt = odp_sim::Runtime::with_defaults();
        let a = rt.host_alloc("a", 256);
        rt.host_addr(a)
    };
    let mut policy = RemediationPolicy::new();
    policy.observe(&ompdataperf::detect::StreamFinding::RepeatedAlloc {
        host_addr: probe_addr,
        device: odp_model::DeviceId::target(0),
        bytes: 256,
        codeptr: CodePtr(0x10),
        alloc: 1,
        occurrence: 2,
        confidence: ompdataperf::Confidence::Confirmed,
    });

    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    let tools: Vec<Box<dyn Tool>> = vec![Box::new(tool), Box::new(handle.fork_tool())];
    let (advisors, policy_cell): (Vec<Option<Box<dyn MapAdvisor>>>, _) = {
        let (advisors, cell) = threaded_advisors(&handle, 2, false, Some(policy));
        (advisors, cell.expect("seeded policy cell"))
    };
    let turns = Turns::new();
    let outcome = run_on_threads_shared(2, &RuntimeConfig::default(), tools, advisors, |i, rt| {
        let a = rt.host_alloc("a", 256);
        // Thread 0 maps and fully exits first (persist rule leaves
        // the phantom); thread 1 then re-enters the same site.
        turns.wait_for(2 * i as u64); // t0 at turn 0, t1 at turn 2
        rt.target(
            0,
            CodePtr(0x20),
            &[map(MapType::To, a)],
            Kernel::new("k", KernelCost::fixed(50)).reads(&[a]),
        );
        turns.advance();
        turns.wait_for(2 * i as u64 + 1); // t0 at 1, t1 at 3
        turns.advance();
        rt.stats()
    });
    let totals = outcome.remediation.totals();
    assert!(
        totals.rewrites >= 1,
        "thread 0's exit must apply the persist rewrite: {totals:?}"
    );
    assert!(
        totals.allocs_avoided >= 1,
        "thread 1's re-entry must adopt the phantom (no re-allocation): {totals:?}"
    );
    assert!(
        totals.transfers_avoided >= 1,
        "the adopted mapping's re-send must count as recovered: {totals:?}"
    );
    // The phantom is adopted exactly once and released at thread 1's
    // region exit... which persists it again: exactly one live mapping.
    assert_eq!(outcome.devices.present_mappings(0), 1);
    // The merged stats agree: one real alloc + one real transfer total.
    let stats: Vec<RuntimeStats> = outcome.results.iter().map(|(_, s)| *s).collect();
    let merged = odp_sim::merged_stats(&stats);
    assert_eq!(merged.allocs, 1, "{merged:?}");
    assert_eq!(merged.transfers, 1, "{merged:?}");
    drop(policy_cell);
}
