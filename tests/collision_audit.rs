//! §B.1's collision audit: "Across all benchmarks and problem sizes, we
//! observed 0 collisions for all evaluated hash functions."

use odp_hash::HashAlgoId;
use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

fn collisions_for(algo: HashAlgoId, workload: &str) -> (usize, u64) {
    let w = odp_workloads::by_name(workload).unwrap();
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        hash_algo: algo,
        collision_audit: true,
        ..Default::default()
    });
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    rt.finish();
    let checks = handle.audit_checks();
    (handle.collision_count(), checks)
}

#[test]
fn zero_collisions_across_workloads_with_default_hash() {
    for name in ["bfs", "hotspot", "minife", "xsbench", "babelstream"] {
        let (collisions, checks) = collisions_for(HashAlgoId::default(), name);
        assert!(checks > 0, "{name}: audit saw no transfers");
        assert_eq!(collisions, 0, "{name}: hash collisions detected");
    }
}

#[test]
fn zero_collisions_for_every_evaluated_hash_on_bfs() {
    for algo in HashAlgoId::ALL {
        let (collisions, checks) = collisions_for(algo, "bfs");
        assert!(checks > 0);
        assert_eq!(collisions, 0, "{algo}: collision detected");
    }
}

#[test]
fn audit_retains_payload_copies_as_paper_warns() {
    // "extremely high memory overhead": the audit stores one copy per
    // distinct payload.
    let w = odp_workloads::by_name("hotspot").unwrap();
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
        collision_audit: true,
        ..Default::default()
    });
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    rt.finish();
    let retained = handle.audit_retained_bytes();
    assert!(retained > 0, "audit must retain payload copies");
}

#[test]
fn detection_results_are_hash_algorithm_independent() {
    // Any quality hash yields identical findings (no collisions at these
    // scales): detection is content-based, not algorithm-based.
    let w = odp_workloads::by_name("bfs").unwrap();
    let mut baseline = None;
    for algo in [
        HashAlgoId::T1ha0_avx2,
        HashAlgoId::XXH64,
        HashAlgoId::Rapidhash,
        HashAlgoId::CityHash64,
        HashAlgoId::MeowHash,
    ] {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = OmpDataPerfTool::new(ToolConfig {
            hash_algo: algo,
            ..Default::default()
        });
        rt.attach_tool(Box::new(tool));
        w.run(&mut rt, ProblemSize::Small, Variant::Original);
        rt.finish();
        let counts = ompdataperf::analyze(&handle.take_trace(), None).counts;
        match &baseline {
            None => baseline = Some(counts),
            Some(b) => assert_eq!(&counts, b, "{algo} changed detection results"),
        }
    }
}
