//! Smoke and numerics sanity for every workload, size, and variant.

use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

#[test]
fn every_supported_combination_runs_clean() {
    for w in odp_workloads::all() {
        for variant in [
            Variant::Original,
            Variant::Fixed,
            Variant::Synthetic,
            Variant::SynFixed,
        ] {
            if !w.supports(variant) && w.fig4_pair().map(|(_, a)| a) != Some(variant) {
                continue;
            }
            let mut rt = Runtime::with_defaults();
            let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
            rt.attach_tool(Box::new(tool));
            let dbg = w.run(&mut rt, ProblemSize::Small, variant);
            let stats = rt.finish();
            assert!(
                rt.warnings().is_empty(),
                "{}{}: runtime warnings {:?}",
                w.name(),
                variant.suffix(),
                rt.warnings()
            );
            assert!(stats.kernels > 0, "{} launched no kernels", w.name());
            assert!(stats.total_time.as_nanos() > 0);
            assert!(!dbg.is_empty(), "{} registered no debug info", w.name());
            let trace = handle.take_trace();
            assert!(trace.data_op_count() > 0);
        }
    }
}

#[test]
fn sizes_scale_runtime_monotonically() {
    for name in ["bfs", "hotspot", "minife", "tealeaf", "xsbench"] {
        let w = odp_workloads::by_name(name).unwrap();
        let mut prev = 0u64;
        for size in ProblemSize::ALL {
            let mut rt = Runtime::with_defaults();
            w.run(&mut rt, size, Variant::Original);
            let t = rt.finish().total_time.as_nanos();
            assert!(
                t > prev,
                "{name}: {size:?} ({t} ns) not slower than previous ({prev} ns)"
            );
            prev = t;
        }
    }
}

#[test]
fn bfs_computes_correct_levels() {
    // The chain graph gives cost[i] = i for reachable nodes.
    let w = odp_workloads::by_name("bfs").unwrap();
    let mut rt = Runtime::with_defaults();
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    let cost_var = rt.find_var("h_cost").expect("h_cost exists");
    let cost = rt.host_read_u32(cost_var);
    for (i, &c) in cost.iter().take(6).enumerate() {
        assert_eq!(c, i as u32, "bfs level of node {i}");
    }
    rt.finish();
}

#[test]
fn fixed_variants_preserve_results() {
    // bfs: the fix must not change the computed levels.
    let levels = |variant: Variant| -> Vec<u32> {
        let w = odp_workloads::by_name("bfs").unwrap();
        let mut rt = Runtime::with_defaults();
        w.run(&mut rt, ProblemSize::Small, variant);
        let out = rt
            .find_var("h_cost")
            .map(|v| rt.host_read_u32(v))
            .unwrap_or_default();
        rt.finish();
        out
    };
    let orig = levels(Variant::Original);
    let fixed = levels(Variant::Fixed);
    assert!(!orig.is_empty());
    assert_eq!(orig, fixed, "bfs fix changed program output");
}

#[test]
fn paper_inputs_match_table5() {
    let check = |name: &str, size: ProblemSize, expect: &str| {
        let w = odp_workloads::by_name(name).unwrap();
        assert_eq!(w.paper_input(size), expect, "{name} {size:?}");
    };
    check("babelstream", ProblemSize::Small, "-n 100 -s 1048576");
    check("babelstream", ProblemSize::Medium, "-n 500 -s 33554432");
    check("babelstream", ProblemSize::Large, "-n 2500 -s 33554432");
    check("bfs", ProblemSize::Large, "graph1MW_6.txt");
    check(
        "hotspot",
        ProblemSize::Medium,
        "512 512 2 4 temp_512 power_512",
    );
    check("lud", ProblemSize::Large, "-s 8000");
    check("minife", ProblemSize::Small, "-nx 66 -ny 64 -nz 64");
    check("minifmm", ProblemSize::Medium, "-n 1000");
    check("nw", ProblemSize::Medium, "2048 10 2");
    check(
        "rsbench",
        ProblemSize::Medium,
        "-m event -s large -l 4250000",
    );
    check("tealeaf", ProblemSize::Large, "--file tea_bm_4.in");
    check("xsbench", ProblemSize::Medium, "-m event -g 1413");
}

#[test]
fn tool_handle_reports_hash_rate() {
    let w = odp_workloads::by_name("babelstream").unwrap();
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    rt.finish();
    let meter = handle.hash_meter();
    assert!(meter.bytes > 0, "tool hashed no payloads");
    assert!(handle.hash_rate_gb_per_s() > 0.0);
}
