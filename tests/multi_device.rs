//! Multi-GPU profiling (§7.8: "OMPDataPerf is capable of profiling
//! programs that use multiple GPUs").

use odp_model::{CodePtr, MapType};
use odp_sim::{map, Kernel, KernelCost, Runtime, RuntimeConfig};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use ompdataperf::Report;

fn with_devices(n: u32, f: impl FnOnce(&mut Runtime)) -> Report {
    let mut rt = Runtime::new(RuntimeConfig::default().with_devices(n));
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    f(&mut rt);
    rt.finish();
    ompdataperf::analyze(&handle.take_trace(), None)
}

#[test]
fn per_device_duplicates_are_independent() {
    // Broadcasting the same array to two devices is NOT a duplicate
    // (each device receives it once); re-sending to the same device is.
    let report = with_devices(2, |rt| {
        let a = rt.host_alloc("a", 2048);
        rt.host_fill_u32(a, |i| i as u32);
        for dev in 0..2 {
            rt.target(
                dev,
                CodePtr(0x100 + dev as u64),
                &[map(MapType::To, a)],
                Kernel::new("use_a", KernelCost::fixed(1_000)).reads(&[a]),
            );
        }
        // Second launch on device 0 only → one duplicate there.
        rt.target(
            0,
            CodePtr(0x100),
            &[map(MapType::To, a)],
            Kernel::new("use_a_again", KernelCost::fixed(1_000)).reads(&[a]),
        );
    });
    assert_eq!(report.counts.dd, 1, "{:?}", report.counts);
    // Each device reallocated once for `a`? Device 0 mapped it twice.
    assert_eq!(report.counts.ra, 1);
}

#[test]
fn unused_allocs_are_scanned_per_device() {
    let report = with_devices(2, |rt| {
        let a = rt.host_alloc("a", 512);
        rt.host_fill_u32(a, |i| i as u32 + 7);
        let b = rt.host_alloc("b", 512);
        rt.host_fill_u32(b, |i| i as u32 * 3 + 1);
        // Device 0 runs a kernel; device 1 only ever allocates.
        rt.target(
            0,
            CodePtr(0x200),
            &[map(MapType::To, a)],
            Kernel::new("k0", KernelCost::fixed(1_000)).reads(&[a]),
        );
        rt.target_enter_data(1, CodePtr(0x300), &[map(MapType::Alloc, b)]);
        rt.target_exit_data(1, CodePtr(0x310), &[map(MapType::Delete, b)]);
    });
    assert_eq!(report.counts.ua, 1, "{:?}", report.counts);
}

#[test]
fn cross_device_round_trip_through_host() {
    // dev0 computes, result goes home, and the host ships the identical
    // bytes onward to dev1 — not a round trip (different destination),
    // but if dev0 later receives them back, it is.
    let report = with_devices(2, |rt| {
        let a = rt.host_alloc("a", 1024);
        let region0 = rt.target_data_begin(0, CodePtr(0x400), &[map(MapType::To, a)]);
        rt.target(
            0,
            CodePtr(0x401),
            &[map(MapType::To, a)],
            Kernel::new("produce", KernelCost::fixed(1_000))
                .reads(&[a])
                .writes(&[a]),
        );
        rt.target_update_from(0, CodePtr(0x402), &[a]); // D2H: content h
                                                        // Host forwards the same bytes to dev1 (fine)...
        rt.target(
            1,
            CodePtr(0x403),
            &[map(MapType::To, a)],
            Kernel::new("consume", KernelCost::fixed(1_000)).reads(&[a]),
        );
        // ...and then redundantly back to dev0 (round trip completes).
        rt.target_update_to(0, CodePtr(0x404), &[a]);
        rt.target(
            0,
            CodePtr(0x405),
            &[map(MapType::To, a)],
            Kernel::new("reuse", KernelCost::fixed(1_000)).reads(&[a]),
        );
        rt.target_data_end(region0);
    });
    assert_eq!(report.counts.rt, 1, "{:?}", report.counts);
}

#[test]
fn multi_gpu_workload_example_is_profiled() {
    // A data-parallel split across 4 devices with a per-device stop-flag
    // anti-pattern: the tool sees issues on every device.
    let devices = 4u32;
    let report = with_devices(devices, |rt| {
        let chunks: Vec<_> = (0..devices)
            .map(|d| {
                let v = rt.host_alloc(&format!("chunk{d}"), 4096);
                rt.host_fill_u32(v, |i| i as u32 * (d + 1));
                v
            })
            .collect();
        for iter in 0..3 {
            for (d, &chunk) in chunks.iter().enumerate() {
                let flag = rt.host_alloc(&format!("flag_{d}_{iter}"), 4);
                rt.target(
                    d as u32,
                    CodePtr(0x500 + d as u64),
                    &[map(MapType::To, chunk), map(MapType::ToFrom, flag)],
                    Kernel::new("step", KernelCost::fixed(2_000))
                        .reads(&[chunk])
                        .writes(&[chunk, flag]),
                );
            }
        }
    });
    // Each device re-receives its (unchanged) chunk on iterations 2,3
    // (2 DD) and its zeroed stop flag re-image twice more (2 DD).
    assert_eq!(report.counts.dd as u32, devices * 4, "{:?}", report.counts);
    assert_eq!(report.counts.ra as u32, devices * 2);
}
