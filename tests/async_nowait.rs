//! Asynchronous offload (`target nowait`, §7.8): the paper notes that
//! optimization-potential estimates "may be unreliable" for programs
//! using OpenMP 5.1's asynchronous mapping features, while the
//! *detection* algorithms themselves need no adjustment. These tests pin
//! that behaviour: detection stays sound under overlap; Algorithm 5
//! conservatively forgets overwrite candidates that overlap running
//! kernels.

use odp_model::{CodePtr, MapType, SimDuration};
use odp_sim::{map, Kernel, KernelCost, Runtime};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

#[test]
fn nowait_overlaps_host_and_device() {
    // An async kernel lets the host run ahead; taskwait re-synchronizes.
    let mut rt = Runtime::with_defaults();
    let a = rt.host_alloc("a", 1 << 20);
    let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a)]);
    let before = rt.now();
    rt.target_nowait(
        0,
        CodePtr(2),
        &[map(MapType::To, a)],
        Kernel::new("long_kernel", KernelCost::fixed(10_000_000))
            .reads(&[a])
            .writes(&[a]),
    );
    let after_launch = rt.now();
    // The host returned long before the 10 ms kernel finished.
    assert!(
        (after_launch - before) < SimDuration::from_millis(1),
        "launch took {}",
        after_launch - before
    );
    rt.host_compute(SimDuration::from_micros(50)); // overlapped host work
    rt.taskwait(0);
    let after_wait = rt.now();
    assert!(
        (after_wait - before) >= SimDuration::from_millis(10),
        "taskwait must cover the kernel: {}",
        after_wait - before
    );
    rt.target_data_end(region);
    rt.finish();
}

#[test]
fn sync_target_queues_behind_async_kernel() {
    let mut rt = Runtime::with_defaults();
    let a = rt.host_alloc("a", 4096);
    let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a)]);
    rt.target_nowait(
        0,
        CodePtr(2),
        &[map(MapType::To, a)],
        Kernel::new("async", KernelCost::fixed(5_000_000))
            .reads(&[a])
            .writes(&[a]),
    );
    let t_launch = rt.now();
    rt.target(
        0,
        CodePtr(3),
        &[map(MapType::To, a)],
        Kernel::new("sync", KernelCost::fixed(1_000)).reads(&[a]),
    );
    let t_done = rt.now();
    assert!(
        (t_done - t_launch) >= SimDuration::from_millis(5),
        "the synchronous kernel must wait for the async one"
    );
    rt.target_data_end(region);
    rt.finish();
}

#[test]
fn transfer_overlapping_async_kernel_clears_algorithm5_candidates() {
    // Overwrite pattern that would be UT in a synchronous program —
    // but here the first transfer overlaps a running kernel, so
    // Algorithm 5 must conservatively NOT flag it (the kernel might
    // still read it).
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));

    let a = rt.host_alloc("a", 4096);
    let v = rt.host_alloc("v", 256);
    rt.host_fill_u32(v, |i| i as u32);
    let region = rt.target_data_begin(0, CodePtr(1), &[map(MapType::To, a), map(MapType::To, v)]);
    // Long async kernel reading v.
    rt.target_nowait(
        0,
        CodePtr(2),
        &[map(MapType::To, a), map(MapType::To, v)],
        Kernel::new("consumer", KernelCost::fixed(50_000_000))
            .reads(&[a, v])
            .writes(&[a]),
    );
    // While it runs: update v twice (same source address, new content).
    rt.host_fill_u32(v, |i| i as u32 + 100);
    rt.target_update_to(0, CodePtr(3), &[v]);
    rt.host_fill_u32(v, |i| i as u32 + 200);
    rt.target_update_to(0, CodePtr(3), &[v]);
    rt.taskwait(0);
    // A final kernel consumes the last image.
    rt.target(
        0,
        CodePtr(4),
        &[map(MapType::To, v)],
        Kernel::new("tail", KernelCost::fixed(1_000)).reads(&[v]),
    );
    rt.target_data_end(region);
    rt.finish();

    let report = ompdataperf::analyze(&handle.take_trace(), None);
    assert_eq!(
        report.counts.ut, 0,
        "overlapping transfers must not be flagged: {:?}",
        report.counts
    );
}

#[test]
fn detection_counts_unaffected_by_asynchrony() {
    // The same duplicate-transfer program, synchronous vs nowait: the
    // content-based detectors see identical issues (§7.8: the detection
    // techniques need no adjustment — only time-savings estimates do).
    let run = |nowait: bool| {
        let mut rt = Runtime::with_defaults();
        let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
        rt.attach_tool(Box::new(tool));
        let a = rt.host_alloc("a", 8192);
        rt.host_fill_u32(a, |i| i as u32);
        for _ in 0..4 {
            let k = Kernel::new("k", KernelCost::fixed(10_000)).reads(&[a]);
            if nowait {
                rt.target_nowait(0, CodePtr(7), &[map(MapType::To, a)], k);
            } else {
                rt.target(0, CodePtr(7), &[map(MapType::To, a)], k);
            }
        }
        rt.taskwait(0);
        rt.finish();
        ompdataperf::analyze(&handle.take_trace(), None).counts
    };
    let sync_counts = run(false);
    let async_counts = run(true);
    assert_eq!(sync_counts.dd, 3);
    assert_eq!(async_counts.dd, sync_counts.dd);
    assert_eq!(async_counts.ra, sync_counts.ra);
}
