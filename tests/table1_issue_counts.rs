//! Table 1 reproduction: issue counts per benchmark at the Medium size.
//!
//! These are the paper's headline detection results. Each assertion pins
//! the full (DD, RT, RA, UA, UT) vector; a regression in any detector or
//! in a workload's mapping structure shows up here.

use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use ompdataperf::IssueCounts;

fn counts(name: &str, variant: Variant) -> IssueCounts {
    let w = odp_workloads::by_name(name).unwrap_or_else(|| panic!("workload {name}"));
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Medium, variant);
    rt.finish();
    ompdataperf::analyze(&handle.take_trace(), None).counts
}

fn expect(name: &str, variant: Variant, dd: usize, rt: usize, ra: usize, ua: usize, ut: usize) {
    let got = counts(name, variant);
    let want = IssueCounts { dd, rt, ra, ua, ut };
    assert_eq!(
        got,
        want,
        "{name}{} : got {:?}, Table 1 says {:?}",
        variant.suffix(),
        got,
        want
    );
}

// ---- Originals -----------------------------------------------------

#[test]
fn babelstream_original() {
    expect("babelstream", Variant::Original, 499, 0, 499, 0, 0);
}

#[test]
fn bfs_original() {
    expect("bfs", Variant::Original, 18, 10, 9, 0, 0);
}

#[test]
fn hotspot_original() {
    expect("hotspot", Variant::Original, 2, 0, 0, 0, 0);
}

#[test]
fn lud_original() {
    expect("lud", Variant::Original, 0, 0, 0, 0, 0);
}

#[test]
fn minife_original() {
    expect("minife", Variant::Original, 402, 4, 398, 0, 0);
}

#[test]
fn minifmm_original() {
    expect("minifmm", Variant::Original, 3, 0, 0, 0, 0);
}

#[test]
fn nw_original() {
    expect("nw", Variant::Original, 0, 0, 0, 0, 0);
}

#[test]
fn rsbench_original() {
    expect("rsbench", Variant::Original, 0, 1, 0, 0, 0);
}

#[test]
fn tealeaf_original() {
    expect("tealeaf", Variant::Original, 4720, 11, 4706, 0, 0);
}

#[test]
fn xsbench_original() {
    expect("xsbench", Variant::Original, 0, 1, 0, 0, 0);
}

// ---- Synthetic injections ------------------------------------------

#[test]
fn babelstream_synthetic_equals_original() {
    expect("babelstream", Variant::Synthetic, 499, 0, 499, 0, 0);
}

#[test]
fn hotspot_synthetic() {
    expect("hotspot", Variant::Synthetic, 12, 4, 10, 0, 0);
}

#[test]
fn lud_synthetic() {
    expect("lud", Variant::Synthetic, 1737, 1243, 747, 250, 252);
}

#[test]
fn minifmm_synthetic() {
    expect("minifmm", Variant::Synthetic, 75, 64, 57, 57, 76);
}

#[test]
fn nw_synthetic() {
    expect("nw", Variant::Synthetic, 8, 0, 4, 1, 3);
}

#[test]
fn tealeaf_synthetic() {
    expect("tealeaf", Variant::Synthetic, 17408, 25614, 4706, 0, 1);
}

// ---- Fixed programs -------------------------------------------------

#[test]
fn bfs_fixed() {
    expect("bfs", Variant::Fixed, 1, 0, 0, 0, 0);
}

#[test]
fn minife_fixed() {
    expect("minife", Variant::Fixed, 3, 0, 0, 0, 0);
}

#[test]
fn rsbench_fixed() {
    expect("rsbench", Variant::Fixed, 0, 0, 0, 0, 0);
}

#[test]
fn xsbench_fixed() {
    expect("xsbench", Variant::Fixed, 0, 0, 0, 0, 0);
}

// ---- Synthetic-fixed variants are clean ------------------------------

#[test]
fn syn_fixed_variants_are_clean_of_injected_issues() {
    for name in ["lud", "nw"] {
        let got = counts(name, Variant::SynFixed);
        assert!(got.is_clean(), "{name} (syn-fix): {got:?}");
    }
    // hotspot keeps its 2 inherent DDs; tealeaf keeps its inherent
    // reduction-variable issues; only the injected deltas vanish.
    let hotspot = counts("hotspot", Variant::SynFixed);
    assert_eq!(
        hotspot,
        IssueCounts {
            dd: 2,
            ..Default::default()
        }
    );
    let tealeaf = counts("tealeaf", Variant::SynFixed);
    assert_eq!(
        tealeaf,
        IssueCounts {
            dd: 4720,
            rt: 11,
            ra: 4706,
            ua: 0,
            ut: 0
        }
    );
}
