//! Trace export paths: JSON event dump and the Chrome Trace Format
//! timeline (the §8 "no visualizations" gap this reproduction closes).

use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

fn traced_run(name: &str) -> odp_trace::TraceLog {
    let w = odp_workloads::by_name(name).unwrap();
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Small, Variant::Original);
    rt.finish();
    handle.take_trace()
}

#[test]
fn chrome_trace_covers_every_event() {
    let trace = traced_run("bfs");
    let json = odp_trace::chrome::to_chrome_trace(&trace);
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    let events = v["traceEvents"].as_array().unwrap();
    assert_eq!(
        events.len(),
        trace.data_op_count() + trace.target_count(),
        "every record becomes one timeline slice"
    );
    // The bfs anti-pattern is visible: H2D/D2H slices plus kernels.
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    assert!(names.contains(&"H2D transfer"));
    assert!(names.contains(&"D2H transfer"));
    assert!(names.contains(&"kernel"));
    assert!(names.contains(&"device alloc"));
}

#[test]
fn chrome_trace_durations_match_event_spans() {
    let trace = traced_run("hotspot");
    let json = odp_trace::chrome::to_chrome_trace(&trace);
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    let total_dur_us: f64 = v["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e["dur"].as_f64().unwrap())
        .sum();
    let stats = trace.stats();
    let expected_us = (stats.transfer_time.as_nanos()
        + stats.alloc_time.as_nanos()
        + stats.kernel_time.as_nanos()) as f64
        / 1e3;
    // Chrome slices cover at least the data-op + kernel time (regions
    // add more); and no slice is zero-width.
    assert!(
        total_dur_us >= expected_us * 0.99,
        "{total_dur_us} vs {expected_us}"
    );
}

#[test]
fn json_event_dump_round_trips_counts() {
    let trace = traced_run("xsbench");
    let v: serde_json::Value = serde_json::from_str(&trace.to_json()).unwrap();
    assert_eq!(
        v["data_ops"].as_array().unwrap().len(),
        trace.data_op_count()
    );
    assert_eq!(v["targets"].as_array().unwrap().len(), trace.target_count());
    assert!(v["total_time_ns"].as_u64().unwrap() > 0);
    // Transfers carry their content hashes into the dump.
    assert!(v["data_ops"]
        .as_array()
        .unwrap()
        .iter()
        .any(|e| e["hash"].is_object() || !e["hash"].is_null()));
}

#[test]
fn chrome_trace_export_is_deterministic() {
    // Two independent collections of the same deterministic workload,
    // exported twice each: all four byte strings must be identical.
    // This pins both the simulator's determinism and the exporter's
    // total, tie-broken sort (ts, then tid) — an unstable or partial
    // ordering would reorder simultaneous events between runs.
    let a = odp_trace::chrome::to_chrome_trace(&traced_run("bfs"));
    let b = odp_trace::chrome::to_chrome_trace(&traced_run("bfs"));
    assert_eq!(a, b, "independent collections must export identically");
    let log = traced_run("bfs");
    assert_eq!(
        odp_trace::chrome::to_chrome_trace(&log),
        odp_trace::chrome::to_chrome_trace(&log),
        "re-exporting one log must be byte-identical"
    );
}

#[test]
fn chrome_trace_ts_and_dur_are_finite_and_ordered() {
    for name in ["bfs", "hotspot", "xsbench"] {
        let json = odp_trace::chrome::to_chrome_trace(&traced_run(name));
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        let mut prev = (f64::NEG_INFINITY, 0u64);
        for e in events {
            let ts = e["ts"].as_f64().unwrap();
            let dur = e["dur"].as_f64().unwrap();
            assert!(ts.is_finite() && ts >= 0.0, "{name}: bad ts {ts}");
            assert!(dur.is_finite() && dur > 0.0, "{name}: bad dur {dur}");
            let tid = e["tid"].as_u64().unwrap();
            assert!(
                (ts, tid) >= prev,
                "{name}: events must be (ts, tid)-ordered: {prev:?} then ({ts}, {tid})"
            );
            prev = (ts, tid);
        }
    }
}
