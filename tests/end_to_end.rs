//! End-to-end pipeline test: workload → simulated runtime → OMPT tool →
//! trace → detection → prediction → report.

use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant, Workload};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};
use ompdataperf::Report;

fn run_workload(w: &dyn Workload, size: ProblemSize, variant: Variant) -> Report {
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    let dbg = w.run(&mut rt, size, variant);
    rt.finish();
    let trace = handle.take_trace();
    ompdataperf::analysis::analyze_named(&trace, Some(&dbg), w.name(), handle.console_lines())
}

#[test]
fn bfs_end_to_end_produces_full_report() {
    let w = odp_workloads::by_name("bfs").unwrap();
    let report = run_workload(w.as_ref(), ProblemSize::Small, Variant::Original);

    // Issues found (exact counts pinned by table1_issue_counts.rs).
    assert!(report.counts.dd > 0);
    assert!(report.counts.rt > 0);
    assert!(report.counts.ra > 0);

    // Prediction exists and is sane.
    assert!(report.prediction.predicted_speedup > 1.0);
    assert!(report.prediction.time_saved.as_nanos() > 0);
    assert!(report.prediction.predicted_time < report.prediction.total_time);

    // Source attribution resolved the bfs call sites.
    let rendered = report.render();
    assert!(
        rendered.contains("bfs.cpp"),
        "expected bfs.cpp attribution in:\n{rendered}"
    );
    assert!(rendered.contains("info: OpenMP OMPT interface version 5.1"));
    assert!(rendered.contains("=== Summary ==="));
}

#[test]
fn clean_program_reports_no_issues() {
    let w = odp_workloads::by_name("lud").unwrap();
    let report = run_workload(w.as_ref(), ProblemSize::Small, Variant::Original);
    assert!(report.counts.is_clean(), "{:?}", report.counts);
    assert!((report.prediction.predicted_speedup - 1.0).abs() < 1e-9);
    let rendered = report.render();
    assert!(rendered.contains("no issues detected"));
}

#[test]
fn space_overhead_matches_record_arithmetic() {
    // §7.4: 72 B per data op, 24 B per target record.
    let w = odp_workloads::by_name("hotspot").unwrap();
    let report = run_workload(w.as_ref(), ProblemSize::Small, Variant::Original);
    let expected = report.space.data_op_records * 72 + report.space.target_records * 24;
    assert_eq!(report.space.record_bytes, expected);
    assert!(report.space.peak_alloc_bytes >= expected);
}

#[test]
fn json_report_is_machine_readable() {
    let w = odp_workloads::by_name("xsbench").unwrap();
    let report = run_workload(w.as_ref(), ProblemSize::Small, Variant::Original);
    let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(v["counts"]["rt"], 1, "xsbench's single round trip");
    assert_eq!(v["program"], "xsbench");
}

#[test]
fn fixing_reduces_both_issues_and_runtime() {
    let w = odp_workloads::by_name("bfs").unwrap();

    let mut rt1 = Runtime::with_defaults();
    let (tool1, h1) = OmpDataPerfTool::new(ToolConfig::default());
    rt1.attach_tool(Box::new(tool1));
    w.run(&mut rt1, ProblemSize::Small, Variant::Original);
    let before = rt1.finish();
    let report_before = ompdataperf::analyze(&h1.take_trace(), None);

    let mut rt2 = Runtime::with_defaults();
    let (tool2, h2) = OmpDataPerfTool::new(ToolConfig::default());
    rt2.attach_tool(Box::new(tool2));
    w.run(&mut rt2, ProblemSize::Small, Variant::Fixed);
    let after = rt2.finish();
    let report_after = ompdataperf::analyze(&h2.take_trace(), None);

    assert!(report_after.counts.total() < report_before.counts.total());
    assert!(
        after.total_time < before.total_time,
        "fixed bfs must be faster: {} vs {}",
        after.total_time,
        before.total_time
    );
}

#[test]
fn tool_off_and_tool_on_runs_have_identical_virtual_time() {
    // The tool must not perturb the monitored program's virtual clock
    // (its overhead is wall-clock only) — prerequisite for Figure 2.
    let w = odp_workloads::by_name("hotspot").unwrap();

    let mut bare = Runtime::with_defaults();
    w.run(&mut bare, ProblemSize::Small, Variant::Original);
    let t_bare = bare.finish().total_time;

    let mut tooled = Runtime::with_defaults();
    let (tool, _h) = OmpDataPerfTool::new(ToolConfig::default());
    tooled.attach_tool(Box::new(tool));
    w.run(&mut tooled, ProblemSize::Small, Variant::Original);
    let t_tooled = tooled.finish().total_time;

    assert_eq!(t_bare, t_tooled);
}
