//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Implements the statistical-free core of criterion's API surface used
//! by this workspace's benches: warm-up + timed sampling, mean/min
//! ns-per-iteration reporting, benchmark groups with throughput
//! annotations, and the `criterion_group!`/`criterion_main!` macros.
//! No plotting, no saved baselines — one line of output per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.clone());
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Throughput annotation: reported alongside time per iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample size within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Override the measurement time within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.clone());
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.clone());
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// End the group (drop would do; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    cfg: Criterion,
    /// Mean nanoseconds per iteration over all samples.
    mean_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    min_ns: f64,
}

impl Bencher {
    fn new(cfg: Criterion) -> Bencher {
        Bencher {
            cfg,
            mean_ns: f64::NAN,
            min_ns: f64::NAN,
        }
    }

    /// Measure a closure: warm up, then time `sample_size` samples that
    /// together fill the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, counting iterations to size the samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        let samples = self.cfg.sample_size as u64;
        let budget_ns = self.cfg.measurement_time.as_nanos() as f64;
        let iters_per_sample = ((budget_ns / samples as f64 / per_iter.max(1.0)) as u64).max(1);

        let mut total_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let sample_ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total_ns += sample_ns;
            min_ns = min_ns.min(sample_ns);
        }
        self.mean_ns = total_ns / samples as f64;
        self.min_ns = min_ns;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.mean_ns.is_nan() {
            println!("{name:<56} (no measurement)");
            return;
        }
        let time = format_ns(self.mean_ns);
        let extra = match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gbps = bytes as f64 / self.mean_ns;
                format!("  thrpt: {gbps:>8.3} GB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 * 1e3 / self.mean_ns;
                format!("  thrpt: {meps:>8.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{name:<56} time: [{time} (min {min})]{extra}",
            min = format_ns(self.min_ns),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
