//! Vendored minimal `#[derive(Serialize, Deserialize)]` macros.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline),
//! targeting the protocol of the vendored `serde` crate: derived
//! `Serialize` impls produce a `serde::Value` tree; derived
//! `Deserialize` impls rebuild `Self` from one.
//!
//! Supported shapes — the full set this workspace uses:
//!
//! * structs with named fields (serialized as objects; honors
//!   `#[serde(rename = "...")]` per field);
//! * tuple structs (newtypes serialize transparently as their single
//!   field; longer tuples as arrays);
//! * unit structs (serialize as `null`);
//! * enums whose variants are all unit variants (serialize as the
//!   variant-name string, serde's external tagging for unit variants).
//!
//! Anything fancier (generics, data-carrying enum variants) produces a
//! `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

struct Field {
    /// Field identifier (named structs only).
    name: String,
    /// JSON key (`name` unless `#[serde(rename = "...")]`).
    key: String,
    /// Field type, re-rendered from its original tokens.
    ty: String,
}

enum Shape {
    Named(Vec<Field>),
    /// Tuple struct: list of field types.
    Tuple(Vec<String>),
    Unit,
    /// Enum of unit variants: variant names.
    UnitEnum(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => pos += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return compile_error("serde_derive: expected `struct` or `enum`"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return compile_error("serde_derive: expected type name"),
    };
    pos += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return compile_error("serde_derive: generic types are not supported");
        }
    }

    let shape = match (kind.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            match parse_named_fields(g.stream()) {
                Ok(fields) => Shape::Named(fields),
                Err(e) => return compile_error(&e),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            match parse_tuple_fields(g.stream()) {
                Ok(tys) => Shape::Tuple(tys),
                Err(e) => return compile_error(&e),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Unit,
        ("struct", None) => Shape::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            match parse_unit_variants(g.stream()) {
                Ok(vs) => Shape::UnitEnum(vs),
                Err(e) => return compile_error(&e),
            }
        }
        _ => return compile_error("serde_derive: unsupported type shape"),
    };

    let code = match which {
        Trait::Serialize => gen_serialize(&name, &shape),
        Trait::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse().unwrap()
}

/// Skip attributes at `pos`, returning any `#[serde(rename = "...")]`
/// value seen.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> Option<String> {
    let mut rename = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            if let Some(r) = parse_serde_rename(g.stream()) {
                rename = Some(r);
            }
        }
        *pos += 2;
    }
    rename
}

/// From the bracket-group tokens of one attribute, extract the rename
/// string of `serde(rename = "...")` if that is what the attribute is.
fn parse_serde_rename(attr: TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match (inner.first(), inner.get(1), inner.get(2)) {
                (
                    Some(TokenTree::Ident(key)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) if key.to_string() == "rename" && eq.as_char() == '=' => {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Collect type tokens until a comma at angle-bracket depth zero,
/// re-rendering them through a `TokenStream` so lifetimes and paths
/// keep valid spacing.
fn collect_type(tokens: &[TokenTree], pos: &mut usize) -> String {
    let mut depth = 0i32;
    let mut ty_tokens: Vec<TokenTree> = Vec::new();
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
        }
        ty_tokens.push(tok.clone());
        *pos += 1;
    }
    ty_tokens.into_iter().collect::<TokenStream>().to_string()
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let rename = skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("serde_derive: expected `:`, got {other:?}")),
        }
        let ty = collect_type(&tokens, &mut pos);
        // Skip the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        let key = rename.unwrap_or_else(|| name.clone());
        fields.push(Field { name, key, ty });
    }
    Ok(fields)
}

fn parse_tuple_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut tys = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let ty = collect_type(&tokens, &mut pos);
        if ty.is_empty() {
            break;
        }
        tys.push(ty);
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    Ok(tys)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde_derive: expected variant, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive: variant `{name}` carries data; only unit variants are supported"
                ));
            }
            other => return Err(format!("serde_derive: unexpected token {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push(({key:?}.to_string(), ::serde::Serialize::to_value(&self.{name})));\n",
                    key = f.key,
                    name = f.name,
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = \
                 Vec::with_capacity({n});\n{pushes}::serde::Value::Object(fields)",
                n = fields.len(),
            )
        }
        Shape::Tuple(tys) if tys.len() == 1 => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(tys) => {
            let elems: Vec<String> = (0..tys.len())
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{name}: <{ty} as ::serde::Deserialize>::from_value(\
                     v.get({key:?}).unwrap_or(&::serde::Value::Null))?,\n",
                    name = f.name,
                    ty = f.ty,
                    key = f.key,
                ));
            }
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple(tys) if tys.len() == 1 => {
            format!(
                "Ok({name}(<{ty} as ::serde::Deserialize>::from_value(v)?))",
                ty = tys[0],
            )
        }
        Shape::Tuple(tys) => {
            let elems: Vec<String> = tys
                .iter()
                .enumerate()
                .map(|(i, ty)| {
                    format!(
                        "<{ty} as ::serde::Deserialize>::from_value(\
                         v.get_index({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Some({v:?}) => Ok({name}::{v})"))
                .collect();
            format!(
                "match v.as_str() {{ {arms}, _ => Err(::serde::DeError::custom(\
                 format!(\"unknown {name} variant: {{v:?}}\"))) }}",
                arms = arms.join(", "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
