//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Renders and parses the vendored `serde` crate's [`Value`] tree as
//! JSON text: [`to_string`], [`to_string_pretty`], [`from_str`], and
//! the [`json!`] literal macro.

pub use serde::Value;

use std::fmt;

/// JSON rendering / parsing error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value into a [`Value`] tree (used by the
/// [`json!`] macro for interpolated expressions).
pub fn to_value<T: serde::Serialize>(value: T) -> Value {
    value.to_value()
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indent, `serde_json` style).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.0))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else {
        // `{:?}` prints the shortest representation that round-trips and
        // always includes a decimal point or exponent.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_value(item, out, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|e| Error(e.to_string()))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

/// Build a [`Value`] from a JSON-like literal, interpolating Rust
/// expressions in value position (a reduced version of `serde_json`'s
/// macro: object keys must be string literals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut items: Vec<$crate::Value> = Vec::new();
            $crate::json_items!(items; [] $($tt)+);
            $crate::Value::Array(items)
        }
    }};
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut fields: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_fields!(fields; $($tt)+);
            $crate::Value::Object(fields)
        }
    }};
    ($other:expr) => { $crate::to_value($other) };
}

/// Internal muncher for [`json!`] arrays — accumulates tokens up to a
/// top-level comma, then recurses into [`json!`] for the element.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident; [$($elem:tt)+]) => {
        $items.push($crate::json!($($elem)+));
    };
    ($items:ident; [$($elem:tt)+] , $($rest:tt)*) => {
        $items.push($crate::json!($($elem)+));
        $crate::json_items!($items; [] $($rest)*);
    };
    ($items:ident; []) => {};
    ($items:ident; [$($elem:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_items!($items; [$($elem)* $next] $($rest)*);
    };
}

/// Internal muncher for [`json!`] objects.
#[doc(hidden)]
#[macro_export]
macro_rules! json_fields {
    ($fields:ident; $key:literal : $($rest:tt)+) => {
        $crate::json_field_value!($fields; $key [] $($rest)+);
    };
    ($fields:ident;) => {};
}

/// Internal muncher for a single [`json!`] object value.
#[doc(hidden)]
#[macro_export]
macro_rules! json_field_value {
    ($fields:ident; $key:literal [$($val:tt)+] , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::json!($($val)+)));
        $crate::json_fields!($fields; $($rest)*);
    };
    ($fields:ident; $key:literal [$($val:tt)+]) => {
        $fields.push(($key.to_string(), $crate::json!($($val)+)));
    };
    ($fields:ident; $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_field_value!($fields; $key [$($val)* $next] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v: Value = from_str("{\"a\": 1, \"b\": -2, \"c\": 1.5, \"d\": null}").unwrap();
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"], -2);
        assert_eq!(v["c"].as_f64(), Some(1.5));
        assert!(v["d"].is_null());
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({"k": [1, 2], "s": "x"});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"k\": ["));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_interpolates() {
        let n = 7u64;
        let v = json!({"n": n, "f": format!("0x{:x}", 255), "opt": Option::<String>::None});
        assert_eq!(v["n"], 7);
        assert_eq!(v["f"], "0xff");
        assert!(v["opt"].is_null());
    }

    #[test]
    fn escapes_round_trip() {
        let v = json!({"s": "a\"b\\c\nd"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
