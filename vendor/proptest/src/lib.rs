//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Random generation without shrinking: a [`Strategy`] produces values
//! from a deterministic per-test RNG (seeded from the test name, so runs
//! are reproducible with no wall-clock or OS entropy involved), and the
//! [`proptest!`] macro expands each property into a `#[test]` that
//! drives the configured number of cases. `prop_assert*` map to the
//! standard assertion macros, so a failing case panics with the values
//! in scope (no shrink phase).

use std::ops::Range;

/// xorshift64* — deterministic, seedable, no external entropy.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a), typically the test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Seed directly.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as u64).saturating_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
    )*};
}
range_strategy!(u8 u16 u32 u64 usize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// What `proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Assert within a property (panics; no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pattern in strategy) { body }`
/// expands to a `#[test]` running the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest_tests!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] test items.
#[doc(hidden)]
#[macro_export]
macro_rules! proptest_tests {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}
