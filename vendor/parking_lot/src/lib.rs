//! Vendored minimal stand-in for the `parking_lot` crate: a
//! non-poisoning [`Mutex`] over `std::sync::Mutex`, with the
//! `parking_lot` guard-returning (never-`Result`) `lock()` signature
//! that the tool's hot path relies on.

use std::fmt;
use std::sync::Mutex as StdMutex;

/// RAII guard; derefs to the protected data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` returns the guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot mutexes
    /// do not poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
