//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build container has no registry access, so this crate implements
//! the slice of serde's API the workspace actually uses: a value-tree
//! serialization protocol. [`Serialize`] renders a value into a JSON-like
//! [`Value`]; [`Deserialize`] rebuilds one from it. The derive macros
//! (`#[derive(Serialize, Deserialize)]`, honoring `#[serde(rename)]`)
//! live in the sibling `serde_derive` crate and target exactly this
//! protocol. `serde_json` (also vendored) renders and parses [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree: the intermediate representation every
/// [`Serialize`] impl produces and every [`Deserialize`] impl consumes.
///
/// Object fields preserve insertion order (like `serde_json`'s
/// `preserve_order` feature) so serialized output is deterministic.
#[derive(Clone, Debug)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any parsed integer with a leading `-`).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this a string?
    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    /// Is this any numeric variant?
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::UInt(_) | Value::Float(_))
    }

    /// As a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As a `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// As an `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// As an `f64` (any numeric variant converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// As a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object (ordered key/value pairs), if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, ix: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(ix),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        self.get_index(ix).unwrap_or(&NULL_VALUE)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            (Value::Int(a), Value::UInt(b)) | (Value::UInt(b), Value::Int(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Float(f), other) | (other, Value::Float(f)) => {
                other.as_f64().is_some_and(|v| v == *f)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

macro_rules! value_eq_uint {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_uint!(u8 u16 u32 u64 usize);

macro_rules! value_eq_int {
    ($($t:ty)*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                if *other >= 0 {
                    self.as_u64() == Some(*other as u64)
                } else {
                    self.as_i64() == Some(*other as i64)
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(i8 i16 i32 i64 isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Error produced when [`Deserialize`] rejects a [`Value`].
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse a value tree, rejecting shape mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! serialize_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
serialize_uint!(u8 u16 u32 u64 usize);

macro_rules! serialize_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
serialize_int!(i8 i16 i32 i64 isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows `&'de str` from the input; this stand-in has
    /// no deserializer lifetime, so `&'static str` fields (capability
    /// tables, test fixtures) are rebuilt by leaking the owned string.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                Ok(($(
                    $t::from_value(a.get($n).unwrap_or(&Value::Null))?,
                )+))
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Render a value as a JSON object key (objects require string keys).
fn object_key(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (object_key(&k.to_value()), v.to_value()))
            .collect();
        // HashMap iteration order is nondeterministic; sort for stable output.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (object_key(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
