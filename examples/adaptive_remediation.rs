//! Adaptive remediation: detect → rewrite → recovered time, live.
//!
//! ```sh
//! cargo run --example adaptive_remediation
//! ```
//!
//! babelstream re-maps its initialization array every test run — the
//! intentional duplicate-transfer + repeated-allocation pattern of
//! Table 1. This example runs it three ways and prints what each moved:
//!
//! 1. **baseline** — the plain instrumented run;
//! 2. **adaptive** — one run with the detect→fix loop closed: the
//!    streaming engine's findings feed a `RemediationPolicy` mid-run,
//!    so every iteration after the first duplicate executes a rewritten
//!    mapping (the re-send is dropped, the present-table entry reused);
//! 3. **seeded re-run** — a second run whose policy was built from the
//!    baseline findings: the remediated kinds disappear entirely.

use odp_workloads::adaptive::{run_adaptive, run_baseline, run_seeded};
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::remedy::RemediationPolicy;

fn main() {
    let w = odp_workloads::by_name("babelstream").unwrap();

    // 1. Baseline: diagnose only.
    let baseline = run_baseline(&*w, ProblemSize::Small, Variant::Original);
    println!("baseline :");
    println!(
        "  issues DD={} RA={} | {} transfers, {} B, transfer time {}",
        baseline.report.counts.dd,
        baseline.report.counts.ra,
        baseline.stats.transfers,
        baseline.stats.bytes_transferred,
        baseline.stats.transfer_time,
    );

    // 2. Adaptive: one run, findings rewrite the mappings mid-flight.
    let adaptive = run_adaptive(&*w, ProblemSize::Small, Variant::Original);
    println!("\nadaptive (one live run):");
    println!(
        "  issues DD={} RA={} | {} transfers, {} B, transfer time {}",
        adaptive.report.counts.dd,
        adaptive.report.counts.ra,
        adaptive.stats.transfers,
        adaptive.stats.bytes_transferred,
        adaptive.stats.transfer_time,
    );
    print!("{}", adaptive.remediation.render());

    // 3. Seeded re-run: the policy knows everything from directive one.
    let policy = RemediationPolicy::from_findings(&baseline.report.findings);
    let seeded = run_seeded(&*w, ProblemSize::Small, Variant::Original, policy);
    println!("\nseeded re-run:");
    println!(
        "  issues DD={} RA={} | {} transfers, {} B, transfer time {}",
        seeded.report.counts.dd,
        seeded.report.counts.ra,
        seeded.stats.transfers,
        seeded.stats.bytes_transferred,
        seeded.stats.transfer_time,
    );

    let saved = baseline.stats.transfer_time.as_nanos() as f64;
    let now = seeded.stats.transfer_time.as_nanos() as f64;
    println!(
        "\ntransfer time {} -> {} ({:.1}% recovered)",
        baseline.stats.transfer_time,
        seeded.stats.transfer_time,
        100.0 * (saved - now) / saved.max(1.0)
    );
}
