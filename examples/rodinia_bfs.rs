//! The paper's flagship case study (§7.5): Rodinia's bfs bounces a stop
//! flag between host and device every frontier level. OMPDataPerf
//! detects the duplicate transfers, round trips and reallocations,
//! predicts the speedup from fixing them, and this example verifies the
//! prediction by running the fixed program.
//!
//! ```sh
//! cargo run --example rodinia_bfs
//! ```

use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

fn main() {
    let bfs = odp_workloads::by_name("bfs").expect("bfs workload");

    // --- Profile the original program -------------------------------
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    let dbg = bfs.run(&mut rt, ProblemSize::Small, Variant::Original);
    let before = rt.finish();

    let trace = handle.take_trace();
    let report =
        ompdataperf::analysis::analyze_named(&trace, Some(&dbg), "bfs", handle.console_lines());
    println!("{}", report.render());

    // --- Apply the paper's fix and measure --------------------------
    let mut rt_fixed = Runtime::with_defaults();
    bfs.run(&mut rt_fixed, ProblemSize::Small, Variant::Fixed);
    let after = rt_fixed.finish();

    let actual = before.total_time.as_nanos() as f64 / after.total_time.as_nanos() as f64;
    println!("--- fix verification ---");
    println!(
        "original runtime : {}\nfixed runtime    : {}",
        before.total_time, after.total_time
    );
    println!(
        "predicted speedup: {:.2}x\nactual speedup   : {:.2}x",
        report.prediction.predicted_speedup, actual
    );
    println!("(the paper reports 2.1x for bfs at the small problem size, §7.5)");
    assert!(
        actual > 1.5,
        "the stop-flag fix should pay off substantially"
    );
}
