//! Multi-GPU profiling (§7.8): a data-parallel stencil split across four
//! simulated GPUs, with a per-device stop-flag anti-pattern that the
//! tool attributes to each device independently.
//!
//! ```sh
//! cargo run --example multi_gpu
//! ```

use odp_model::MapType;
use odp_sim::{map, Kernel, KernelCost, Runtime, RuntimeConfig};
use ompdataperf::attrib::{DebugInfo, SourceFile};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

const DEVICES: u32 = 4;
const CHUNK: usize = 64 * 1024;
const STEPS: usize = 4;

fn main() {
    let mut rt = Runtime::new(RuntimeConfig::default().with_devices(DEVICES));
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));

    let mut dbg = DebugInfo::new();
    let mut sf = SourceFile::new(&mut dbg, "multi_gpu_stencil.c", 0x60_0000);
    let cp_kernel = sf.line(42, "run_step");

    // One chunk of the domain per device.
    let chunks: Vec<_> = (0..DEVICES)
        .map(|d| {
            let v = rt.host_alloc(&format!("domain_chunk_{d}"), CHUNK);
            rt.host_fill_u32(v, |i| (i as u32).wrapping_mul(d + 1));
            v
        })
        .collect();

    // Anti-pattern: every step remaps each chunk instead of keeping it
    // resident, so every device sees duplicates and reallocations.
    for _step in 0..STEPS {
        for (d, &chunk) in chunks.iter().enumerate() {
            rt.target(
                d as u32,
                cp_kernel,
                &[map(MapType::To, chunk)],
                Kernel::new("stencil_step", KernelCost::scaled((CHUNK / 4) as u64))
                    .reads(&[chunk])
                    .writes(&[chunk]),
            );
        }
    }
    rt.finish();

    let trace = handle.take_trace();
    let report = ompdataperf::analysis::analyze_named(
        &trace,
        Some(&dbg),
        "multi_gpu_stencil",
        handle.console_lines(),
    );
    println!("{}", report.render());

    // Each device re-received its unchanged chunk STEPS-1 times...
    assert_eq!(report.counts.dd, (DEVICES as usize) * (STEPS - 1));
    // ...and reallocated it as many times.
    assert_eq!(report.counts.ra, (DEVICES as usize) * (STEPS - 1));
    println!(
        "detected the remapping anti-pattern on all {DEVICES} devices \
         ({} duplicate transfers, {} reallocations)",
        report.counts.dd, report.counts.ra
    );
}
