//! Quickstart: profile a small OpenMP-offload-style program with
//! OMPDataPerf and print the analysis report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program below is the paper's Listing 1: two back-to-back `target`
//! regions that both map the same read-only array `to:` the device — a
//! duplicate transfer and a repeated allocation the tool will flag, with
//! a predicted speedup for fixing them.

use odp_model::MapType;
use odp_sim::{map, Kernel, KernelCost, Runtime};
use ompdataperf::attrib::{DebugInfo, SourceFile};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

fn main() {
    // 1. A simulated OpenMP runtime (LLVM profile, one A100-like GPU).
    let mut rt = Runtime::with_defaults();

    // 2. Attach the profiler, keeping a handle for result extraction.
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));

    // 3. Register debug info, as compiling with `-g` would.
    let mut dbg = DebugInfo::new();
    let mut sf = SourceFile::new(&mut dbg, "listing1.c", 0x40_0000);
    let cp_sum = sf.line(2, "main");
    let cp_prod = sf.line(8, "main");

    // 4. The monitored program (Listing 1 of the paper).
    const N: usize = 64 * 1024;
    let a = rt.host_alloc("a", N * 4);
    rt.host_fill_u32(a, |i| i as u32);
    let sum = rt.host_alloc("sum", 4);
    let prod = rt.host_alloc("prod", 4);

    rt.target(
        0,
        cp_sum,
        &[map(MapType::To, a), map(MapType::ToFrom, sum)],
        Kernel::new("sum_reduction", KernelCost::scaled(N as u64))
            .reads(&[a])
            .writes(&[sum]),
    );
    rt.target(
        0,
        cp_prod,
        &[map(MapType::To, a), map(MapType::ToFrom, prod)],
        Kernel::new("prod_reduction", KernelCost::scaled(N as u64))
            .reads(&[a])
            .writes(&[prod]),
    );
    rt.finish();

    // 5. Post-mortem analysis (Algorithms 1-5 + prediction).
    let trace = handle.take_trace();
    let report = ompdataperf::analysis::analyze_named(
        &trace,
        Some(&dbg),
        "quickstart",
        handle.console_lines(),
    );
    println!("{}", report.render());

    assert_eq!(report.counts.dd, 1, "array `a` transferred twice");
    assert_eq!(report.counts.ra, 1, "array `a` reallocated");
    println!(
        "Fixing these issues is predicted to save {} ({:.2}x speedup).",
        report.prediction.time_saved, report.prediction.predicted_speedup
    );
}
