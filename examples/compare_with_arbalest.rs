//! §7.7 in miniature: run OMPDataPerf and Arbalest-Vec side by side on
//! the five HeCBench programs and print the Table 2 comparison — the
//! paper's argument that correctness checking alone does not surface
//! performance bugs (and sometimes cries wolf on write-only outputs).
//!
//! ```sh
//! cargo run --example compare_with_arbalest
//! ```

use odp_arbalest::ArbalestVecTool;
use odp_sim::Runtime;
use odp_workloads::{ProblemSize, Variant, Workload};
use ompdataperf::tool::{OmpDataPerfTool, ToolConfig};

fn ompdataperf_categories(w: &dyn Workload) -> String {
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = OmpDataPerfTool::new(ToolConfig::default());
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Medium, Variant::Original);
    rt.finish();
    let c = ompdataperf::analyze(&handle.take_trace(), None).counts;
    let mut cats = Vec::new();
    if c.dd > 0 {
        cats.push("DD");
    }
    if c.rt > 0 {
        cats.push("RT");
    }
    if c.ra > 0 {
        cats.push("RA");
    }
    if c.ua > 0 {
        cats.push("UA");
    }
    if c.ut > 0 {
        cats.push("UT");
    }
    if cats.is_empty() {
        "N/A".into()
    } else {
        cats.join(", ")
    }
}

fn arbalest_summary(w: &dyn Workload) -> String {
    let mut rt = Runtime::with_defaults();
    let (tool, handle) = ArbalestVecTool::new();
    rt.attach_tool(Box::new(tool));
    w.run(&mut rt, ProblemSize::Medium, Variant::Original);
    rt.finish();
    handle.report().summary()
}

fn main() {
    println!("Table 2: Issues Detected by OMPDataPerf and Arbalest-Vec\n");
    println!(
        "{:<20} {:<16} {:<12}",
        "Program Name", "OMPDataPerf", "Arbalest-Vec"
    );
    for w in odp_workloads::hecbench_programs() {
        let odp = ompdataperf_categories(w.as_ref());
        let av = arbalest_summary(w.as_ref());
        println!("{:<20} {:<16} {:<12}", w.name(), odp, av);
    }
    println!(
        "\nEvery Arbalest-Vec UUM above points at a write-only kernel output \
         (masked vector stores) — false positives, per the paper's manual \
         inspection (§7.7). Arbalest-Vec's instrumentation also costs ~{}x \
         native runtime (§8), vs OMPDataPerf's 5% average overhead.",
        odp_arbalest::ArbalestReport::NOMINAL_SLOWDOWN
    );
}
