//! Appendix B in miniature: compare candidate content-hash functions on
//! quality and throughput, the way the paper selected `t1ha0_avx2`.
//!
//! ```sh
//! cargo run --release --example hash_selection
//! ```

use odp_hash::quality::{avalanche, bucket_chi_square, collision_count};
use odp_hash::throughput::{calibrate_iters, measure};
use odp_hash::HashAlgoId;

fn main() {
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "hash", "GB/s(64K)", "avalanche", "chi2(256)", "collisions"
    );
    let buf: Vec<u8> = (0..64 * 1024).map(|i| (i * 131 % 251) as u8).collect();

    let mut best: Option<(HashAlgoId, f64)> = None;
    for algo in HashAlgoId::ALL {
        let iters = calibrate_iters(buf.len(), 40_000_000);
        let rate = measure(algo, &buf, iters).gb_per_s();
        let av = avalanche(algo, 64, 48, 0xFEED);
        let chi = bucket_chi_square(algo, 20_000, 256, 48, 0xBEE5);
        let col = collision_count(algo, 50_000, 64, 0x5EED);
        println!(
            "{:<16} {:>10.1} {:>12.3} {:>12.1} {:>12}",
            algo.name(),
            rate,
            av.mean_flip_probability,
            chi,
            col
        );
        if col == 0 && (0.45..=0.55).contains(&av.mean_flip_probability) {
            match best {
                Some((_, r)) if r >= rate => {}
                _ => best = Some((algo, rate)),
            }
        }
    }

    let (winner, rate) = best.expect("at least one qualifying hash");
    println!("\nfastest qualifying hash: {winner} ({rate:.1} GB/s)");
    println!("the paper selected t1ha0_avx2 on its EPYC 7543 testbed (§B.1)");
}
